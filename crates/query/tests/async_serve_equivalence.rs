//! Correctness of the async serving front under concurrency: every
//! response from a multiplexed [`ServeFront`] run is bit-identical to
//! *some sequential cut* of the same request log.
//!
//! The driver submits a randomized request log — keyword, private (both
//! plans) and ranked queries plus typed mutations — from several client
//! threads at once, over randomized corpus sizes, shard counts and pool
//! sizes. Every response carries the version-vector epoch it was computed
//! at; the checker then replays the mutation sub-log *sequentially* on a
//! reference cluster, snapshots the epoch after every mutation, and
//! requires each concurrent response to be bit-identical (hits, prefixes,
//! match sets, private cost counters, ranked `f64` score bits) to the
//! reference cluster's answer at exactly the epoch the fence admitted:
//!
//! * a response whose epoch matches no sequential prefix of the mutation
//!   log would prove the fence let a read straddle a mutation;
//! * a response that differs from the reference at its own epoch would
//!   prove the multiplexed scatter mixed repository versions (or shard
//!   states) inside one answer.
//!
//! Mutations are submitted from one designated client so their total
//! order is the FIFO admission order and the sequential replay is
//! deterministic; reads race against them from every client.

use ppwf_core::policy::{AccessLevel, Policy};
use ppwf_model::exec::{Executor, HashOracle};
use ppwf_query::cluster::EngineCluster;
use ppwf_query::engine::Plan;
use ppwf_query::keyword::KeywordHit;
use ppwf_query::ranking::RankingMode;
use ppwf_query::route::ShardStrategy;
use ppwf_query::serve::{QueryAnswer, ServeFront, ServeRequest, ServeResponse};
use ppwf_repo::mutation::Mutation;
use ppwf_repo::pool::WorkerPool;
use ppwf_repo::principals::{PrincipalRegistry, ViewRule};
use ppwf_repo::repository::{Repository, SpecId};
use ppwf_workloads::genspec::{generate_spec, SpecParams};
use proptest::prelude::*;
use std::sync::Arc;

const QUERIES: [&str; 6] = ["kw0", "kw0, kw1", "kw2", "kw1, kw3", "kw5", "kw0, kw2"];
const GROUPS: [&str; 3] = ["public", "analysts", "researchers"];

fn registry(specs: usize) -> PrincipalRegistry {
    let mut registry = PrincipalRegistry::new();
    registry.add_group("public", AccessLevel(0), ViewRule::RootOnly);
    let analysts = registry.add_group("analysts", AccessLevel(2), ViewRule::MaxDepth(1));
    let researchers = registry.add_group("researchers", AccessLevel(4), ViewRule::Full);
    registry.set_override(analysts, SpecId(0), ViewRule::Full);
    if specs > 1 {
        registry.set_override(researchers, SpecId(1), ViewRule::RootOnly);
    }
    registry
}

fn random_repo(seed: u64, specs: usize) -> Repository {
    let mut repo = Repository::new();
    for i in 0..specs as u64 {
        let spec =
            generate_spec(&SpecParams { seed: seed.wrapping_add(i), ..SpecParams::default() });
        repo.insert_spec(spec, Policy::public()).unwrap();
    }
    repo
}

fn hits_identical(a: &[KeywordHit], b: &[KeywordHit]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.spec == y.spec && x.prefix == y.prefix && x.matched == y.matched)
}

/// One read request shape: `(group, query, kind)` where kind selects the
/// query class (and, for ranked, the mode).
#[derive(Clone, Copy, Debug)]
struct ReadDesc {
    group: &'static str,
    query: &'static str,
    kind: u8,
}

impl ReadDesc {
    fn to_request(self) -> ServeRequest {
        let (group, query) = (self.group.to_string(), self.query.to_string());
        match self.kind % 5 {
            0 => ServeRequest::Keyword { group, query },
            1 => ServeRequest::Private { group, query, plan: Plan::FilterThenSearch },
            2 => ServeRequest::Private { group, query, plan: Plan::SearchThenZoomOut },
            3 => ServeRequest::Ranked { group, query, mode: RankingMode::ExactFull },
            _ => ServeRequest::Ranked {
                group,
                query,
                mode: RankingMode::NoisyFull { epsilon: 1.0, seed: 11 },
            },
        }
    }

    /// Serve the same request on the blocking reference cluster and check
    /// the concurrent `response` bit-identical against it.
    fn check_against(
        &self,
        reference: &EngineCluster,
        response: &ServeResponse,
    ) -> Result<(), String> {
        let (group, query) = (self.group, self.query);
        match (self.kind % 5, &response.answer) {
            (0, QueryAnswer::Keyword(Some(hits))) => {
                let expect = reference.search_as(group, query).expect("known group");
                if !hits_identical(hits, &expect) {
                    return Err(format!("keyword diverged for {group}/{query:?}"));
                }
            }
            (1 | 2, QueryAnswer::Private(Some(outcome))) => {
                let plan = if self.kind % 5 == 1 {
                    Plan::FilterThenSearch
                } else {
                    Plan::SearchThenZoomOut
                };
                let expect = reference.private_search_as(group, query, plan).expect("known group");
                if !hits_identical(&outcome.hits, &expect.hits)
                    || outcome.views_built != expect.views_built
                    || outcome.zoom_steps != expect.zoom_steps
                    || outcome.discarded != expect.discarded
                {
                    return Err(format!("private({plan:?}) diverged for {group}/{query:?}"));
                }
            }
            (3 | 4, QueryAnswer::Ranked(Some(answer))) => {
                let mode = if self.kind % 5 == 3 {
                    RankingMode::ExactFull
                } else {
                    RankingMode::NoisyFull { epsilon: 1.0, seed: 11 }
                };
                let expect = reference.ranked_search_as(group, query, mode).expect("known group");
                if !hits_identical(&answer.hits, &expect.hits)
                    || !answer.ranked.bitwise_eq(&expect.ranked)
                {
                    return Err(format!(
                        "ranked({mode:?}) diverged for {group}/{query:?} (f64 bits)"
                    ));
                }
            }
            (kind, other) => {
                return Err(format!("wrong answer variant {other:?} for kind {kind}"));
            }
        }
        Ok(())
    }
}

/// Materialize the `i`-th random mutation against the evolving corpus
/// state (`len` = current spec count): 0 → insert, 1 → execution append,
/// 2 → policy swap. Mirrors `incremental_write_equivalence`.
fn mutation_of(kind: u8, seed: u64, repo: &Repository) -> Mutation {
    match kind % 3 {
        0 => Mutation::InsertSpec {
            spec: generate_spec(&SpecParams { seed: seed ^ 0xFACE, ..SpecParams::default() }),
            policy: Policy::public(),
        },
        1 => {
            let target = SpecId((seed % repo.len() as u64) as u32);
            let exec = Executor::new(&repo.entry(target).unwrap().spec)
                .run(&mut HashOracle)
                .expect("stored specs execute");
            Mutation::AddExecution { spec: target, exec }
        }
        _ => Mutation::SetPolicy {
            spec: SpecId((seed % repo.len() as u64) as u32),
            policy: Policy::public(),
        },
    }
}

/// Pre-generate the mutation log by applying each mutation to a scratch
/// replica as it is generated, so targets always exist at apply time —
/// in the front, and in the sequential reference replay, both of which
/// apply the log in this exact order.
fn mutation_log(seed: u64, specs: usize, kinds: &[(u8, u64)]) -> Vec<Mutation> {
    let mut scratch = random_repo(seed, specs);
    kinds
        .iter()
        .map(|&(kind, wseed)| {
            let m = mutation_of(kind, wseed, &scratch);
            scratch.apply(m.clone()).expect("generated mutation valid");
            m
        })
        .collect()
}

/// The version-vector epoch (sum of per-shard components) — the same
/// scalar the front stamps on every response.
fn epoch_of(cluster: &EngineCluster) -> u64 {
    cluster.version_vector().iter().sum()
}

/// Drive one concurrent run and check every response against the
/// sequential replay. Returns the number of responses checked.
#[allow(clippy::too_many_arguments)]
fn run_and_check(
    seed: u64,
    specs: usize,
    shards: usize,
    threads: usize,
    clients: usize,
    reads: &[ReadDesc],
    mutation_kinds: &[(u8, u64)],
) -> Result<usize, String> {
    let mutations = mutation_log(seed, specs, mutation_kinds);
    let pool = Arc::new(WorkerPool::new(threads));
    let cluster = EngineCluster::with_config(
        random_repo(seed, specs),
        registry(specs),
        shards,
        ShardStrategy::RoundRobin,
        Arc::clone(&pool),
    );
    let front = ServeFront::with_pool(cluster, pool);

    // Client 0 interleaves the whole mutation log between its reads (so
    // the mutation order is its submission order); every other client
    // submits reads only. All clients fire their full slice before
    // waiting, maximizing in-flight overlap.
    let lanes = clients.max(1);
    let mut read_slices: Vec<Vec<ReadDesc>> = vec![Vec::new(); lanes];
    for (i, r) in reads.iter().enumerate() {
        read_slices[i % lanes].push(*r);
    }
    let mut mutation_responses: Vec<(usize, ServeResponse)> = Vec::new();
    let mut read_responses: Vec<(ReadDesc, ServeResponse)> = Vec::new();
    std::thread::scope(|scope| {
        let front = &front;
        let mutations = &mutations;
        let mut handles = Vec::new();
        for (c, slice) in read_slices.iter().enumerate() {
            handles.push(scope.spawn(move || {
                let mut tickets = Vec::new();
                if c == 0 {
                    // Interleave: one mutation after every couple reads,
                    // remainder at the end.
                    let mut m = 0usize;
                    for (i, r) in slice.iter().enumerate() {
                        tickets.push((None, front.submit(r.to_request())));
                        if i % 2 == 1 && m < mutations.len() {
                            tickets.push((
                                Some(m),
                                front.submit(ServeRequest::mutate(mutations[m].clone())),
                            ));
                            m += 1;
                        }
                    }
                    while m < mutations.len() {
                        tickets.push((
                            Some(m),
                            front.submit(ServeRequest::mutate(mutations[m].clone())),
                        ));
                        m += 1;
                    }
                } else {
                    for r in slice {
                        tickets.push((None, front.submit(r.to_request())));
                    }
                }
                let mut reads_out = Vec::new();
                let mut writes_out = Vec::new();
                let mut read_idx = 0usize;
                for (tag, ticket) in tickets {
                    let response = ticket.wait();
                    match tag {
                        Some(m) => writes_out.push((m, response)),
                        None => {
                            reads_out.push((slice[read_idx], response));
                            read_idx += 1;
                        }
                    }
                }
                (reads_out, writes_out)
            }));
        }
        for h in handles {
            let (reads_out, writes_out) = h.join().expect("client thread");
            read_responses.extend(reads_out);
            mutation_responses.extend(writes_out);
        }
    });
    // Only client 0 mutates, so after an index sort the responses line up
    // with the mutation log's submission (= application) order.
    mutation_responses.sort_by_key(|(m, _)| *m);
    front.quiesce();
    let stats = front.stats();
    if stats.completed != stats.submitted {
        return Err(format!(
            "front lost requests: {} submitted, {} completed",
            stats.submitted, stats.completed
        ));
    }

    // Sequential replay: reference answers at every mutation prefix.
    let mut reference = EngineCluster::with_config(
        random_repo(seed, specs),
        registry(specs),
        shards,
        ShardStrategy::RoundRobin,
        Arc::new(WorkerPool::new(1)),
    );
    let mut checked = 0usize;
    let mut remaining: Vec<(ReadDesc, ServeResponse)> = read_responses;
    for k in 0..=mutations.len() {
        let epoch = epoch_of(&reference);
        let mut unserved = Vec::new();
        for (desc, response) in remaining {
            if response.epoch == epoch {
                desc.check_against(&reference, &response)
                    .map_err(|e| format!("at mutation prefix {k}: {e}"))?;
                checked += 1;
            } else {
                unserved.push((desc, response));
            }
        }
        remaining = unserved;
        if k < mutations.len() {
            let expect = reference.mutate(mutations[k].clone());
            // The concurrent mutation response must agree with the
            // sequential application: same effect, same post-apply epoch.
            let response = &mutation_responses[k].1;
            match (&response.answer, &expect) {
                (QueryAnswer::Mutated(Ok(effect)), Ok(reference_effect)) => {
                    if effect != reference_effect {
                        return Err(format!(
                            "mutation {k} effect diverged: {effect:?} vs {reference_effect:?}"
                        ));
                    }
                }
                (answer, expect) => {
                    return Err(format!("mutation {k}: {answer:?} vs reference {expect:?}"));
                }
            }
            if response.epoch != epoch_of(&reference) {
                return Err(format!(
                    "mutation {k} reported epoch {} but the sequential replay sits at {}",
                    response.epoch,
                    epoch_of(&reference)
                ));
            }
            checked += 1;
        }
    }
    if !remaining.is_empty() {
        let stray: Vec<u64> = remaining.iter().map(|(_, r)| r.epoch).collect();
        return Err(format!(
            "{} responses carry epochs matching no sequential cut (fence violated): {stray:?}",
            remaining.len()
        ));
    }
    Ok(checked)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline property: randomized concurrent interleavings of
    /// queries and typed mutations, across shard counts and pool sizes,
    /// are bit-identical to a sequential cut of the same request log.
    #[test]
    fn concurrent_responses_match_a_sequential_cut(
        seed in any::<u64>(),
        specs in 2usize..5,
        shards in 1usize..4,
        threads in 1usize..4,
        clients in 1usize..4,
        read_picks in proptest::collection::vec((0usize..GROUPS.len(), 0usize..QUERIES.len(), 0u8..5), 6..24),
        mutation_kinds in proptest::collection::vec((0u8..3, any::<u64>()), 1..6),
    ) {
        let reads: Vec<ReadDesc> = read_picks
            .iter()
            .map(|&(g, q, kind)| ReadDesc { group: GROUPS[g], query: QUERIES[q], kind })
            .collect();
        let checked = run_and_check(seed, specs, shards, threads, clients, &reads, &mutation_kinds)
            .map_err(TestCaseError::Fail)?;
        prop_assert_eq!(checked, reads.len() + mutation_kinds.len());
    }

    /// Reads-only runs never observe more than one epoch, and every warm
    /// repetition shares the cold answer bit-for-bit — the degenerate cut
    /// where the fence has nothing to do.
    #[test]
    fn read_only_runs_are_single_epoch(
        seed in any::<u64>(),
        specs in 2usize..5,
        shards in 1usize..4,
        threads in 1usize..3,
    ) {
        let reads: Vec<ReadDesc> = (0..18)
            .map(|i| ReadDesc {
                group: GROUPS[i % GROUPS.len()],
                query: QUERIES[i % QUERIES.len()],
                kind: (i % 5) as u8,
            })
            .collect();
        let checked = run_and_check(seed, specs, shards, threads, 3, &reads, &[])
            .map_err(TestCaseError::Fail)?;
        prop_assert_eq!(checked, reads.len());
    }
}

#[test]
fn deterministic_smoke_with_heavy_interleaving() {
    // One fixed, larger run for CI logs: 3 clients over a 2-thread pool,
    // mutations of every kind racing reads of every class.
    let reads: Vec<ReadDesc> = (0..48)
        .map(|i| ReadDesc {
            group: GROUPS[i % GROUPS.len()],
            query: QUERIES[(i * 7) % QUERIES.len()],
            kind: (i % 5) as u8,
        })
        .collect();
    let kinds: Vec<(u8, u64)> = (0..9).map(|i| ((i % 3) as u8, 1000 + i as u64)).collect();
    let checked = run_and_check(4242, 4, 3, 2, 3, &reads, &kinds).expect("equivalence holds");
    assert_eq!(checked, reads.len() + kinds.len());
}
