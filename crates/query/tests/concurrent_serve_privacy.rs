//! Privacy under concurrency: the multiplexed serving front must uphold
//! the same group-isolation guarantees the blocking stack proves in
//! `lazy_access_equivalence` and `cluster_equivalence` — under racing
//! policy swaps and interleaved multi-group traffic, where a stale memo
//! or a mis-keyed front-cache entry becomes a *leak*, not just a wrong
//! answer.
//!
//! * **No cross-group leakage through the front cache.** Groups with
//!   different privileges querying the same strings concurrently each get
//!   exactly their own reference answer (checked bit-for-bit per group),
//!   and where the reference answers differ between groups, the served
//!   answers differ too — a shared front-cache entry would fail both.
//! * **No stale access views across racing `SetPolicy` swaps.** Reads
//!   race a stream of policy swaps; every response must match the
//!   sequential reference at the epoch its fence admitted, which a stale
//!   `AccessCache` memo (resolved pre-swap, served post-swap) cannot.
//! * **The resolver touch-counter invariant, multiplexed.** PR 3 proved
//!   rule resolution never leaves the candidate postings union per
//!   query; here the *aggregate* across a whole concurrent run stays
//!   within the per-shard postings-union × groups budget (plus one
//!   re-resolution per group per swap) — concurrency must not create
//!   hidden resolution work on inadmissible specs, because resolution is
//!   timing-observable.

use ppwf_core::policy::{AccessLevel, Policy};
use ppwf_query::cluster::EngineCluster;
use ppwf_query::keyword::{KeywordHit, KeywordQuery};
use ppwf_query::route::ShardStrategy;
use ppwf_query::serve::{QueryAnswer, ServeFront, ServeRequest, ServeResponse};
use ppwf_repo::mutation::Mutation;
use ppwf_repo::pool::WorkerPool;
use ppwf_repo::principals::{PrincipalRegistry, ViewRule};
use ppwf_repo::repository::{Repository, SpecId};
use ppwf_workloads::genspec::{generate_spec, SpecParams};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

const QUERIES: [&str; 5] = ["kw0", "kw0, kw1", "kw2", "kw1, kw3", "kw0, kw2"];
const GROUPS: [&str; 3] = ["public", "analysts", "researchers"];

fn registry(specs: usize) -> PrincipalRegistry {
    let mut registry = PrincipalRegistry::new();
    registry.add_group("public", AccessLevel(0), ViewRule::RootOnly);
    let analysts = registry.add_group("analysts", AccessLevel(2), ViewRule::MaxDepth(1));
    let researchers = registry.add_group("researchers", AccessLevel(4), ViewRule::Full);
    registry.set_override(analysts, SpecId(0), ViewRule::Full);
    if specs > 1 {
        registry.set_override(researchers, SpecId(1), ViewRule::RootOnly);
    }
    registry
}

fn random_repo(seed: u64, specs: usize) -> Repository {
    let mut repo = Repository::new();
    for i in 0..specs as u64 {
        let spec =
            generate_spec(&SpecParams { seed: seed.wrapping_add(i), ..SpecParams::default() });
        repo.insert_spec(spec, Policy::public()).unwrap();
    }
    repo
}

fn hits_identical(a: &[KeywordHit], b: &[KeywordHit]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.spec == y.spec && x.prefix == y.prefix && x.matched == y.matched)
}

fn front_of(seed: u64, specs: usize, shards: usize, threads: usize) -> ServeFront {
    let pool = Arc::new(WorkerPool::new(threads));
    let cluster = EngineCluster::with_config(
        random_repo(seed, specs),
        registry(specs),
        shards,
        ShardStrategy::RoundRobin,
        Arc::clone(&pool),
    );
    ServeFront::with_pool(cluster, pool)
}

fn reference_of(seed: u64, specs: usize, shards: usize) -> EngineCluster {
    EngineCluster::with_config(
        random_repo(seed, specs),
        registry(specs),
        shards,
        ShardStrategy::RoundRobin,
        Arc::new(WorkerPool::new(1)),
    )
}

fn keyword(group: &str, query: &str) -> ServeRequest {
    ServeRequest::Keyword { group: group.into(), query: query.into() }
}

fn keyword_hits(response: &ServeResponse) -> &Arc<Vec<KeywordHit>> {
    match &response.answer {
        QueryAnswer::Keyword(Some(hits)) => hits,
        other => panic!("expected a keyword answer, got {other:?}"),
    }
}

/// Upper bound on legitimate rule resolutions for a run: for every shard,
/// each queried group may resolve at most the union of the shard's
/// candidate postings over all queried terms — the multiplexed extension
/// of `filter_plan_resolves_only_postings_union`.
fn resolution_budget(front: &ServeFront, queries: &[&str], groups: usize) -> u64 {
    front.with_cluster(|cluster| {
        let mut budget = 0u64;
        for shard in cluster.shards() {
            let mut union: HashSet<SpecId> = HashSet::new();
            for q in queries {
                for term in &KeywordQuery::parse(q).terms {
                    union.extend(shard.index().lookup_query_term(term).iter().map(|p| p.spec));
                }
            }
            budget += (union.len() * groups) as u64;
        }
        budget
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Interleaved multi-group traffic over one front: each group's
    /// answers are exactly its own reference's, and where references
    /// differ across groups the served answers differ too — the shared
    /// front cache never crosses group lines.
    #[test]
    fn groups_stay_isolated_under_interleaving(
        seed in any::<u64>(),
        specs in 2usize..6,
        shards in 1usize..4,
        threads in 1usize..3,
    ) {
        let front = front_of(seed, specs, shards, threads);
        let reference = reference_of(seed, specs, shards);
        // All groups submit all queries from racing client threads.
        let mut responses: Vec<(usize, usize, ServeResponse)> = Vec::new();
        std::thread::scope(|scope| {
            let front = &front;
            let handles: Vec<_> = GROUPS
                .iter()
                .enumerate()
                .map(|(g, group)| {
                    scope.spawn(move || {
                        let tickets: Vec<_> = (0..2 * QUERIES.len())
                            .map(|i| {
                                let q = QUERIES[i % QUERIES.len()];
                                (i % QUERIES.len(), front.submit(keyword(group, q)))
                            })
                            .collect();
                        tickets
                            .into_iter()
                            .map(|(q, t)| (g, q, t.wait()))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                responses.extend(h.join().expect("group client"));
            }
        });
        front.quiesce();
        for (g, q, response) in &responses {
            let expect = reference.search_as(GROUPS[*g], QUERIES[*q]).expect("known group");
            prop_assert!(
                hits_identical(keyword_hits(response), &expect),
                "group {} got a foreign answer for {:?}", GROUPS[*g], QUERIES[*q]
            );
        }
        // Where privileges separate the references, they must separate
        // the served answers (belt to the bitwise check's suspenders).
        for (q, query) in QUERIES.iter().enumerate() {
            let public = reference.search_as("public", query).unwrap();
            let researchers = reference.search_as("researchers", query).unwrap();
            if !hits_identical(&public, &researchers) {
                let served_public = responses
                    .iter()
                    .find(|(g, rq, _)| *g == 0 && rq == &q)
                    .map(|(_, _, r)| keyword_hits(r))
                    .expect("public served");
                let served_researchers = responses
                    .iter()
                    .find(|(g, rq, _)| *g == 2 && rq == &q)
                    .map(|(_, _, r)| keyword_hits(r))
                    .expect("researchers served");
                prop_assert!(
                    !hits_identical(served_public, served_researchers),
                    "privilege boundary vanished for {:?}", QUERIES[q]
                );
            }
        }
    }

    /// Reads racing a stream of `SetPolicy` swaps: every answer matches
    /// the sequential reference at its fenced epoch, so no stale access
    /// memo or front-cache entry survives a swap into a later serving.
    #[test]
    fn policy_swaps_never_serve_stale_views(
        seed in any::<u64>(),
        specs in 2usize..5,
        shards in 1usize..4,
        threads in 1usize..3,
        swap_targets in proptest::collection::vec(0usize..4, 1..5),
    ) {
        let front = front_of(seed, specs, shards, threads);
        let swaps: Vec<Mutation> = swap_targets
            .iter()
            .map(|&t| Mutation::SetPolicy {
                spec: SpecId((t % specs) as u32),
                policy: Policy::public(),
            })
            .collect();
        let mut read_responses: Vec<(usize, usize, ServeResponse)> = Vec::new();
        let mut swap_epochs: Vec<u64> = Vec::new();
        std::thread::scope(|scope| {
            let front = &front;
            let swaps = &swaps;
            let swapper = scope.spawn(move || {
                let tickets: Vec<_> = swaps
                    .iter()
                    .map(|m| front.submit(ServeRequest::mutate(m.clone())))
                    .collect();
                tickets.into_iter().map(|t| t.wait().epoch).collect::<Vec<_>>()
            });
            let handles: Vec<_> = GROUPS
                .iter()
                .enumerate()
                .map(|(g, group)| {
                    scope.spawn(move || {
                        let tickets: Vec<_> = (0..2 * QUERIES.len())
                            .map(|i| {
                                let q = QUERIES[i % QUERIES.len()];
                                (i % QUERIES.len(), front.submit(keyword(group, q)))
                            })
                            .collect();
                        tickets
                            .into_iter()
                            .map(|(q, t)| (g, q, t.wait()))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                read_responses.extend(h.join().expect("group client"));
            }
            swap_epochs = swapper.join().expect("swapper");
        });
        front.quiesce();

        // Sequential replay over the swap prefixes.
        let mut reference = reference_of(seed, specs, shards);
        let mut remaining = read_responses;
        for k in 0..=swaps.len() {
            let epoch: u64 = reference.version_vector().iter().sum();
            let mut unserved = Vec::new();
            for (g, q, response) in remaining {
                if response.epoch == epoch {
                    let expect =
                        reference.search_as(GROUPS[g], QUERIES[q]).expect("known group");
                    prop_assert!(
                        hits_identical(keyword_hits(&response), &expect),
                        "stale or foreign answer for {} {:?} at swap prefix {}",
                        GROUPS[g], QUERIES[q], k
                    );
                } else {
                    unserved.push((g, q, response));
                }
            }
            remaining = unserved;
            if k < swaps.len() {
                reference.mutate(swaps[k].clone()).expect("swap valid");
                let replay_epoch: u64 = reference.version_vector().iter().sum();
                prop_assert_eq!(swap_epochs[k], replay_epoch, "swap {} epoch diverged", k);
            }
        }
        prop_assert!(
            remaining.is_empty(),
            "{} responses matched no swap prefix (fence violated)", remaining.len()
        );
    }

    /// The touch-counter invariant on the multiplexed path: a concurrent
    /// read-only run resolves no access rule outside the per-shard
    /// candidate postings unions, and racing swaps add at most one
    /// re-resolution per group per swapped spec.
    #[test]
    fn multiplexed_resolution_stays_within_the_postings_budget(
        seed in any::<u64>(),
        specs in 2usize..6,
        shards in 1usize..4,
        swaps in 0usize..4,
    ) {
        let front = front_of(seed, specs, shards, 2);
        std::thread::scope(|scope| {
            let front = &front;
            for (g, group) in GROUPS.iter().enumerate() {
                scope.spawn(move || {
                    let tickets: Vec<_> = (0..2 * QUERIES.len())
                        .map(|i| front.submit(keyword(group, QUERIES[(i + g) % QUERIES.len()])))
                        .collect();
                    for t in tickets {
                        t.wait();
                    }
                });
            }
            scope.spawn(move || {
                for s in 0..swaps {
                    front
                        .submit(ServeRequest::mutate(Mutation::SetPolicy {
                            spec: SpecId((s % specs) as u32),
                            policy: Policy::public(),
                        }))
                        .wait();
                }
            });
        });
        front.quiesce();
        let budget = resolution_budget(&front, &QUERIES, GROUPS.len())
            + (swaps * GROUPS.len()) as u64;
        let resolved = front.with_cluster(|c| c.stats().aggregate.access.misses);
        prop_assert!(
            resolved <= budget,
            "{} rule resolutions exceed the postings-union budget {} — \
             the multiplexed path resolved inadmissible specs", resolved, budget
        );
    }
}
