//! Correctness of the query fast path: caching layers must be *invisible*
//! in answers.
//!
//! Property 1 (bit-identical answers): for random repositories, every
//! privilege group and every query, the cached search plans return exactly
//! the hits of the uncached plan — same specs, same prefixes, same matched
//! modules, same flattened view graphs — on both the cold (populating) and
//! warm (hitting) pass.
//!
//! Property 2 (no cross-group leakage): interleaving queries from groups
//! with different privileges never changes any group's answers relative to
//! an isolated, cacheless evaluation of that group alone. Sec. 4's caching
//! design stands or falls on this.
//!
//! Property 3 (staleness): mutating the repository invalidates cached
//! views and cached group answers; post-mutation answers equal a fresh
//! uncached evaluation.

use ppwf_core::policy::{AccessLevel, Policy};
use ppwf_query::engine::QueryEngine;
use ppwf_query::keyword::{search_filtered, search_filtered_with_cache, KeywordHit, KeywordQuery};
use ppwf_repo::keyword_index::KeywordIndex;
use ppwf_repo::principals::{PrincipalRegistry, ViewRule};
use ppwf_repo::repository::Repository;
use ppwf_repo::view_cache::ViewCache;
use ppwf_workloads::genspec::{generate_spec, SpecParams};
use proptest::prelude::*;

const QUERIES: [&str; 5] = ["kw0", "kw0, kw1", "kw2", "kw1, kw3", "kw0, kw2"];
const GROUPS: [&str; 3] = ["public", "analysts", "researchers"];

fn registry() -> PrincipalRegistry {
    let mut registry = PrincipalRegistry::new();
    registry.add_group("public", AccessLevel(0), ViewRule::RootOnly);
    registry.add_group("analysts", AccessLevel(2), ViewRule::MaxDepth(1));
    registry.add_group("researchers", AccessLevel(4), ViewRule::Full);
    registry
}

fn random_repo(seed: u64, specs: usize) -> Repository {
    let mut repo = Repository::new();
    for i in 0..specs as u64 {
        let spec =
            generate_spec(&SpecParams { seed: seed.wrapping_add(i), ..SpecParams::default() });
        repo.insert_spec(spec, Policy::public()).unwrap();
    }
    repo
}

/// Bit-level hit equality: identity fields plus the flattened view's full
/// node and edge structure (the artifact a client actually renders).
fn hits_identical(a: &[KeywordHit], b: &[KeywordHit]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.spec == y.spec
                && x.prefix == y.prefix
                && x.matched == y.matched
                && views_identical(&x.view, &y.view)
        })
}

fn views_identical(a: &ppwf_model::expand::SpecView, b: &ppwf_model::expand::SpecView) -> bool {
    let (ga, gb) = (a.graph(), b.graph());
    ga.node_count() == gb.node_count()
        && ga.edge_count() == gb.edge_count()
        && ga.nodes().zip(gb.nodes()).all(|((i, n), (j, m))| i == j && n == m)
        && ga.edges().zip(gb.edges()).all(|((i, e), (j, f))| {
            i == j && e.from == f.from && e.to == f.to && e.payload == f.payload
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cached plans agree with the uncached plan bit-for-bit, cold and
    /// warm, for every group — with all groups sharing one ViewCache, as
    /// in production.
    #[test]
    fn cached_answers_bit_identical_across_groups(seed in any::<u64>(), specs in 2usize..6) {
        let repo = random_repo(seed, specs);
        let index = KeywordIndex::build(&repo);
        let registry = registry();
        let views = ViewCache::new(256);
        for group in GROUPS {
            let access = registry.access_map(&repo, group).unwrap();
            for q in QUERIES {
                let query = KeywordQuery::parse(q);
                let plain = search_filtered(&repo, &index, &query, &access);
                let cold = search_filtered_with_cache(&repo, &index, &query, &access, &views);
                let warm = search_filtered_with_cache(&repo, &index, &query, &access, &views);
                prop_assert!(
                    hits_identical(&plain, &cold),
                    "cold cached ≠ uncached for group {} query {:?}", group, q
                );
                prop_assert!(
                    hits_identical(&plain, &warm),
                    "warm cached ≠ uncached for group {} query {:?}", group, q
                );
            }
        }
    }

    /// Interleaved multi-group traffic through one engine changes nothing:
    /// each group's answers equal an isolated cacheless evaluation, so no
    /// group can observe (or leak into) another group's cache entries.
    #[test]
    fn engine_interleaving_leaks_nothing(seed in any::<u64>(), specs in 2usize..5) {
        let repo = random_repo(seed, specs);
        let reference_index = KeywordIndex::build(&repo);
        let registry_for_engine = registry();
        let reference_registry = registry();
        let engine = QueryEngine::new(random_repo(seed, specs), registry_for_engine);

        // Interleave: group order varies per query, every query asked twice
        // (second ask served from the group cache).
        for (qi, q) in QUERIES.iter().enumerate() {
            for offset in 0..GROUPS.len() {
                let group = GROUPS[(qi + offset) % GROUPS.len()];
                let warm = engine.search_as(group, q).unwrap();
                let again = engine.search_as(group, q).unwrap();
                let access = reference_registry.access_map(&repo, group).unwrap();
                let isolated =
                    search_filtered(&repo, &reference_index, &KeywordQuery::parse(q), &access);
                prop_assert!(
                    hits_identical(&isolated, &warm),
                    "engine answer diverged for group {} query {:?}", group, q
                );
                prop_assert!(
                    hits_identical(&isolated, &again),
                    "second (cached) answer diverged for group {} query {:?}", group, q
                );
            }
        }
        let stats = engine.stats();
        prop_assert!(stats.keyword.hits >= QUERIES.len() as u64 * GROUPS.len() as u64,
            "second asks must be cache hits (got {})", stats.keyword.hits);
    }

    /// Mutating the repository invalidates both cache layers: post-mutation
    /// answers equal a fresh cacheless evaluation of the mutated state.
    #[test]
    fn mutation_invalidates_both_layers(seed in any::<u64>()) {
        let mut engine = QueryEngine::new(random_repo(seed, 2), registry());
        for g in GROUPS {
            engine.search_as(g, "kw0, kw1").unwrap();
        }
        let spec = generate_spec(&SpecParams { seed: seed ^ 0xABCD, ..SpecParams::default() });
        engine
            .mutate(ppwf_repo::mutation::Mutation::InsertSpec { spec, policy: Policy::public() })
            .unwrap();
        let mut reference_repo = random_repo(seed, 2);
        let spec = generate_spec(&SpecParams { seed: seed ^ 0xABCD, ..SpecParams::default() });
        reference_repo.insert_spec(spec, Policy::public()).unwrap();
        let reference_index = KeywordIndex::build(&reference_repo);
        let reference_registry = registry();
        for g in GROUPS {
            let access = reference_registry.access_map(&reference_repo, g).unwrap();
            let fresh = search_filtered(
                &reference_repo,
                &reference_index,
                &KeywordQuery::parse("kw0, kw1"),
                &access,
            );
            let served = engine.search_as(g, "kw0, kw1").unwrap();
            prop_assert!(
                hits_identical(&fresh, &served),
                "stale answer served for group {} after mutation", g
            );
        }
    }
}
