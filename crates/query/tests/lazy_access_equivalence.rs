//! Correctness of lazy access resolution: the memoized
//! [`AccessResolver`] must be *invisible* in answers and *visible* only in
//! how little it resolves.
//!
//! Property 1 (bit-identical answers): for random repositories and a
//! registry with per-spec overrides, the lazy resolver produces exactly
//! the eager `access_map` answers — keyword, private (both plans,
//! including cost counters), and ranked search (orders and bitwise `f64`
//! scores) — through the raw search functions, the single engine, and the
//! cluster across shard counts and placement strategies.
//!
//! Property 2 (no cross-group leakage): many groups resolving through one
//! shared [`AccessCache`] never observe another group's prefixes; each
//! group's lazily resolved views equal its isolated eager map.
//!
//! Property 3 (filter-then-search privacy): the filter plan's resolver
//! never resolves a spec outside the query's candidate postings union —
//! laziness must not weaken filter-first, and inadmissible specs outside
//! the union must stay out of *all* timing-observable work, including
//! rule resolution itself.
//!
//! Property 4 (staleness): after repository mutations and registry swaps,
//! lazy answers still equal a fresh eager evaluation.

use ppwf_core::policy::{AccessLevel, Policy};
use ppwf_query::engine::{Plan, QueryEngine};
use ppwf_query::keyword::{search_filtered, KeywordHit, KeywordQuery};
use ppwf_query::privacy_exec::{filter_then_search, search_then_zoom_out};
use ppwf_query::ranking::{
    idfs_for_terms, profiles_for_hits, rank_by_scores, score_with_idfs, RankingMode,
};
use ppwf_query::EngineCluster;
use ppwf_repo::keyword_index::KeywordIndex;
use ppwf_repo::principals::{AccessCache, PrincipalRegistry, ViewRule};
use ppwf_repo::repository::{Repository, SpecId};
use ppwf_workloads::genspec::{generate_spec, SpecParams};
use proptest::prelude::*;
use std::collections::HashSet;

const QUERIES: [&str; 6] = ["kw0", "kw0, kw1", "kw2", "kw1, kw3", "kw5", "kw0, kw2"];
const GROUPS: [&str; 3] = ["public", "analysts", "researchers"];

/// A registry with per-spec overrides, so lazy resolution must honor more
/// than the default rule.
fn registry(specs: usize) -> PrincipalRegistry {
    let mut registry = PrincipalRegistry::new();
    registry.add_group("public", AccessLevel(0), ViewRule::RootOnly);
    let analysts = registry.add_group("analysts", AccessLevel(2), ViewRule::MaxDepth(1));
    let researchers = registry.add_group("researchers", AccessLevel(4), ViewRule::Full);
    registry.set_override(analysts, SpecId(0), ViewRule::Full);
    if specs > 1 {
        registry.set_override(researchers, SpecId(1), ViewRule::RootOnly);
        registry.set_override(analysts, SpecId((specs - 1) as u32), ViewRule::RootOnly);
    }
    registry
}

fn random_repo(seed: u64, specs: usize) -> Repository {
    let mut repo = Repository::new();
    for i in 0..specs as u64 {
        let spec =
            generate_spec(&SpecParams { seed: seed.wrapping_add(i), ..SpecParams::default() });
        repo.insert_spec(spec, Policy::public()).unwrap();
    }
    repo
}

fn hits_identical(a: &[KeywordHit], b: &[KeywordHit]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.spec == y.spec && x.prefix == y.prefix && x.matched == y.matched)
}

/// The candidate postings union of a query: every spec any term's
/// *unfiltered* postings mention. Filter-then-search may resolve access
/// rules for these specs and no others.
fn postings_union(index: &KeywordIndex, query: &KeywordQuery) -> HashSet<SpecId> {
    query.terms.iter().flat_map(|t| index.lookup_query_term(t)).map(|p| p.spec).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Raw search functions: a lazy resolver threaded through
    /// `search_filtered` / both private plans answers bit-identically to
    /// the eager whole-corpus map, cost counters included.
    #[test]
    fn resolver_matches_eager_map_in_answers(
        seed in any::<u64>(),
        specs in 2usize..7,
    ) {
        let repo = random_repo(seed, specs);
        let index = KeywordIndex::build(&repo);
        let registry = registry(specs);
        let cache = AccessCache::new();
        for group in GROUPS {
            let eager = registry.access_map(&repo, group).unwrap();
            for q in QUERIES {
                let query = KeywordQuery::parse(q);
                let resolver = cache.resolver(&registry, &repo, group).unwrap();
                let lazy_hits = search_filtered(&repo, &index, &query, &resolver);
                let eager_hits = search_filtered(&repo, &index, &query, &eager);
                prop_assert!(
                    hits_identical(&eager_hits, &lazy_hits),
                    "keyword diverged for group {}, query {:?}", group, q
                );

                let lazy_filter = filter_then_search(&repo, &index, &query, &resolver);
                let eager_filter = filter_then_search(&repo, &index, &query, &eager);
                prop_assert!(hits_identical(&eager_filter.hits, &lazy_filter.hits));
                prop_assert_eq!(eager_filter.views_built, lazy_filter.views_built);

                let lazy_zoom = search_then_zoom_out(&repo, &index, &query, &resolver);
                let eager_zoom = search_then_zoom_out(&repo, &index, &query, &eager);
                prop_assert!(hits_identical(&eager_zoom.hits, &lazy_zoom.hits));
                prop_assert_eq!(eager_zoom.zoom_steps, lazy_zoom.zoom_steps);
                prop_assert_eq!(eager_zoom.discarded, lazy_zoom.discarded);
                prop_assert_eq!(eager_zoom.views_built, lazy_zoom.views_built);
            }
        }
    }

    /// The engine (lazy inside) answers bit-identically to an eager
    /// evaluation — keyword, private plans, and ranked answers with
    /// bitwise-equal `f64` scores.
    #[test]
    fn engine_lazy_matches_eager_reference(
        seed in any::<u64>(),
        specs in 2usize..6,
    ) {
        let repo = random_repo(seed, specs);
        let index = KeywordIndex::build(&repo);
        let reg = registry(specs);
        let engine = QueryEngine::new(random_repo(seed, specs), registry(specs));
        let modes = [
            RankingMode::ExactFull,
            RankingMode::VisibleOnly,
            RankingMode::BucketizedFull { base: 2.0 },
            RankingMode::NoisyFull { epsilon: 1.0, seed: 7 },
        ];
        for group in GROUPS {
            let eager = reg.access_map(&repo, group).unwrap();
            for q in QUERIES {
                let query = KeywordQuery::parse(q);
                let reference = search_filtered(&repo, &index, &query, &eager);
                let served = engine.search_as(group, q).unwrap();
                prop_assert!(
                    hits_identical(&reference, &served),
                    "engine diverged for group {}, query {:?}", group, q
                );
                for plan in [Plan::FilterThenSearch, Plan::SearchThenZoomOut] {
                    let eager_outcome = match plan {
                        Plan::FilterThenSearch =>
                            filter_then_search(&repo, &index, &query, &eager),
                        Plan::SearchThenZoomOut =>
                            search_then_zoom_out(&repo, &index, &query, &eager),
                    };
                    let served = engine.private_search_as(group, q, plan).unwrap();
                    prop_assert!(hits_identical(&eager_outcome.hits, &served.hits));
                    prop_assert_eq!(eager_outcome.zoom_steps, served.zoom_steps);
                    prop_assert_eq!(eager_outcome.discarded, served.discarded);
                }
                // Ranked: recompute the eager reference scores by hand.
                let profiles = profiles_for_hits(&repo, &reference, &query.terms);
                let idfs = idfs_for_terms(&index, &query.terms);
                for mode in modes {
                    let scores: Vec<f64> =
                        profiles.iter().map(|p| score_with_idfs(&idfs, p, mode)).collect();
                    let order = rank_by_scores(&scores);
                    let (_, ranked) = engine.ranked_search_as(group, q, mode).unwrap();
                    prop_assert_eq!(&order, &ranked.order,
                        "order diverged for {}, {:?}, {:?}", group, q, mode);
                    prop_assert_eq!(&scores, &ranked.scores,
                        "scores diverged (f64 bits) for {}, {:?}, {:?}", group, q, mode);
                }
            }
        }
    }

    /// The cluster (lazy per shard) answers bit-identically to an eager
    /// single-corpus evaluation, across shard counts.
    #[test]
    fn cluster_lazy_matches_eager_reference(
        seed in any::<u64>(),
        specs in 2usize..6,
        shards in 1usize..5,
    ) {
        let repo = random_repo(seed, specs);
        let index = KeywordIndex::build(&repo);
        let reg = registry(specs);
        let cluster = EngineCluster::new(random_repo(seed, specs), registry(specs), shards);
        for group in GROUPS {
            let eager = reg.access_map(&repo, group).unwrap();
            for q in QUERIES {
                let query = KeywordQuery::parse(q);
                let reference = search_filtered(&repo, &index, &query, &eager);
                let cold = cluster.search_as(group, q).unwrap();
                let warm = cluster.search_as(group, q).unwrap();
                prop_assert!(
                    hits_identical(&reference, &cold),
                    "cold cluster({}) diverged for group {}, query {:?}", shards, group, q
                );
                prop_assert!(hits_identical(&reference, &warm));
                let answer = cluster.ranked_search_as(group, q, RankingMode::ExactFull).unwrap();
                let ranked = &answer.ranked;
                let profiles = profiles_for_hits(&repo, &reference, &query.terms);
                let idfs = idfs_for_terms(&index, &query.terms);
                let scores: Vec<f64> = profiles
                    .iter()
                    .map(|p| score_with_idfs(&idfs, p, RankingMode::ExactFull))
                    .collect();
                prop_assert_eq!(&scores, &ranked.scores,
                    "cluster({}) ranked scores diverged for {}, {:?}", shards, group, q);
            }
        }
    }

    /// One shared `AccessCache`, interleaved multi-group resolution: every
    /// group's lazily resolved prefixes equal its isolated eager map —
    /// fine-grained views never leak into coarse-grained groups through
    /// the shared memo.
    #[test]
    fn shared_access_cache_never_leaks_across_groups(
        seed in any::<u64>(),
        specs in 2usize..7,
    ) {
        let repo = random_repo(seed, specs);
        let reg = registry(specs);
        let cache = AccessCache::new();
        // Interleave: resolve every spec for every group in round-robin
        // order through the one cache, twice (second pass is memo-served).
        for pass in 0..2 {
            for sid in 0..specs {
                for group in GROUPS {
                    let eager = reg.access_map(&repo, group).unwrap();
                    let resolver = cache.resolver(&reg, &repo, group).unwrap();
                    let lazy = resolver.resolve(SpecId(sid as u32)).unwrap();
                    prop_assert_eq!(
                        &*lazy, &eager[&SpecId(sid as u32)],
                        "pass {}: group {} got a foreign prefix for spec {}", pass, group, sid
                    );
                }
            }
        }
        // The memo held per-group products: each group memoized the whole
        // corpus (we asked for all of it), separately.
        for group in GROUPS {
            prop_assert_eq!(cache.memoized_len(group), specs);
        }
    }

    /// Filter-then-search never resolves a spec outside the candidate
    /// postings union: privacy-relevant work stays filter-first even with
    /// resolution made lazy. (Resolution *itself* is timing-observable
    /// work, so over-resolving would be both waste and a side channel.)
    #[test]
    fn filter_plan_resolves_only_postings_union(
        seed in any::<u64>(),
        specs in 2usize..8,
    ) {
        let repo = random_repo(seed, specs);
        let index = KeywordIndex::build(&repo);
        let reg = registry(specs);
        for group in GROUPS {
            let cache = AccessCache::new();
            for q in QUERIES {
                let query = KeywordQuery::parse(q);
                let union = postings_union(&index, &query);
                let resolver = cache.resolver(&reg, &repo, group).unwrap();
                let _ = filter_then_search(&repo, &index, &query, &resolver);
                let resolved = resolver.resolved_specs();
                prop_assert!(
                    resolved.iter().all(|s| union.contains(s)),
                    "group {} query {:?}: resolved {:?} outside postings union {:?}",
                    group, q, resolved, union
                );
                prop_assert!(resolver.resolved_count() <= union.len());
                prop_assert!(resolver.corpus_len() == specs);
            }
        }
    }

    /// The engine-level counters tell the same story: a fresh engine
    /// serving one selective query performs at most |postings union| rule
    /// resolutions — never the whole corpus.
    #[test]
    fn engine_counters_stay_within_postings_union(
        seed in any::<u64>(),
        specs in 3usize..8,
    ) {
        let repo = random_repo(seed, specs);
        let index = KeywordIndex::build(&repo);
        for q in QUERIES {
            let engine = QueryEngine::new(random_repo(seed, specs), registry(specs));
            let union = postings_union(&index, &KeywordQuery::parse(q));
            engine.search_as("analysts", q).unwrap();
            let access = engine.stats().access;
            prop_assert!(
                (access.misses as usize) <= union.len(),
                "query {:?}: {} rule resolutions exceed postings union {}",
                q, access.misses, union.len()
            );
        }
    }

    /// Mutations and registry swaps: lazy answers equal a fresh eager
    /// evaluation afterwards (no stale access views served).
    #[test]
    fn lazy_stays_fresh_across_mutation_and_registry_swap(
        seed in any::<u64>(),
        specs in 2usize..5,
    ) {
        let mut engine = QueryEngine::new(random_repo(seed, specs), registry(specs));
        for g in GROUPS {
            engine.search_as(g, "kw0, kw1").unwrap();
        }
        // Mutate: insert a spec; answers must reflect it afterwards (the
        // access memo itself carries forward — hierarchies are immutable).
        let fresh = generate_spec(&SpecParams { seed: seed ^ 0xE12, ..SpecParams::default() });
        engine
            .mutate(ppwf_repo::mutation::Mutation::InsertSpec {
                spec: fresh,
                policy: Policy::public(),
            })
            .unwrap();
        let repo_now = {
            let mut r = random_repo(seed, specs);
            let fresh = generate_spec(&SpecParams { seed: seed ^ 0xE12, ..SpecParams::default() });
            r.insert_spec(fresh, Policy::public()).unwrap();
            r
        };
        let index_now = KeywordIndex::build(&repo_now);
        let reg_now = registry(specs);
        for g in GROUPS {
            let eager = reg_now.access_map(&repo_now, g).unwrap();
            for q in QUERIES {
                let reference =
                    search_filtered(&repo_now, &index_now, &KeywordQuery::parse(q), &eager);
                let served = engine.search_as(g, q).unwrap();
                prop_assert!(
                    hits_identical(&reference, &served),
                    "stale lazy answer for {} {:?} after mutation", g, q
                );
            }
        }
        // Swap the registry: everyone becomes root-only; memoized fine
        // views must not survive.
        let mut coarse = PrincipalRegistry::new();
        for g in GROUPS {
            coarse.add_group(g, AccessLevel(0), ViewRule::RootOnly);
        }
        engine.set_registry(coarse.clone());
        for g in GROUPS {
            let eager = coarse.access_map(&repo_now, g).unwrap();
            for q in QUERIES {
                let reference =
                    search_filtered(&repo_now, &index_now, &KeywordQuery::parse(q), &eager);
                let served = engine.search_as(g, q).unwrap();
                prop_assert!(
                    hits_identical(&reference, &served),
                    "stale fine-grained answer for {} {:?} after registry swap", g, q
                );
            }
        }
    }
}
