//! Correctness of sharded serving: the cluster must be *invisible* in
//! answers.
//!
//! Property 1 (bit-identical answers): for random repositories, every
//! shard count, both placement strategies, every privilege group and every
//! query, [`EngineCluster`] returns exactly the single-engine answer —
//! same global specs, same prefixes, same matched modules, same flattened
//! view graphs — for keyword, private (both plans, including cost
//! counters), and ranked search (orders, bitwise scores, profiles).
//!
//! Property 2 (no cross-group or cross-shard leakage): interleaved
//! multi-group traffic through one cluster never changes any group's
//! answers relative to an isolated, cacheless single-engine evaluation —
//! so neither shard caches nor the gather stage can leak fine-grained
//! answers into coarse-grained sessions.
//!
//! Property 3 (mutation staleness): mutations routed through
//! [`EngineCluster::mutate`] — spec inserts, execution appends, policy
//! swaps — invalidate exactly as in a single engine: post-mutation answers
//! equal a fresh evaluation of the mutated corpus.

use ppwf_core::policy::{AccessLevel, Policy};
use ppwf_query::cluster::{EngineCluster, Mutation};
use ppwf_query::engine::{Plan, QueryEngine};
use ppwf_query::keyword::KeywordHit;
use ppwf_query::ranking::RankingMode;
use ppwf_query::route::ShardStrategy;
use ppwf_repo::pool::WorkerPool;
use ppwf_repo::principals::{PrincipalRegistry, ViewRule};
use ppwf_repo::repository::Repository;
use ppwf_workloads::genspec::{generate_spec, SpecParams};
use proptest::prelude::*;
use std::sync::Arc;

const QUERIES: [&str; 6] = ["kw0", "kw0, kw1", "kw2", "kw1, kw3", "kw5", "kw0, kw2"];
const GROUPS: [&str; 3] = ["public", "analysts", "researchers"];

fn registry() -> PrincipalRegistry {
    let mut registry = PrincipalRegistry::new();
    registry.add_group("public", AccessLevel(0), ViewRule::RootOnly);
    registry.add_group("analysts", AccessLevel(2), ViewRule::MaxDepth(1));
    registry.add_group("researchers", AccessLevel(4), ViewRule::Full);
    registry
}

fn random_repo(seed: u64, specs: usize) -> Repository {
    let mut repo = Repository::new();
    for i in 0..specs as u64 {
        let spec =
            generate_spec(&SpecParams { seed: seed.wrapping_add(i), ..SpecParams::default() });
        repo.insert_spec(spec, Policy::public()).unwrap();
    }
    repo
}

fn hits_identical(a: &[KeywordHit], b: &[KeywordHit]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.spec == y.spec
                && x.prefix == y.prefix
                && x.matched == y.matched
                && views_identical(&x.view, &y.view)
        })
}

fn views_identical(a: &ppwf_model::expand::SpecView, b: &ppwf_model::expand::SpecView) -> bool {
    let (ga, gb) = (a.graph(), b.graph());
    ga.node_count() == gb.node_count()
        && ga.edge_count() == gb.edge_count()
        && ga.nodes().zip(gb.nodes()).all(|((i, n), (j, m))| i == j && n == m)
        && ga.edges().zip(gb.edges()).all(|((i, e), (j, f))| {
            i == j && e.from == f.from && e.to == f.to && e.payload == f.payload
        })
}

fn strategy_of(pick: bool) -> ShardStrategy {
    if pick {
        ShardStrategy::Hash
    } else {
        ShardStrategy::RoundRobin
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Keyword answers are bit-identical to the single engine, cold and
    /// warm, for every group, shard count and placement strategy.
    #[test]
    fn keyword_answers_bit_identical(
        seed in any::<u64>(),
        specs in 2usize..7,
        shards in 1usize..5,
        hash in any::<bool>(),
    ) {
        let cluster = EngineCluster::with_config(
            random_repo(seed, specs),
            registry(),
            shards,
            strategy_of(hash),
            Arc::clone(WorkerPool::global()),
        );
        let single = QueryEngine::new(random_repo(seed, specs), registry());
        for group in GROUPS {
            for q in QUERIES {
                let reference = single.search_as(group, q).unwrap();
                let cold = cluster.search_as(group, q).unwrap();
                let warm = cluster.search_as(group, q).unwrap();
                prop_assert!(
                    hits_identical(&reference, &cold),
                    "cold cluster ≠ single for {} shards, group {}, query {:?}", shards, group, q
                );
                prop_assert!(
                    hits_identical(&reference, &warm),
                    "warm cluster ≠ single for {} shards, group {}, query {:?}", shards, group, q
                );
            }
        }
    }

    /// Private search agrees under both evaluation plans — answers *and*
    /// cost counters (views built, zoom steps, discards are per-spec work,
    /// so shard sums must reproduce the single-engine figures exactly).
    #[test]
    fn private_search_bit_identical(
        seed in any::<u64>(),
        specs in 2usize..6,
        shards in 1usize..5,
        hash in any::<bool>(),
    ) {
        let cluster = EngineCluster::with_config(
            random_repo(seed, specs),
            registry(),
            shards,
            strategy_of(hash),
            Arc::clone(WorkerPool::global()),
        );
        let single = QueryEngine::new(random_repo(seed, specs), registry());
        for group in GROUPS {
            for q in QUERIES {
                for plan in [Plan::FilterThenSearch, Plan::SearchThenZoomOut] {
                    let reference = single.private_search_as(group, q, plan).unwrap();
                    let clustered = cluster.private_search_as(group, q, plan).unwrap();
                    prop_assert!(
                        hits_identical(&reference.hits, &clustered.hits),
                        "{plan:?} hits diverged for group {}, query {:?}", group, q
                    );
                    prop_assert_eq!(reference.views_built, clustered.views_built);
                    prop_assert_eq!(reference.zoom_steps, clustered.zoom_steps);
                    prop_assert_eq!(reference.discarded, clustered.discarded);
                }
            }
        }
    }

    /// Ranked answers are bit-identical: hit lists, orders, f64 scores and
    /// TF profiles. This is the property that forces corpus-global IDF in
    /// the gather stage — shard-local statistics would fail it.
    #[test]
    fn ranked_answers_bit_identical(
        seed in any::<u64>(),
        specs in 2usize..6,
        shards in 2usize..5,
        hash in any::<bool>(),
    ) {
        let cluster = EngineCluster::with_config(
            random_repo(seed, specs),
            registry(),
            shards,
            strategy_of(hash),
            Arc::clone(WorkerPool::global()),
        );
        let single = QueryEngine::new(random_repo(seed, specs), registry());
        let modes = [
            RankingMode::ExactFull,
            RankingMode::VisibleOnly,
            RankingMode::BucketizedFull { base: 2.0 },
            RankingMode::NoisyFull { epsilon: 1.0, seed: 7 },
        ];
        for group in GROUPS {
            for q in QUERIES {
                for mode in modes {
                    let (rhits, rranked) = single.ranked_search_as(group, q, mode).unwrap();
                    let clustered = cluster.ranked_search_as(group, q, mode).unwrap();
                    prop_assert!(hits_identical(&rhits, &clustered.hits));
                    prop_assert_eq!(&rranked.order, &clustered.ranked.order,
                        "order diverged for group {}, query {:?}, mode {:?}", group, q, mode);
                    prop_assert_eq!(&rranked.scores, &clustered.ranked.scores,
                        "scores diverged (IDF not corpus-global?) for {:?}", mode);
                    for (a, b) in rranked.profiles.iter().zip(&clustered.ranked.profiles) {
                        prop_assert_eq!(&a.visible, &b.visible);
                        prop_assert_eq!(&a.hidden, &b.hidden);
                    }
                }
            }
        }
    }

    /// Interleaved multi-group traffic through one cluster leaks nothing:
    /// each group's answers equal an isolated cacheless evaluation.
    #[test]
    fn interleaving_leaks_nothing(
        seed in any::<u64>(),
        specs in 2usize..5,
        shards in 2usize..4,
    ) {
        use ppwf_query::keyword::{search_filtered, KeywordQuery};
        use ppwf_repo::keyword_index::KeywordIndex;
        let repo = random_repo(seed, specs);
        let reference_index = KeywordIndex::build(&repo);
        let reference_registry = registry();
        let cluster = EngineCluster::new(random_repo(seed, specs), registry(), shards);

        for (qi, q) in QUERIES.iter().enumerate() {
            for offset in 0..GROUPS.len() {
                let group = GROUPS[(qi + offset) % GROUPS.len()];
                let served = cluster.search_as(group, q).unwrap();
                let again = cluster.search_as(group, q).unwrap();
                let access = reference_registry.access_map(&repo, group).unwrap();
                let isolated =
                    search_filtered(&repo, &reference_index, &KeywordQuery::parse(q), &access);
                prop_assert!(
                    hits_identical(&isolated, &served),
                    "cluster answer diverged for group {} query {:?}", group, q
                );
                prop_assert!(
                    hits_identical(&isolated, &again),
                    "second (shard-cached) answer diverged for group {} query {:?}", group, q
                );
            }
        }
    }

    /// Mutations routed through `EngineCluster::mutate` invalidate like a
    /// single engine: post-mutation answers equal a fresh evaluation of the
    /// mutated corpus, for inserts, execution appends and policy swaps.
    #[test]
    fn mutation_staleness_matches_single_engine(
        seed in any::<u64>(),
        shards in 2usize..5,
    ) {
        let specs = 3usize;
        let mut cluster = EngineCluster::new(random_repo(seed, specs), registry(), shards);
        let mut single = QueryEngine::new(random_repo(seed, specs), registry());
        for g in GROUPS {
            cluster.search_as(g, "kw0, kw1").unwrap();
            single.search_as(g, "kw0, kw1").unwrap();
        }

        // Insert.
        let fresh_spec = generate_spec(&SpecParams { seed: seed ^ 0xABCD, ..SpecParams::default() });
        let id = cluster
            .mutate(Mutation::InsertSpec { spec: fresh_spec.clone(), policy: Policy::public() })
            .unwrap()
            .inserted_id()
            .expect("insert returns id");
        prop_assert_eq!(id.index(), specs, "global ids stay dense");
        single
            .mutate(Mutation::InsertSpec { spec: fresh_spec, policy: Policy::public() })
            .unwrap();

        // Append an execution to an existing spec.
        let exec = {
            let entry = cluster.entry(ppwf_repo::repository::SpecId(1)).unwrap();
            ppwf_model::exec::Executor::new(&entry.spec)
                .run(&mut ppwf_model::exec::HashOracle)
                .unwrap()
        };
        cluster
            .mutate(Mutation::AddExecution {
                spec: ppwf_repo::repository::SpecId(1),
                exec: exec.clone(),
            })
            .unwrap();
        single
            .mutate(Mutation::AddExecution { spec: ppwf_repo::repository::SpecId(1), exec })
            .unwrap();

        // Swap a policy.
        cluster
            .mutate(Mutation::SetPolicy {
                spec: ppwf_repo::repository::SpecId(0),
                policy: Policy::public(),
            })
            .unwrap();
        single
            .mutate(Mutation::SetPolicy {
                spec: ppwf_repo::repository::SpecId(0),
                policy: Policy::public(),
            })
            .unwrap();

        for g in GROUPS {
            for q in QUERIES {
                let served = cluster.search_as(g, q).unwrap();
                let reference = single.search_as(g, q).unwrap();
                prop_assert!(
                    hits_identical(&reference, &served),
                    "stale answer served for group {} query {:?} after mutation", g, q
                );
            }
        }
    }
}
