//! Correctness of the incremental write pipeline: typed mutations must be
//! invisible in every read structure they maintain.
//!
//! Property 1 (index bit-equivalence): across randomized mutation
//! sequences — spec inserts, execution appends, policy swaps — a
//! [`KeywordIndex`] maintained by `refresh` is bit-identical to a fresh
//! full build of the final corpus: postings (specs, modules, workflows,
//! term frequencies, order), `doc_count`, and the df/idf memo's answers.
//! The build counters prove *how* it got there: execution appends and
//! policy swaps perform zero index work, inserts append exactly the new
//! specs' modules, and a full rebuild never fires.
//!
//! Property 2 (front-cache staleness): a cluster serving through its
//! version-vectored front cache never serves a stale merged answer across
//! routed writes — after every mutation, cluster answers equal a fresh
//! cacheless evaluation of the mutated corpus — while execution appends
//! demonstrably keep the front cache warm (same `Arc`, no new scatter).
//!
//! Property 3 (no over-invalidation): a policy swap re-resolves at most
//! the touched spec's access rule per group; every other memoized prefix
//! keeps serving, pinned by the resolver touch counters.

use ppwf_core::policy::{AccessLevel, Policy};
use ppwf_model::exec::{Executor, HashOracle};
use ppwf_query::cluster::{EngineCluster, Mutation, MutationEffect};
use ppwf_query::engine::QueryEngine;
use ppwf_query::keyword::{search_filtered, KeywordHit, KeywordQuery};
use ppwf_repo::keyword_index::KeywordIndex;
use ppwf_repo::mutation::{ModuleTextEdit, SpecText};
use ppwf_repo::principals::{PrincipalRegistry, ViewRule};
use ppwf_repo::repository::{Repository, SpecId};
use ppwf_workloads::genspec::{generate_spec, SpecParams};
use proptest::prelude::*;

const QUERIES: [&str; 6] = ["kw0", "kw0, kw1", "kw2", "kw1, kw3", "kw5", "kw0, kw2"];
const GROUPS: [&str; 3] = ["public", "analysts", "researchers"];

fn registry() -> PrincipalRegistry {
    let mut registry = PrincipalRegistry::new();
    registry.add_group("public", AccessLevel(0), ViewRule::RootOnly);
    registry.add_group("analysts", AccessLevel(2), ViewRule::MaxDepth(1));
    registry.add_group("researchers", AccessLevel(4), ViewRule::Full);
    registry
}

fn random_repo(seed: u64, specs: usize) -> Repository {
    let mut repo = Repository::new();
    for i in 0..specs as u64 {
        let spec =
            generate_spec(&SpecParams { seed: seed.wrapping_add(i), ..SpecParams::default() });
        repo.insert_spec(spec, Policy::public()).unwrap();
    }
    repo
}

/// Materialize the `i`-th random mutation against the current repository
/// state: 0 → insert, 1 → execution append, 2 → policy swap, 3 → spec
/// delete, 4 → spec text edit. Targets are drawn from the *live* slots
/// (destructive histories leave tombstones); with no live spec left, or
/// no editable module on the chosen spec, the write degenerates to an
/// insert so every stream element stays applicable.
fn mutation_of(kind: u8, seed: u64, repo: &Repository) -> Mutation {
    let insert = || Mutation::InsertSpec {
        spec: generate_spec(&SpecParams { seed: seed ^ 0xFACE, ..SpecParams::default() }),
        policy: Policy::public(),
    };
    let live: Vec<SpecId> =
        repo.slots().filter_map(|(id, entry)| entry.is_some().then_some(id)).collect();
    if live.is_empty() {
        return insert();
    }
    let target = live[(seed % live.len() as u64) as usize];
    match kind % 5 {
        0 => insert(),
        1 => {
            let exec = Executor::new(&repo.entry(target).unwrap().spec)
                .run(&mut HashOracle)
                .expect("stored specs execute");
            Mutation::AddExecution { spec: target, exec }
        }
        2 => Mutation::SetPolicy { spec: target, policy: Policy::public() },
        3 => Mutation::DeleteSpec { spec: target },
        _ => {
            let spec = &repo.entry(target).unwrap().spec;
            let editable: Vec<_> = spec.modules().filter(|m| !m.kind.is_distinguished()).collect();
            if editable.is_empty() {
                return insert();
            }
            let module = editable[(seed % editable.len() as u64) as usize];
            Mutation::EditSpec {
                spec: target,
                text: SpecText {
                    edits: vec![ModuleTextEdit {
                        module: module.id,
                        name: format!("edited step {seed}"),
                        keywords: vec![format!("kw{}", seed % 8), "edited".to_string()],
                    }],
                },
            }
        }
    }
}

fn hits_identical(a: &[KeywordHit], b: &[KeywordHit]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.spec == y.spec && x.prefix == y.prefix && x.matched == y.matched)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A refreshed index is bit-identical to a full rebuild of the final
    /// corpus — postings, doc_count, df/idf — and the counters prove the
    /// work was incremental: zero for execution appends and policy swaps,
    /// per-spec for inserts, no full rebuild ever.
    #[test]
    fn incremental_index_equals_full_rebuild(
        seed in any::<u64>(),
        specs in 2usize..5,
        writes in proptest::collection::vec((0u8..5, any::<u64>()), 1..10),
    ) {
        let mut repo = random_repo(seed, specs);
        let mut idx = KeywordIndex::build(&repo);
        prop_assert_eq!(idx.full_builds(), 1);

        for &(kind, wseed) in &writes {
            let mutation = mutation_of(kind, wseed, &repo);
            let (full_builds, docs_indexed, docs_retracted) =
                (idx.full_builds(), idx.docs_indexed(), idx.docs_retracted());
            let effect = repo.apply(mutation).unwrap();
            // The engine's typed dispatch: destructive effects take the
            // targeted maintenance path, everything else refreshes.
            match effect {
                MutationEffect::SpecDeleted { spec } => idx.delete_spec(&repo, spec),
                MutationEffect::SpecEdited { spec } => idx.edit_spec(&repo, spec),
                _ => idx.refresh(&repo),
            }
            prop_assert_eq!(
                idx.full_builds(),
                full_builds,
                "typed maintenance must never fully rebuild"
            );
            match effect {
                MutationEffect::SpecInserted { spec } => {
                    let added = repo
                        .entry(spec)
                        .unwrap()
                        .spec
                        .modules()
                        .filter(|m| !m.kind.is_distinguished())
                        .count();
                    prop_assert_eq!(
                        idx.docs_indexed(),
                        docs_indexed + added,
                        "insert must index exactly the new spec's modules"
                    );
                }
                MutationEffect::ExecutionAppended { .. }
                | MutationEffect::PolicyChanged { .. } => {
                    prop_assert_eq!(
                        idx.docs_indexed(),
                        docs_indexed,
                        "structure-free writes must perform zero index work"
                    );
                }
                MutationEffect::SpecDeleted { spec } => {
                    prop_assert!(repo.entry(spec).is_none(), "delete leaves a tombstone");
                    prop_assert_eq!(
                        idx.docs_indexed(),
                        docs_indexed,
                        "delete must index nothing new"
                    );
                    prop_assert!(
                        idx.docs_retracted() > docs_retracted,
                        "delete must retract the spec's postings"
                    );
                }
                MutationEffect::SpecEdited { spec } => {
                    let docs = repo
                        .entry(spec)
                        .unwrap()
                        .spec
                        .modules()
                        .filter(|m| !m.kind.is_distinguished())
                        .count();
                    prop_assert_eq!(
                        idx.docs_indexed(),
                        docs_indexed + docs,
                        "edit must re-index exactly the edited spec"
                    );
                    prop_assert_eq!(
                        idx.docs_retracted(),
                        docs_retracted + docs,
                        "edit must retract exactly the edited spec's old postings"
                    );
                }
            }
            prop_assert!(!idx.is_stale(&repo));
        }

        // Bit-equivalence against a fresh build of the final corpus.
        let fresh = KeywordIndex::build(&repo);
        prop_assert_eq!(idx.doc_count(), fresh.doc_count());
        prop_assert_eq!(idx.term_count(), fresh.term_count());
        for q in QUERIES {
            for term in &KeywordQuery::parse(q).terms {
                prop_assert_eq!(
                    idx.lookup_query_term(term),
                    fresh.lookup_query_term(term),
                    "postings diverged on {:?}", term
                );
                prop_assert_eq!(idx.df(term), fresh.df(term));
                prop_assert_eq!(idx.df_cached(term), fresh.df_cached(term));
                prop_assert_eq!(idx.idf_cached(term).to_bits(), fresh.idf_cached(term).to_bits());
            }
        }
    }

    /// Routed writes never let the cluster front serve a stale merged
    /// answer: after every mutation, every group's answer equals a fresh
    /// cacheless evaluation of the mutated corpus.
    #[test]
    fn front_cache_stays_fresh_under_routed_writes(
        seed in any::<u64>(),
        specs in 2usize..5,
        shards in 2usize..4,
        writes in proptest::collection::vec((0u8..5, any::<u64>()), 1..6),
    ) {
        let mut cluster = EngineCluster::new(random_repo(seed, specs), registry(), shards);
        let mut mirror = random_repo(seed, specs);
        // Warm every front entry so staleness would be observable.
        for g in GROUPS {
            for q in QUERIES {
                cluster.search_as(g, q).unwrap();
            }
        }
        for &(kind, wseed) in &writes {
            let mutation = mutation_of(kind, wseed, &mirror);
            cluster.mutate(mutation.clone()).unwrap();
            mirror.apply(mutation).unwrap();
            let reference_index = KeywordIndex::build(&mirror);
            let reference_registry = registry();
            for g in GROUPS {
                let access = reference_registry.access_map(&mirror, g).unwrap();
                for q in QUERIES {
                    let served = cluster.search_as(g, q).unwrap();
                    let fresh = search_filtered(
                        &mirror,
                        &reference_index,
                        &KeywordQuery::parse(q),
                        &access,
                    );
                    prop_assert!(
                        hits_identical(&fresh, &served),
                        "stale front answer for group {} query {:?} after {:?} write",
                        g, q, kind % 5
                    );
                }
            }
        }
    }

    /// Execution appends keep the whole warm path warm: the front cache
    /// serves the identical `Arc`, no shard sees a new lookup, and no
    /// registry view rebuilds.
    #[test]
    fn execution_appends_keep_every_cache_warm(
        seed in any::<u64>(),
        specs in 2usize..5,
        shards in 2usize..4,
    ) {
        let mut cluster = EngineCluster::new(random_repo(seed, specs), registry(), shards);
        let warmed: Vec<_> =
            GROUPS.iter().map(|g| cluster.search_as(g, "kw0, kw1").unwrap()).collect();
        let before = cluster.stats();
        let vector = cluster.version_vector();

        let exec = Executor::new(&cluster.entry(SpecId(0)).unwrap().spec)
            .run(&mut HashOracle)
            .unwrap();
        let effect = cluster.mutate(Mutation::AddExecution { spec: SpecId(0), exec }).unwrap();
        prop_assert!(!effect.changes_visible_state());
        prop_assert_eq!(cluster.version_vector(), vector);
        prop_assert_eq!(cluster.registry_view_rebuilds(), 0);

        for (g, old) in GROUPS.iter().zip(&warmed) {
            let again = cluster.search_as(g, "kw0, kw1").unwrap();
            prop_assert!(
                std::sync::Arc::ptr_eq(old, &again),
                "group {} lost its warm merged answer to a provenance append", g
            );
        }
        let after = cluster.stats();
        prop_assert_eq!(after.front.hits, before.front.hits + GROUPS.len() as u64);
        prop_assert_eq!(
            after.aggregate.keyword.hits + after.aggregate.keyword.misses,
            before.aggregate.keyword.hits + before.aggregate.keyword.misses,
            "warm front hits must not reach any shard"
        );
    }

    /// Policy swaps re-resolve at most the touched spec per group — the
    /// resolver touch counters prove the access memo is invalidated
    /// per-spec, never wholesale.
    #[test]
    fn policy_swap_does_not_over_invalidate_access_memos(
        seed in any::<u64>(),
        specs in 2usize..6,
        target in any::<u64>(),
    ) {
        let mut engine = QueryEngine::new(random_repo(seed, specs), registry());
        // Warm the access memos across every group and query.
        for g in GROUPS {
            for q in QUERIES {
                engine.search_as(g, q).unwrap();
            }
        }
        let warm_misses = engine.stats().access.misses;
        // Re-running the stream must resolve nothing new (memo complete).
        for g in GROUPS {
            for q in QUERIES {
                engine.search_as(g, q).unwrap();
            }
        }
        prop_assert_eq!(engine.stats().access.misses, warm_misses);

        let spec = SpecId((target % specs as u64) as u32);
        engine.mutate(Mutation::SetPolicy { spec, policy: Policy::public() }).unwrap();
        for g in GROUPS {
            for q in QUERIES {
                engine.search_as(g, q).unwrap();
            }
        }
        let after = engine.stats().access.misses;
        prop_assert!(
            after <= warm_misses + GROUPS.len() as u64,
            "policy swap on one spec re-resolved {} rules across {} groups — over-invalidation",
            after - warm_misses, GROUPS.len()
        );
    }
}
