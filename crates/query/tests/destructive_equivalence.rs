//! End-to-end equivalence for the **destructive** mutation vocabulary:
//! randomized streams mixing `InsertSpec` / `AddExecution` / `SetPolicy`
//! / `DeleteSpec` / `EditSpec` must be *invisible* in answers no matter
//! which serving stack applies them.
//!
//! One property, four stacks, one reference. The sequential single-engine
//! replay defines ground truth; the same stream then runs through
//!
//! 1. an in-memory [`EngineCluster`] (routed applies, router retirement,
//!    per-shard index maintenance),
//! 2. a fenced [`ServeFront`] over a *durable* cluster with group-commit
//!    batching (so `DeleteSpec` / `EditSpec` records land inside WAL
//!    batch frames and the destructive-overlay flush logic is on the hot
//!    path), and
//! 3. a cluster **recovered** from that front's storage (snapshot + WAL
//!    suffix replay over a corpus with tombstones).
//!
//! Every stack must reproduce the reference bit-identically: keyword
//! hits, private-search answers *and* cost counters (`views_built`,
//! `zoom_steps`, `discarded`), ranked orders and f64 score bits, and the
//! df/idf statistics of a fresh index over the recovered corpus. Mutation
//! effects (with global ids) must agree everywhere too.

use ppwf_core::policy::AccessLevel;
use ppwf_query::cluster::{EngineCluster, MutationEffect};
use ppwf_query::engine::{Plan, QueryEngine};
use ppwf_query::keyword::KeywordHit;
use ppwf_query::ranking::RankingMode;
use ppwf_query::route::ShardStrategy;
use ppwf_query::serve::{QueryAnswer, ServeFront, ServeRequest};
use ppwf_repo::keyword_index::KeywordIndex;
use ppwf_repo::pool::WorkerPool;
use ppwf_repo::principals::{PrincipalRegistry, ViewRule};
use ppwf_repo::repository::Repository;
use ppwf_repo::storage::{MemStorage, StorageBackend};
use ppwf_repo::wal::{DurabilityPolicy, GroupCommit};
use ppwf_workloads::genmutation::mutation_stream;
use proptest::prelude::*;
use std::sync::Arc;

/// Queries over the generator vocabulary: `genspec` keywords plus the
/// terms `EditSpec` splices in, so edits and deletes move these answers.
const QUERIES: [&str; 6] = ["kw0", "kw1, kw2", "kw3", "edited", "kw0, edited", "kw5"];
const GROUPS: [&str; 3] = ["public", "analysts", "researchers"];
const SHARDS: usize = 3;

fn registry() -> PrincipalRegistry {
    let mut registry = PrincipalRegistry::new();
    registry.add_group("public", AccessLevel(0), ViewRule::RootOnly);
    registry.add_group("analysts", AccessLevel(2), ViewRule::MaxDepth(1));
    registry.add_group("researchers", AccessLevel(4), ViewRule::Full);
    registry
}

/// Tight cadences: group-commit batches carry the destructive records and
/// snapshots fire mid-stream, so recovery replays a COW image that
/// already holds tombstones plus a WAL suffix that adds more.
fn durability_policy() -> DurabilityPolicy {
    DurabilityPolicy {
        fsync_each: true,
        snapshot_every: 4,
        segment_bytes: 4096,
        group_commit: Some(GroupCommit { max_batch: 4, max_delay_us: 0 }),
        ..DurabilityPolicy::default()
    }
}

fn hits_identical(a: &[KeywordHit], b: &[KeywordHit]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.spec == y.spec && x.prefix == y.prefix && x.matched == y.matched)
}

/// Every read surface of `probe`, compared bit-identically against the
/// sequential single-engine `reference`.
fn assert_reads_match(
    reference: &QueryEngine,
    probe: &EngineCluster,
    stack: &str,
) -> std::result::Result<(), TestCaseError> {
    for group in GROUPS {
        for q in QUERIES {
            let want = reference.search_as(group, q).unwrap();
            let got = probe.search_as(group, q).unwrap();
            prop_assert!(hits_identical(&want, &got), "{stack}: keyword {group}/{q:?}");
            for plan in [Plan::FilterThenSearch, Plan::SearchThenZoomOut] {
                let want = reference.private_search_as(group, q, plan).unwrap();
                let got = probe.private_search_as(group, q, plan).unwrap();
                prop_assert!(
                    hits_identical(&want.hits, &got.hits),
                    "{stack}: private hits {group}/{q:?}/{plan:?}"
                );
                prop_assert_eq!(want.views_built, got.views_built, "{} views_built", stack);
                prop_assert_eq!(want.zoom_steps, got.zoom_steps, "{} zoom_steps", stack);
                prop_assert_eq!(want.discarded, got.discarded, "{} discarded", stack);
            }
            for mode in [RankingMode::ExactFull, RankingMode::NoisyFull { epsilon: 1.0, seed: 7 }] {
                let (want_hits, want_ranked) = reference.ranked_search_as(group, q, mode).unwrap();
                let got = probe.ranked_search_as(group, q, mode).unwrap();
                prop_assert!(
                    hits_identical(&want_hits, &got.hits),
                    "{stack}: ranked hits {group}/{q:?}/{mode:?}"
                );
                prop_assert_eq!(&want_ranked.order, &got.ranked.order, "{} order", stack);
                prop_assert_eq!(
                    &want_ranked.scores,
                    &got.ranked.scores,
                    "{} f64 score bits (IDF corpus-global over tombstones?)",
                    stack
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance property for destructive writes: one randomized
    /// stream, four stacks, bit-identical everything.
    #[test]
    fn destructive_streams_are_invisible_across_every_serving_stack(
        writes in proptest::collection::vec((0u8..5, any::<u64>()), 8..24),
        hash in any::<bool>(),
    ) {
        let stream = mutation_stream(&writes);
        let strategy = if hash { ShardStrategy::Hash } else { ShardStrategy::RoundRobin };

        // Ground truth: sequential single-engine replay.
        let mut single = QueryEngine::new(Repository::new(), registry());
        let reference_effects: Vec<MutationEffect> =
            stream.iter().map(|m| single.mutate(m.clone()).unwrap()).collect();

        // Stack 1: in-memory cluster, routed applies.
        let mut cluster = EngineCluster::with_config(
            Repository::new(),
            registry(),
            SHARDS,
            strategy,
            Arc::clone(WorkerPool::global()),
        );
        for (m, want) in stream.iter().zip(&reference_effects) {
            let got = cluster.mutate(m.clone()).unwrap();
            prop_assert_eq!(&got, want, "cluster effect must carry the global id");
        }
        assert_reads_match(&single, &cluster, "cluster")?;

        // Stack 2: fenced ServeFront over a durable, group-committed
        // cluster — destructive records ride WAL batch frames.
        let storage = Arc::new(MemStorage::new());
        let pool = Arc::new(WorkerPool::new(3));
        let (durable, _) = EngineCluster::open_durable(
            Arc::clone(&storage) as Arc<dyn StorageBackend>,
            durability_policy(),
            registry(),
            SHARDS,
            strategy,
            Arc::clone(&pool),
        )
        .expect("open durable cluster");
        let front = ServeFront::with_pool(durable, Arc::clone(&pool));
        let tickets: Vec<_> =
            stream.iter().map(|m| front.submit(ServeRequest::mutate(m.clone()))).collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let response = ticket.wait();
            let QueryAnswer::Mutated(result) = &response.answer else {
                panic!("mutation ticket resolved a non-mutation answer")
            };
            let effect = result.as_ref().expect("generated stream applies through the fence");
            prop_assert_eq!(effect, &reference_effects[i], "front effect diverged at {}", i);
        }
        // Fenced reads answer identically to the reference.
        for group in GROUPS {
            for q in QUERIES {
                let keyword = front.submit(ServeRequest::Keyword {
                    group: group.into(),
                    query: q.into(),
                });
                let private = front.submit(ServeRequest::Private {
                    group: group.into(),
                    query: q.into(),
                    plan: Plan::SearchThenZoomOut,
                });
                let QueryAnswer::Keyword(Some(hits)) = keyword.wait().answer else {
                    panic!("keyword request must answer for a known group")
                };
                prop_assert!(
                    hits_identical(&single.search_as(group, q).unwrap(), &hits),
                    "front keyword {group}/{q:?}"
                );
                let QueryAnswer::Private(Some(outcome)) = private.wait().answer else {
                    panic!("private request must answer for a known group")
                };
                let want = single.private_search_as(group, q, Plan::SearchThenZoomOut).unwrap();
                prop_assert!(hits_identical(&want.hits, &outcome.hits), "front private hits");
                prop_assert_eq!(
                    (want.views_built, want.zoom_steps, want.discarded),
                    (outcome.views_built, outcome.zoom_steps, outcome.discarded),
                    "front private cost counters"
                );
            }
        }
        front.quiesce();
        drop(front);

        // Stack 3: recover from the front's storage — snapshot with
        // tombstoned chunks plus a WAL suffix of destructive records.
        let (recovered, _) = EngineCluster::open_durable(
            Arc::clone(&storage) as Arc<dyn StorageBackend>,
            durability_policy(),
            registry(),
            SHARDS,
            strategy,
            Arc::clone(&pool),
        )
        .expect("recover durable cluster");
        assert_reads_match(&single, &recovered, "recovered")?;

        // The recovered corpus preserves the id space and its df/idf
        // statistics: a fresh index over the assembly answers the memo
        // bit-identically to the incrementally maintained reference.
        let assembled = recovered.assemble_repository().expect("consistent recovery");
        prop_assert_eq!(assembled.len(), single.repo().len(), "id space (tombstones included)");
        prop_assert_eq!(assembled.live_count(), single.repo().live_count());
        let fresh = KeywordIndex::build(&assembled);
        prop_assert_eq!(fresh.doc_count(), single.index().doc_count());
        for term in ["kw0", "kw1", "kw2", "kw3", "kw4", "kw5", "kw6", "kw7", "edited"] {
            prop_assert_eq!(fresh.df(term), single.index().df(term), "df({})", term);
            prop_assert_eq!(
                fresh.idf_cached(term).to_bits(),
                single.index().idf_cached(term).to_bits(),
                "idf bits ({})",
                term
            );
        }
    }
}
