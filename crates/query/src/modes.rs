//! A bounded map of per-[`RankingMode`] result caches, shared by the
//! single engine's ranked path and the cluster-front ranked cache.
//!
//! Ranked answers are cached per `(group, query)` like every other query
//! class, but the ranking *mode* is part of the answer's identity — and
//! modes carry `f64` parameters, so they key an outer map of caches
//! rather than a fixed array like `Plan`. The warm probe builds a stack
//! [`ModeKey`] and clones an `Arc`, allocating nothing. The map itself is
//! bounded at [`MAX_RANKED_MODES`]: workloads that mint unbounded distinct
//! modes (e.g. a fresh `NoisyFull` seed per request) evict the
//! least-recently-used mode's cache instead of growing forever, and
//! evicted caches fold their counters into a tombstone so statistics stay
//! monotone under mode churn.

use crate::engine::CacheSnapshot;
use crate::ranking::{ModeKey, RankingMode};
use parking_lot::RwLock;
use ppwf_repo::cache::GroupCache;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Most distinct [`RankingMode`]s cached simultaneously. Real deployments
/// use a handful; the bound only matters for mode-churning workloads.
pub(crate) const MAX_RANKED_MODES: usize = 16;

/// One mode's result cache plus an LRU stamp for mode eviction.
struct ModeSlot<V> {
    cache: Arc<GroupCache<V>>,
    last_used: AtomicU64,
}

/// The bounded per-mode cache map. `V` is whatever the owner caches per
/// `(group, query)` — the engine stores `RankedAnswer`s, the cluster front
/// stores fully merged hit lists with their ranking.
pub(crate) struct ModeCaches<V> {
    slots: RwLock<HashMap<ModeKey, ModeSlot<V>>>,
    tick: AtomicU64,
    /// Counters of evicted mode caches, folded in so [`Self::snapshot`]
    /// stays monotonic under mode churn — history must not vanish with
    /// the victim.
    evicted: RwLock<CacheSnapshot>,
    /// Capacity of each per-mode [`GroupCache`].
    per_mode_capacity: usize,
}

impl<V> ModeCaches<V> {
    pub(crate) fn new(per_mode_capacity: usize) -> Self {
        ModeCaches {
            slots: RwLock::new(HashMap::new()),
            tick: AtomicU64::new(0),
            evicted: RwLock::new(CacheSnapshot::default()),
            per_mode_capacity,
        }
    }

    /// The `(group, query)` cache serving `mode`, created on first use.
    /// The warm path is a read-locked map probe plus an `Arc` clone. A new
    /// mode beyond [`MAX_RANKED_MODES`] evicts the least-recently-used
    /// mode's cache.
    pub(crate) fn cache(&self, mode: RankingMode) -> Arc<GroupCache<V>> {
        let key = mode.cache_key();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(slot) = self.slots.read().get(&key) {
            slot.last_used.store(tick, Ordering::Relaxed);
            return Arc::clone(&slot.cache);
        }
        let mut guard = self.slots.write();
        if let Some(slot) = guard.get(&key) {
            // A racing request created the slot between our locks.
            slot.last_used.store(tick, Ordering::Relaxed);
            return Arc::clone(&slot.cache);
        }
        if guard.len() >= MAX_RANKED_MODES {
            let victim = guard
                .iter()
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k)
                .expect("nonempty at capacity");
            if let Some(slot) = guard.remove(&victim) {
                // Fold the victim's counters so stats never go backwards.
                let mut evicted = self.evicted.write();
                *evicted = evicted.merge(CacheSnapshot::of(slot.cache.stats()));
            }
        }
        let cache = Arc::new(GroupCache::new(self.per_mode_capacity));
        guard.insert(key, ModeSlot { cache: Arc::clone(&cache), last_used: AtomicU64::new(tick) });
        cache
    }

    /// Summed counters across every live mode cache plus evicted history.
    pub(crate) fn snapshot(&self) -> CacheSnapshot {
        let guard = self.slots.read();
        self.evicted.read().merge(CacheSnapshot::sum(guard.values().map(|slot| slot.cache.stats())))
    }

    /// Clear every mode's cache (e.g. after a registry swap), keeping the
    /// mode slots themselves.
    pub(crate) fn clear(&self) {
        for slot in self.slots.read().values() {
            slot.cache.clear();
        }
    }

    /// Number of live mode slots (test instrument for the churn bound).
    #[cfg(test)]
    pub(crate) fn mode_count(&self) -> usize {
        self.slots.read().len()
    }

    /// Whether `key`'s cache is currently live (test instrument).
    #[cfg(test)]
    pub(crate) fn has_mode(&self, key: &ModeKey) -> bool {
        self.slots.read().contains_key(key)
    }
}
