//! The two privacy-preserving evaluation strategies of Sec. 4.
//!
//! *"One approach would be to first construct a full answer, oblivious to
//! the privacy requirement. If the result reveals sensitive information, we
//! may gradually 'zoom-out' the view ... until privacy is achieved.
//! However, this can be expensive as each zoom-out may involve a disk
//! access. Techniques must be developed to efficiently construct
//! user-specific answers."*
//!
//! * [`filter_then_search`] — privacy pushed into the index: postings are
//!   filtered by the principal's access view before any view is built, so
//!   the answer is user-specific from the start.
//! * [`search_then_zoom_out`] — the oblivious plan: full-privilege search,
//!   then per-hit coarsening until the answer fits the access view and
//!   reveals no active hide-pair. Every coarsening step is counted as a
//!   unit of wasted work (the paper's "disk access" proxy), which is what
//!   experiment E6 charts.
//!
//! Both strategies return the same answers (verified by tests and by the
//! E6 harness); only their cost differs.

use crate::keyword::{
    build_view, search, search_filtered, search_filtered_with_cache, search_with_cache, KeywordHit,
    KeywordQuery,
};
use ppwf_core::policy::Principal;
use ppwf_model::hierarchy::Prefix;
use ppwf_repo::keyword_index::KeywordIndex;
use ppwf_repo::principals::SpecAccess;
use ppwf_repo::repository::{Repository, SpecId};
use ppwf_repo::view_cache::ViewCache;
use std::collections::HashMap;

/// A principal's per-spec access views (a repository may hold many
/// specifications, each with its own hierarchy). This is the **eager**
/// shape; every plan below is generic over [`SpecAccess`], so a lazy
/// [`AccessResolver`](ppwf_repo::principals::AccessResolver) threads
/// through the same entry points and resolves only the specs a query
/// actually touches.
pub type AccessMap = HashMap<SpecId, Prefix>;

/// Build the access map giving `principal`'s level-implied views: full
/// prefixes where the policy has no hide-pairs above their level, and the
/// supplied per-spec views otherwise. Convenience for tests/benches where
/// one principal spans all specs at uniform privilege.
pub fn uniform_access(repo: &Repository, principal: &Principal) -> AccessMap {
    repo.entries()
        .map(|(sid, entry)| {
            let full = Prefix::full(&entry.hierarchy);
            let capped = if principal.access_view.len() <= full.len()
                && principal_access_applies(&principal.access_view, &full)
            {
                principal.access_view.clone()
            } else {
                full
            };
            (sid, capped)
        })
        .collect()
}

fn principal_access_applies(view: &Prefix, full: &Prefix) -> bool {
    // Prefixes are only compatible across specs of identical hierarchy
    // size; otherwise fall back to full (the caller supplies real maps in
    // production use).
    view.coarser_or_equal(full)
}

/// Cost-annotated result of a privacy-preserving search.
#[derive(Debug)]
pub struct PrivateSearchOutcome {
    /// The released hits.
    pub hits: Vec<KeywordHit>,
    /// Views constructed during evaluation (materialization cost proxy).
    pub views_built: usize,
    /// Zoom-out steps performed (wasted-work proxy; 0 for the filter plan).
    pub zoom_steps: usize,
    /// Candidate hits discarded because no admissible form existed.
    pub discarded: usize,
}

/// Plan 1: filter-then-search. Index postings are pre-filtered by the
/// access view; the minimal cover is computed over admissible matches
/// only, so every constructed view is already releasable. With a lazy
/// resolver as `access`, only specs inside the candidate postings union
/// are ever resolved — the resolver's touch counters prove it, and the
/// privacy property (no inadmissible candidate in timing-observable work)
/// is preserved because filtering still precedes all search work.
pub fn filter_then_search(
    repo: &Repository,
    index: &KeywordIndex,
    query: &KeywordQuery,
    access: &impl SpecAccess,
) -> PrivateSearchOutcome {
    let hits = search_filtered(repo, index, query, access);
    let views_built = hits.len();
    PrivateSearchOutcome { hits, views_built, zoom_steps: 0, discarded: 0 }
}

/// [`filter_then_search`] with answer views fetched through `views`.
/// `views_built` still counts logical materializations (the plan's cost
/// model); the cache turns repeats of them into pointer copies.
pub fn filter_then_search_cached(
    repo: &Repository,
    index: &KeywordIndex,
    query: &KeywordQuery,
    access: &impl SpecAccess,
    views: &ViewCache,
) -> PrivateSearchOutcome {
    let hits = search_filtered_with_cache(repo, index, query, access, views);
    let views_built = hits.len();
    PrivateSearchOutcome { hits, views_built, zoom_steps: 0, discarded: 0 }
}

/// Plan 2: search-then-zoom-out. Runs the oblivious full-privilege search,
/// then repairs each hit: while the hit's prefix exceeds the principal's
/// access view, zoom out (rebuilding the view each step — the expensive
/// part); drop the hit if coarsening erases some term's match.
pub fn search_then_zoom_out(
    repo: &Repository,
    index: &KeywordIndex,
    query: &KeywordQuery,
    access: &impl SpecAccess,
) -> PrivateSearchOutcome {
    search_then_zoom_out_inner(repo, index, query, access, None)
}

/// [`search_then_zoom_out`] with views fetched through `views`: both the
/// oblivious full-privilege pass and the post-coarsening rebuild hit the
/// cache, which is what makes even the wasteful plan benchmarkable at
/// repository scale in E10.
pub fn search_then_zoom_out_cached(
    repo: &Repository,
    index: &KeywordIndex,
    query: &KeywordQuery,
    access: &impl SpecAccess,
    views: &ViewCache,
) -> PrivateSearchOutcome {
    search_then_zoom_out_inner(repo, index, query, access, Some(views))
}

fn search_then_zoom_out_inner(
    repo: &Repository,
    index: &KeywordIndex,
    query: &KeywordQuery,
    access: &impl SpecAccess,
    views: Option<&ViewCache>,
) -> PrivateSearchOutcome {
    let full_hits = match views {
        Some(cache) => search_with_cache(repo, index, query, cache),
        None => search(repo, index, query),
    };
    let mut hits = Vec::new();
    let mut views_built = full_hits.len(); // the oblivious pass built these
    let mut zoom_steps = 0usize;
    let mut discarded = 0usize;

    'hits: for hit in full_hits {
        // Lazy access: only *hit* specs resolve — this plan already did
        // oblivious full-corpus search, so laziness here is pure saving.
        let Some(allowed) = access.prefix_of(hit.spec) else {
            discarded += 1;
            continue;
        };
        let entry = repo.entry(hit.spec).expect("hit references live spec");
        // Coarsen to the lattice meet of the answer and the access view.
        let mut prefix = hit.prefix.clone();
        while !prefix.coarser_or_equal(&allowed) {
            // Remove the deepest prefix member not allowed.
            let victim = prefix
                .workflows()
                .filter(|&w| !allowed.contains(w))
                .max_by_key(|&w| (entry.hierarchy.depth(w), w))
                .expect("non-coarser prefix has a disallowed member");
            prefix.remove_subtree(&entry.hierarchy, victim).expect("victim is not the root");
            zoom_steps += 1;
            views_built += 1; // each step re-materializes the answer view
        }
        // Re-check: does the coarsened view still expose a match for every
        // term? A match module is exposed iff its workflow stays in the
        // prefix.
        for (_, m) in &hit.matched {
            if !prefix.contains(entry.spec.module(*m).workflow) {
                discarded += 1;
                continue 'hits;
            }
        }
        let view = build_view(repo, views, hit.spec, &prefix).expect("coarsened prefix is valid");
        hits.push(KeywordHit { spec: hit.spec, prefix, view, matched: hit.matched });
    }
    PrivateSearchOutcome { hits, views_built, zoom_steps, discarded }
}

/// Check that two outcomes release the same answers (spec, prefix, match
/// set) — the equivalence experiment E6 asserts before comparing cost.
pub fn same_answers(a: &PrivateSearchOutcome, b: &PrivateSearchOutcome) -> bool {
    if a.hits.len() != b.hits.len() {
        return false;
    }
    a.hits
        .iter()
        .zip(&b.hits)
        .all(|(x, y)| x.spec == y.spec && x.prefix == y.prefix && x.matched == y.matched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppwf_core::policy::Policy;
    use ppwf_model::fixtures;
    use ppwf_model::ids::WorkflowId;

    fn setup() -> (Repository, KeywordIndex) {
        let mut repo = Repository::new();
        let (spec, _) = fixtures::disease_susceptibility();
        repo.insert_spec(spec, Policy::public()).unwrap();
        let index = KeywordIndex::build(&repo);
        (repo, index)
    }

    fn access(repo: &Repository, ws: &[usize]) -> AccessMap {
        let entry = repo.entry(SpecId(0)).unwrap();
        let prefix =
            Prefix::from_workflows(&entry.hierarchy, ws.iter().map(|&i| WorkflowId::new(i)))
                .unwrap();
        let mut m = HashMap::new();
        m.insert(SpecId(0), prefix);
        m
    }

    #[test]
    fn plans_agree_when_access_allows_everything() {
        let (repo, index) = setup();
        let acc = access(&repo, &[0, 1, 2, 3]);
        let q = KeywordQuery::parse("Database, Disorder Risks");
        let a = filter_then_search(&repo, &index, &q, &acc);
        let b = search_then_zoom_out(&repo, &index, &q, &acc);
        assert!(same_answers(&a, &b));
        assert_eq!(a.zoom_steps, 0);
        assert_eq!(b.zoom_steps, 0);
        assert_eq!(a.hits.len(), 1);
    }

    #[test]
    fn zoom_plan_pays_for_deep_matches() {
        // Access limited to {W1}: the "database" match (M5 in W4) is
        // inadmissible. Filter plan: no candidate, done. Zoom plan: builds
        // the full Fig. 5 answer, then coarsens (2 steps: drop W4 subtree
        // via W2... the disallowed members are W2 and W4 — W4 deepest
        // first, then W2), then discards the hit when the match vanishes.
        let (repo, index) = setup();
        let acc = access(&repo, &[0]);
        let q = KeywordQuery::parse("Database, Disorder Risks");
        let a = filter_then_search(&repo, &index, &q, &acc);
        let b = search_then_zoom_out(&repo, &index, &q, &acc);
        assert!(a.hits.is_empty());
        assert!(b.hits.is_empty());
        assert!(same_answers(&a, &b));
        assert_eq!(a.zoom_steps, 0);
        assert_eq!(b.zoom_steps, 2);
        assert_eq!(b.discarded, 1);
        assert!(b.views_built > a.views_built);
    }

    #[test]
    fn zoom_plan_coarsens_but_keeps_shallow_matches() {
        // Query "risk" matches M2 at top level; access {W1} keeps it.
        // With full search the minimal view is already {W1}: no zooming.
        let (repo, index) = setup();
        let acc = access(&repo, &[0]);
        let q = KeywordQuery::parse("risk");
        let a = filter_then_search(&repo, &index, &q, &acc);
        let b = search_then_zoom_out(&repo, &index, &q, &acc);
        assert_eq!(a.hits.len(), 1);
        assert!(same_answers(&a, &b));
    }

    #[test]
    fn zoom_plan_coarsens_alternative_matches() {
        // "pubmed" matches M12 (W3) and M7 (W4). Full search picks M12
        // (fewest added workflows). Access {W1, W2, W4}: W3 is
        // inadmissible; the zoom plan coarsens and discards, while the
        // filter plan finds the admissible alternative M7 directly —
        // the oblivious plan can lose answers the filtered plan keeps,
        // which is exactly why Sec. 4 calls for user-specific evaluation.
        let (repo, index) = setup();
        let acc = access(&repo, &[0, 1, 3]);
        let q = KeywordQuery::parse("pubmed");
        let a = filter_then_search(&repo, &index, &q, &acc);
        let b = search_then_zoom_out(&repo, &index, &q, &acc);
        assert_eq!(a.hits.len(), 1, "filter plan finds M7 in W4");
        let entry = repo.entry(SpecId(0)).unwrap();
        let m = fixtures::handles(&entry.spec);
        assert_eq!(a.hits[0].matched[0].1, m.m7);
        assert_eq!(b.hits.len(), 0, "zoom plan coarsened its M12 answer away");
        assert!(b.zoom_steps > 0);
    }

    #[test]
    fn uniform_access_caps_by_principal_view() {
        let (repo, _) = setup();
        let entry = repo.entry(SpecId(0)).unwrap();
        let admin = Principal::admin(&entry.hierarchy);
        let acc = uniform_access(&repo, &admin);
        assert_eq!(acc[&SpecId(0)].len(), 4);
        let public = Principal::public(&entry.hierarchy);
        let acc = uniform_access(&repo, &public);
        assert_eq!(acc[&SpecId(0)].len(), 1);
    }
}
