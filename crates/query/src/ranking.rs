//! Ranking, and its impact on privacy preservation (Sec. 4).
//!
//! *"A highly ranked result is likely to have more occurrences of an input
//! keyword than a lowly ranked result. Thus, a user might be able to infer
//! the range of value occurrences in a result even though s/he is unable to
//! see the values ... Such inference may cause information leakage."*
//!
//! We model this precisely. Each result (a workflow specification) has a
//! *true* term-frequency profile over the query terms — including
//! occurrences inside modules the principal cannot see. Rankers:
//!
//! * [`RankingMode::ExactFull`] — classic TF-IDF over the full (hidden +
//!   visible) text: best utility, maximal leakage;
//! * [`RankingMode::VisibleOnly`] — scores computed over visible modules
//!   only: zero leakage by construction, degraded utility;
//! * [`RankingMode::BucketizedFull`] — full TF coarsened into logarithmic
//!   buckets: the paper's "sophisticated ranking schemes" direction;
//! * [`RankingMode::NoisyFull`] — Laplace-perturbed TF (ε-style knob).
//!
//! **Leakage** is measured as the Kendall-τ rank correlation between the
//! produced ranking and the ranking by *hidden* term mass — the adversary's
//! best inference about what they cannot see. **Utility** is the Kendall-τ
//! against the true full-information ranking. Experiment E7 charts the
//! trade-off.

use ppwf_core::dp::LaplaceMechanism;
use ppwf_model::hierarchy::Prefix;
use ppwf_repo::keyword_index::{tokenize, KeywordIndex};
use ppwf_repo::postings::with_scratch;
use ppwf_repo::repository::{Repository, SpecId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How scores are computed from term frequencies.
#[derive(Clone, Copy, Debug)]
pub enum RankingMode {
    /// Exact TF-IDF over all modules (hidden included).
    ExactFull,
    /// TF-IDF over modules visible under the principal's prefix.
    VisibleOnly,
    /// Full TF coarsened to `floor(log_base(1 + tf))` buckets.
    BucketizedFull {
        /// Bucket base (> 1); larger = coarser = less leakage.
        base: f64,
    },
    /// Full TF with Laplace noise of privacy budget ε.
    NoisyFull {
        /// Privacy budget.
        epsilon: f64,
        /// RNG seed (determinism for experiments).
        seed: u64,
    },
}

/// A compact, fixed-width, hashable identity for a [`RankingMode`]: one
/// discriminant byte, the mode's `f64` parameter bits, and the RNG seed.
/// Two modes map to the same key iff they rank identically, so the engine
/// can key its ranked-answer cache by `ModeKey` — a stack value built
/// without formatting — instead of a `format!("{mode:?}…")` string per
/// warm probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ModeKey([u8; 17]);

impl RankingMode {
    /// This mode's [`ModeKey`].
    pub fn cache_key(self) -> ModeKey {
        let mut buf = [0u8; 17];
        match self {
            RankingMode::ExactFull => buf[0] = 0,
            RankingMode::VisibleOnly => buf[0] = 1,
            RankingMode::BucketizedFull { base } => {
                buf[0] = 2;
                buf[1..9].copy_from_slice(&base.to_bits().to_le_bytes());
            }
            RankingMode::NoisyFull { epsilon, seed } => {
                buf[0] = 3;
                buf[1..9].copy_from_slice(&epsilon.to_bits().to_le_bytes());
                buf[9..17].copy_from_slice(&seed.to_le_bytes());
            }
        }
        ModeKey(buf)
    }
}

/// Term-frequency profile of one result for one query.
#[derive(Clone, Debug, Default)]
pub struct TfProfile {
    /// Per-term visible frequency.
    pub visible: Vec<u64>,
    /// Per-term hidden frequency (inside modules outside the prefix).
    pub hidden: Vec<u64>,
}

impl TfProfile {
    /// Total (visible + hidden) per-term frequency.
    pub fn total(&self, t: usize) -> u64 {
        self.visible[t] + self.hidden[t]
    }

    /// Total hidden mass across terms.
    pub fn hidden_mass(&self) -> u64 {
        self.hidden.iter().sum()
    }
}

/// Compute the TF profile of a specification for `terms` under `prefix`
/// (which modules count as visible).
pub fn tf_profile(repo: &Repository, spec: SpecId, prefix: &Prefix, terms: &[String]) -> TfProfile {
    let entry = repo.entry(spec).expect("live spec");
    let mut profile = TfProfile { visible: vec![0; terms.len()], hidden: vec![0; terms.len()] };
    for module in entry.spec.modules() {
        if module.kind.is_distinguished() {
            continue;
        }
        let mut text = tokenize(&module.name);
        for k in &module.keywords {
            text.extend(tokenize(k));
        }
        let visible = prefix.contains(module.workflow);
        for (ti, term) in terms.iter().enumerate() {
            let words: Vec<&str> = term.split(' ').collect();
            let count = if words.len() == 1 {
                text.iter().filter(|w| w.as_str() == words[0]).count() as u64
            } else {
                text.windows(words.len())
                    .filter(|w| w.iter().map(|s| s.as_str()).eq(words.iter().copied()))
                    .count() as u64
            };
            if visible {
                profile.visible[ti] += count;
            } else {
                profile.hidden[ti] += count;
            }
        }
    }
    profile
}

/// TF profiles for a slice of keyword hits, one per hit in order, each
/// computed under the hit's own answer prefix. This is the ranking layer's
/// per-query hot loop; the query engine memoizes its output per
/// `(group, query)` in the [`GroupCache`](ppwf_repo::cache::GroupCache), so
/// repeated queries skip re-tokenizing every module of every hit spec.
pub fn profiles_for_hits(
    repo: &Repository,
    hits: &[crate::keyword::KeywordHit],
    terms: &[String],
) -> Vec<TfProfile> {
    hits.iter().map(|h| tf_profile(repo, h.spec, &h.prefix, terms)).collect()
}

/// Per-term IDF weights from one index, through the index's per-term df
/// memo (phrase dfs otherwise re-materialize their posting lists per
/// request). A sharded cluster builds the same vector from *summed* shard
/// statistics via [`KeywordIndex::idf_from_counts`], which is what keeps
/// sharded ranked answers bit-identical to single-engine ones.
pub fn idfs_for_terms(index: &KeywordIndex, terms: &[String]) -> Vec<f64> {
    let mut out = Vec::with_capacity(terms.len());
    idfs_for_terms_into(index, terms, &mut out);
    out
}

/// Slice-shaped form of [`idfs_for_terms`]: clears and fills `out`, so
/// callers on the cold path reuse one buffer across queries.
pub fn idfs_for_terms_into(index: &KeywordIndex, terms: &[String], out: &mut Vec<f64>) {
    out.clear();
    out.extend(terms.iter().map(|t| index.idf_cached(t)));
}

/// Score one profile under a mode. IDF weights come from the index.
pub fn score(
    index: &KeywordIndex,
    terms: &[String],
    profile: &TfProfile,
    mode: RankingMode,
) -> f64 {
    score_with_idfs(&idfs_for_terms(index, terms), profile, mode)
}

/// [`score`] with precomputed per-term IDF weights — the form both the
/// single engine (one IDF resolution per query, not per hit) and the
/// cluster's gather stage (corpus-global IDFs over shard-local profiles)
/// evaluate.
pub fn score_with_idfs(idfs: &[f64], profile: &TfProfile, mode: RankingMode) -> f64 {
    let mut rng = match mode {
        RankingMode::NoisyFull { seed, .. } => Some(StdRng::seed_from_u64(seed)),
        _ => None,
    };
    idfs.iter()
        .enumerate()
        .map(|(ti, &idf)| {
            let tf = match mode {
                RankingMode::ExactFull => profile.total(ti) as f64,
                RankingMode::VisibleOnly => profile.visible[ti] as f64,
                RankingMode::BucketizedFull { base } => {
                    assert!(base > 1.0, "bucket base must exceed 1");
                    (1.0 + profile.total(ti) as f64).log(base).floor()
                }
                RankingMode::NoisyFull { epsilon, .. } => {
                    let mech = LaplaceMechanism::counting(epsilon);
                    (mech.noisy_count(profile.total(ti), rng.as_mut().unwrap())).max(0.0)
                }
            };
            // Sublinear tf scaling, the classic 1 + ln(tf) form.
            let tf_weight = if tf > 0.0 { 1.0 + tf.ln() } else { 0.0 };
            tf_weight * idf
        })
        .sum()
}

/// Batch form of [`score_with_idfs`] over many profiles at once — the
/// shape the engine's `ranked_search_as` and the cluster's gather stage
/// evaluate on the cold path.
///
/// Scores are **bit-identical** to mapping [`score_with_idfs`] over the
/// profiles: the flat staging pass computes each per-term tf with the
/// same expressions, the weight pass applies the identical
/// `1 + ln(tf)` transform, and each row's dot product accumulates
/// `weight * idf` in term order starting from `0.0`, exactly as the
/// per-profile iterator sum does. No reassociation, no FMA contraction
/// (Rust never contracts `a * b + c` implicitly). The payoff is layout:
/// one flat `f64` array staged in the thread-local
/// [`QueryScratch`](ppwf_repo::postings::QueryScratch), one elementwise
/// transform loop the compiler can vectorize, one branch-free dot loop
/// per row — instead of a per-term `match` on the mode per profile.
pub fn scores_for_profiles(idfs: &[f64], profiles: &[TfProfile], mode: RankingMode) -> Vec<f64> {
    let mut out = Vec::with_capacity(profiles.len());
    scores_for_profiles_into(idfs, profiles, mode, &mut out);
    out
}

/// [`scores_for_profiles`] writing into a caller-owned buffer (cleared
/// first). Borrows the thread-local query scratch internally — callers
/// must not invoke it from inside their own
/// [`with_scratch`](ppwf_repo::postings::with_scratch) closure, or the
/// staging pass silently falls back to a fresh allocation.
pub fn scores_for_profiles_into(
    idfs: &[f64],
    profiles: &[TfProfile],
    mode: RankingMode,
    out: &mut Vec<f64>,
) {
    out.clear();
    let nt = idfs.len();
    if nt == 0 {
        // `chunks_exact(0)` panics; a zero-term query scores everything 0.
        out.resize(profiles.len(), 0.0);
        return;
    }
    if matches!(mode, RankingMode::NoisyFull { .. }) {
        // Each profile draws from its own freshly seeded RNG stream; the
        // per-profile path already does exactly that, so delegate rather
        // than replicate the noise sequencing.
        out.extend(profiles.iter().map(|p| score_with_idfs(idfs, p, mode)));
        return;
    }
    with_scratch(|scratch| {
        let tf = &mut scratch.tf_flat;
        tf.clear();
        tf.reserve(profiles.len() * nt);
        for p in profiles {
            match mode {
                RankingMode::ExactFull => tf.extend((0..nt).map(|ti| p.total(ti) as f64)),
                RankingMode::VisibleOnly => tf.extend(p.visible[..nt].iter().map(|&v| v as f64)),
                RankingMode::BucketizedFull { base } => {
                    assert!(base > 1.0, "bucket base must exceed 1");
                    tf.extend((0..nt).map(|ti| (1.0 + p.total(ti) as f64).log(base).floor()));
                }
                RankingMode::NoisyFull { .. } => unreachable!("delegated above"),
            }
        }
        for w in tf.iter_mut() {
            *w = if *w > 0.0 { 1.0 + w.ln() } else { 0.0 };
        }
        out.extend(tf.chunks_exact(nt).map(|row| {
            let mut sum = 0.0;
            for (w, idf) in row.iter().zip(idfs) {
                sum += w * idf;
            }
            sum
        }));
    });
}

/// Sum shard-local `(doc_count, df)` pairs into corpus-global IDFs. Each
/// module lives in exactly one shard, so per-shard document counts and
/// document frequencies are additive over a disjoint spec partition.
pub fn idfs_from_shard_counts(doc_counts: &[usize], dfs_per_term: &[Vec<usize>]) -> Vec<f64> {
    let n: usize = doc_counts.iter().sum();
    dfs_per_term.iter().map(|dfs| KeywordIndex::idf_from_counts(n, dfs.iter().sum())).collect()
}

/// Rank result indices by descending score (stable: ties by index).
pub fn rank_by_scores(scores: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    order
}

/// Kendall-τ rank correlation between two orderings of the same index set
/// (+1 identical, −1 reversed). `a` and `b` list indices best-first.
pub fn kendall_tau(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "orderings must cover the same items");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let pos_b: Vec<usize> = {
        let mut p = vec![0; n];
        for (rank, &item) in b.iter().enumerate() {
            p[item] = rank;
        }
        p
    };
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let (x, y) = (a[i], a[j]); // x ranked above y in a
            if pos_b[x] < pos_b[y] {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    (concordant - discordant) as f64 / (n as f64 * (n as f64 - 1.0) / 2.0)
}

/// Kendall-τ-b between two score vectors over the same items. Tied pairs
/// contribute no information (a ranker that ties everything leaks
/// nothing), which is why leakage must be measured on scores, not on a
/// tie-broken ordering. Returns 0 when either side is entirely tied.
pub fn kendall_tau_scores(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "score vectors must cover the same items");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let (mut concordant, mut discordant) = (0i64, 0i64);
    let (mut ties_a, mut ties_b) = (0i64, 0i64);
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let sa = if da > 0.0 {
                1
            } else if da < 0.0 {
                -1
            } else {
                0
            };
            let sb = if db > 0.0 {
                1
            } else if db < 0.0 {
                -1
            } else {
                0
            };
            if sa == 0 {
                ties_a += 1;
            }
            if sb == 0 {
                ties_b += 1;
            }
            match sa * sb {
                1 => concordant += 1,
                -1 => discordant += 1,
                _ => {}
            }
        }
    }
    let n0 = (n as i64) * (n as i64 - 1) / 2;
    let denom = (((n0 - ties_a) as f64) * ((n0 - ties_b) as f64)).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        (concordant - discordant) as f64 / denom
    }
}

/// The E7 measurement for one query over a result set.
#[derive(Clone, Debug)]
pub struct RankingEvaluation {
    /// Kendall-τ-b against the exact full-information scores (utility).
    pub utility: f64,
    /// |Kendall-τ-b| against hidden term mass (leakage; 0 ≈ private).
    pub leakage: f64,
}

/// Evaluate a ranking mode over profiles of many results.
pub fn evaluate_ranking(
    index: &KeywordIndex,
    terms: &[String],
    profiles: &[TfProfile],
    mode: RankingMode,
) -> RankingEvaluation {
    let exact: Vec<f64> =
        profiles.iter().map(|p| score(index, terms, p, RankingMode::ExactFull)).collect();
    let produced: Vec<f64> = profiles.iter().map(|p| score(index, terms, p, mode)).collect();
    let hidden: Vec<f64> = profiles.iter().map(|p| p.hidden_mass() as f64).collect();

    RankingEvaluation {
        utility: kendall_tau_scores(&produced, &exact),
        leakage: kendall_tau_scores(&produced, &hidden).abs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppwf_core::policy::Policy;
    use ppwf_model::fixtures;
    use ppwf_model::hierarchy::Prefix;

    fn setup() -> (Repository, KeywordIndex) {
        let mut repo = Repository::new();
        let (spec, _) = fixtures::disease_susceptibility();
        repo.insert_spec(spec, Policy::public()).unwrap();
        let index = KeywordIndex::build(&repo);
        (repo, index)
    }

    #[test]
    fn kendall_tau_extremes() {
        assert_eq!(kendall_tau(&[0, 1, 2, 3], &[0, 1, 2, 3]), 1.0);
        assert_eq!(kendall_tau(&[0, 1, 2, 3], &[3, 2, 1, 0]), -1.0);
        let mid = kendall_tau(&[0, 1, 2, 3], &[1, 0, 2, 3]);
        assert!(mid > 0.0 && mid < 1.0);
        assert_eq!(kendall_tau(&[0], &[0]), 1.0);
    }

    #[test]
    fn tf_profiles_split_by_visibility() {
        let (repo, _) = setup();
        let entry = repo.entry(SpecId(0)).unwrap();
        let terms = vec!["query".to_string()];
        // Full prefix: everything visible.
        let full = tf_profile(&repo, SpecId(0), &Prefix::full(&entry.hierarchy), &terms);
        assert!(full.visible[0] > 0);
        assert_eq!(full.hidden[0], 0);
        // Root-only: "query" occurrences (M5..M7 names/tags, M9 tag) hide.
        let coarse = tf_profile(&repo, SpecId(0), &Prefix::root_only(&entry.hierarchy), &terms);
        assert_eq!(coarse.visible[0], 0);
        assert_eq!(coarse.hidden[0], full.visible[0]);
        assert_eq!(coarse.hidden_mass(), full.visible[0]);
    }

    #[test]
    fn exact_scoring_monotone_in_tf() {
        let (_, index) = setup();
        let terms = vec!["query".to_string()];
        let low = TfProfile { visible: vec![1], hidden: vec![0] };
        let high = TfProfile { visible: vec![1], hidden: vec![5] };
        let s_low = score(&index, &terms, &low, RankingMode::ExactFull);
        let s_high = score(&index, &terms, &high, RankingMode::ExactFull);
        assert!(s_high > s_low, "hidden occurrences raise the exact score — the leak");
        // Visible-only is blind to the hidden part.
        let v_low = score(&index, &terms, &low, RankingMode::VisibleOnly);
        let v_high = score(&index, &terms, &high, RankingMode::VisibleOnly);
        assert_eq!(v_low, v_high);
    }

    #[test]
    fn buckets_coarsen() {
        let (_, index) = setup();
        let terms = vec!["query".to_string()];
        let a = TfProfile { visible: vec![0], hidden: vec![4] };
        let b = TfProfile { visible: vec![0], hidden: vec![5] };
        let mode = RankingMode::BucketizedFull { base: 4.0 };
        // 4 and 5 fall in the same log_4 bucket: indistinguishable.
        assert_eq!(score(&index, &terms, &a, mode), score(&index, &terms, &b, mode));
        // But order-of-magnitude differences survive.
        let c = TfProfile { visible: vec![0], hidden: vec![60] };
        assert!(score(&index, &terms, &c, mode) > score(&index, &terms, &a, mode));
    }

    #[test]
    fn leakage_ordering_across_modes() {
        // Synthetic result set where hidden mass fully determines the exact
        // ranking: exact leaks everything, visible-only leaks nothing.
        let (_, index) = setup();
        let terms = vec!["query".to_string()];
        let profiles: Vec<TfProfile> =
            (0..8u64).map(|i| TfProfile { visible: vec![1], hidden: vec![i * i] }).collect();
        let exact = evaluate_ranking(&index, &terms, &profiles, RankingMode::ExactFull);
        assert!((exact.utility - 1.0).abs() < 1e-9);
        assert!((exact.leakage - 1.0).abs() < 1e-9, "exact ranking fully leaks");
        let visible = evaluate_ranking(&index, &terms, &profiles, RankingMode::VisibleOnly);
        assert_eq!(visible.leakage, 0.0, "all-tied visible scores carry no information");
        let bucket =
            evaluate_ranking(&index, &terms, &profiles, RankingMode::BucketizedFull { base: 8.0 });
        assert!(bucket.leakage <= exact.leakage);
        assert!(bucket.utility >= visible.utility);
    }

    #[test]
    fn noise_reduces_leakage_with_small_epsilon() {
        let (_, index) = setup();
        let terms = vec!["query".to_string()];
        let profiles: Vec<TfProfile> =
            (0..10u64).map(|i| TfProfile { visible: vec![1], hidden: vec![i] }).collect();
        let loud = evaluate_ranking(
            &index,
            &terms,
            &profiles,
            RankingMode::NoisyFull { epsilon: 100.0, seed: 5 },
        );
        let quiet = evaluate_ranking(
            &index,
            &terms,
            &profiles,
            RankingMode::NoisyFull { epsilon: 0.05, seed: 5 },
        );
        assert!(loud.leakage > quiet.leakage);
        assert!(loud.utility > quiet.utility);
    }

    #[test]
    fn rank_by_scores_stable() {
        let order = rank_by_scores(&[1.0, 3.0, 3.0, 0.5]);
        assert_eq!(order, vec![1, 2, 0, 3]);
    }

    #[test]
    fn batch_scores_bit_identical_to_per_profile() {
        let idfs = vec![1.3, 0.7, 2.25];
        let profiles: Vec<TfProfile> = (0..17u64)
            .map(|i| TfProfile {
                visible: vec![i % 5, (i * 3) % 7, i],
                hidden: vec![(i * 7) % 11, 0, i % 2],
            })
            .collect();
        for mode in [
            RankingMode::ExactFull,
            RankingMode::VisibleOnly,
            RankingMode::BucketizedFull { base: 2.0 },
            RankingMode::NoisyFull { epsilon: 0.7, seed: 42 },
        ] {
            let batch = scores_for_profiles(&idfs, &profiles, mode);
            assert_eq!(batch.len(), profiles.len());
            for (p, s) in profiles.iter().zip(&batch) {
                assert_eq!(
                    s.to_bits(),
                    score_with_idfs(&idfs, p, mode).to_bits(),
                    "batch score diverged under {mode:?}"
                );
            }
        }
        // Zero-term query: defined as all-zero scores, no panic.
        assert_eq!(scores_for_profiles(&[], &profiles, RankingMode::ExactFull), vec![0.0; 17]);
    }

    #[test]
    fn mode_keys_separate_exactly_the_distinct_rankers() {
        assert_eq!(RankingMode::ExactFull.cache_key(), RankingMode::ExactFull.cache_key());
        assert_ne!(RankingMode::ExactFull.cache_key(), RankingMode::VisibleOnly.cache_key());
        assert_ne!(
            RankingMode::BucketizedFull { base: 2.0 }.cache_key(),
            RankingMode::BucketizedFull { base: 4.0 }.cache_key()
        );
        assert_eq!(
            RankingMode::BucketizedFull { base: 2.0 }.cache_key(),
            RankingMode::BucketizedFull { base: 2.0 }.cache_key()
        );
        assert_ne!(
            RankingMode::NoisyFull { epsilon: 1.0, seed: 1 }.cache_key(),
            RankingMode::NoisyFull { epsilon: 1.0, seed: 2 }.cache_key()
        );
        assert_ne!(
            RankingMode::NoisyFull { epsilon: 0.5, seed: 1 }.cache_key(),
            RankingMode::NoisyFull { epsilon: 1.0, seed: 1 }.cache_key()
        );
    }
}
