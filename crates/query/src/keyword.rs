//! Keyword search over workflow specifications, returning minimal views.
//!
//! The paper (Sec. 4, refs \[1\], \[7\]): *"keyword queries ... retrieve
//! sub-workflows that match the input keywords ... the query answer is
//! given as a minimal view of the flow that satisfies the query criteria
//! and includes the keywords."* A specification matches when **every**
//! query term has at least one matching module; the answer view is the
//! smallest hierarchy prefix that makes one chosen match per term visible
//! — which is exactly how Fig. 5 arises from the query
//! `"Database, Disorder Risks"`: *Database* matches only `M5` deep in
//! `W4`, *Disorder Risks* matches `M2` at top level, so the minimal view
//! expands `{W1, W2, W4}` and leaves `M2` opaque.

use ppwf_model::expand::SpecView;
use ppwf_model::hierarchy::Prefix;
use ppwf_model::ids::{ModuleId, WorkflowId};
use ppwf_repo::keyword_index::{filter_postings, tokenize, KeywordIndex};
use ppwf_repo::postings::{with_scratch, QueryScratch};
use ppwf_repo::principals::SpecAccess;
use ppwf_repo::repository::{Repository, SpecId};
use ppwf_repo::scan::scan_specs;
use ppwf_repo::view_cache::ViewCache;
use std::collections::HashMap;
use std::sync::Arc;

/// A parsed keyword query: comma-separated terms, each a word or phrase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeywordQuery {
    /// Normalized terms (lowercased, whitespace-collapsed).
    pub terms: Vec<String>,
}

impl KeywordQuery {
    /// Parse `"Database, Disorder Risks"` into `["database", "disorder risks"]`.
    pub fn parse(text: &str) -> Self {
        let terms =
            text.split(',').map(|t| tokenize(t).join(" ")).filter(|t| !t.is_empty()).collect();
        KeywordQuery { terms }
    }

    /// Build from explicit terms.
    pub fn new(terms: &[&str]) -> Self {
        KeywordQuery { terms: terms.iter().map(|t| tokenize(t).join(" ")).collect() }
    }
}

/// One search hit: a specification, the minimal view answering the query,
/// and which module satisfied each term.
///
/// The view is shared (`Arc`): with a [`ViewCache`] in play, many hits —
/// across queries and across principals of the same group — point at one
/// materialized view, and its memoized transitive closure warms once for
/// all of them.
#[derive(Debug)]
pub struct KeywordHit {
    /// The matching specification.
    pub spec: SpecId,
    /// The minimal prefix exposing all chosen matches.
    pub prefix: Prefix,
    /// The flattened answer view under that prefix (Fig. 5's artifact).
    pub view: Arc<SpecView>,
    /// Chosen match per term, in term order.
    pub matched: Vec<(String, ModuleId)>,
}

/// Materialize the answer view for a hit: through the cache when one is
/// supplied (the query fast path), from scratch otherwise.
pub(crate) fn build_view(
    repo: &Repository,
    views: Option<&ViewCache>,
    spec: SpecId,
    prefix: &Prefix,
) -> Option<Arc<SpecView>> {
    match views {
        Some(cache) => cache.view(repo, spec, prefix),
        None => {
            let entry = repo.entry(spec)?;
            SpecView::build(&entry.spec, &entry.hierarchy, prefix).ok().map(Arc::new)
        }
    }
}

/// Workflows that must be in the prefix for module `m` to be visible: the
/// hierarchy path from the root to `m`'s workflow.
fn required_path(entry: &ppwf_repo::repository::SpecEntry, m: ModuleId) -> Vec<WorkflowId> {
    let mut path = Vec::new();
    let mut cur = Some(entry.spec.module(m).workflow);
    while let Some(w) = cur {
        path.push(w);
        cur = entry.hierarchy.parent(w);
    }
    path
}

/// Choose one match per term minimizing the resulting prefix size (greedy:
/// terms with fewest candidates first; each picks the candidate adding the
/// fewest new workflows; ties broken by module id for determinism).
fn minimal_cover(
    entry: &ppwf_repo::repository::SpecEntry,
    candidates: &[(String, Vec<ModuleId>)],
) -> Option<(Prefix, Vec<(String, ModuleId)>)> {
    if candidates.iter().any(|(_, c)| c.is_empty()) {
        return None;
    }
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by_key(|&i| candidates[i].1.len());

    let mut required: Vec<WorkflowId> = vec![entry.spec.root()];
    let mut chosen: Vec<Option<(String, ModuleId)>> = vec![None; candidates.len()];
    for &i in &order {
        let (term, mods) = &candidates[i];
        let best = mods
            .iter()
            .map(|&m| {
                let path = required_path(entry, m);
                let added = path.iter().filter(|w| !required.contains(w)).count();
                (added, m, path)
            })
            .min_by_key(|(added, m, _)| (*added, *m))
            .expect("nonempty candidate list");
        for w in best.2 {
            if !required.contains(&w) {
                required.push(w);
            }
        }
        chosen[i] = Some((term.clone(), best.1));
    }
    let prefix =
        Prefix::from_workflows(&entry.hierarchy, required).expect("root paths are parent-closed");
    Some((prefix, chosen.into_iter().map(|c| c.expect("all terms chosen")).collect()))
}

/// Index-backed search over the whole repository (no privacy filtering —
/// the administrator's plan). Hits are ordered by spec id.
pub fn search(repo: &Repository, index: &KeywordIndex, query: &KeywordQuery) -> Vec<KeywordHit> {
    search_with_index(repo, index, query, None, None::<&HashMap<SpecId, Prefix>>)
}

/// [`search`] with answer views fetched through `views` instead of built
/// per hit — the repeated-query fast path.
pub fn search_with_cache(
    repo: &Repository,
    index: &KeywordIndex,
    query: &KeywordQuery,
    views: &ViewCache,
) -> Vec<KeywordHit> {
    search_with_index(repo, index, query, Some(views), None::<&HashMap<SpecId, Prefix>>)
}

/// Index-backed search with privilege filtering: only postings whose
/// workflow is inside the principal's access view for that spec are
/// admissible (the paper's one-index-many-views design). `access` is any
/// [`SpecAccess`]: an eager whole-corpus map, or a lazy
/// [`AccessResolver`](ppwf_repo::principals::AccessResolver) that resolves
/// rules only for specs appearing in candidate postings. Filtering stays
/// filter-then-search either way: postings are screened before any
/// cover/view work, so no inadmissible candidate enters timing-observable
/// scoring.
pub fn search_filtered(
    repo: &Repository,
    index: &KeywordIndex,
    query: &KeywordQuery,
    access: &impl SpecAccess,
) -> Vec<KeywordHit> {
    search_with_index(repo, index, query, None, Some(access))
}

/// [`search_filtered`] with answer views fetched through `views` — the
/// entry point the per-group query engine uses.
pub fn search_filtered_with_cache(
    repo: &Repository,
    index: &KeywordIndex,
    query: &KeywordQuery,
    access: &impl SpecAccess,
    views: &ViewCache,
) -> Vec<KeywordHit> {
    search_with_index(repo, index, query, Some(views), Some(access))
}

/// The cold-path kernel pipeline behind every index-backed entry point:
///
/// 1. **Candidate discovery** — intersect the terms' spec supersets over
///    the block-compressed lists (galloping skips / bitmap AND), so specs
///    that cannot satisfy the AND semantics never materialize a posting.
/// 2. **Restricted gather** — decode only the candidate specs' blocks per
///    term, then privilege-filter in place (one prefix resolution per
///    spec run; with a lazy resolver only candidate specs resolve).
/// 3. **Vec-indexed assembly** — per-`(spec, term)` module lists live in
///    a flat scratch table addressed by candidate rank, replacing the old
///    per-posting `HashMap<SpecId, _>` insert.
///
/// All intermediate buffers come from the thread-local [`QueryScratch`],
/// so a pool worker reuses one arena across every query it serves.
fn search_with_index<A: SpecAccess + ?Sized>(
    repo: &Repository,
    index: &KeywordIndex,
    query: &KeywordQuery,
    views: Option<&ViewCache>,
    access: Option<&A>,
) -> Vec<KeywordHit> {
    if query.terms.is_empty() {
        return Vec::new();
    }
    with_scratch(|s| {
        let QueryScratch { postings, seed, block, specs, specs_b, mods, .. } = s;
        if !index.candidate_specs_into(&query.terms, specs_b, specs) || specs.is_empty() {
            return Vec::new();
        }
        let cands: &[u32] = specs;
        let nterms = query.terms.len();
        let slots = cands.len() * nterms;
        for m in mods.iter_mut() {
            m.clear();
        }
        if mods.len() < slots {
            mods.resize_with(slots, Vec::new);
        }
        // A single term's candidates are exactly (or, for a phrase, a
        // superset of) its own specs — nothing to restrict against.
        let restrict = if nterms > 1 { Some(cands) } else { None };
        for (ti, term) in query.terms.iter().enumerate() {
            index.lookup_normalized_into(term, restrict, block, seed, postings);
            if let Some(a) = access {
                filter_postings(postings, a);
            }
            if postings.is_empty() {
                // No admissible posting anywhere for this term: the AND
                // semantics reject every candidate.
                return Vec::new();
            }
            for p in postings.iter() {
                let rank =
                    cands.binary_search(&p.spec.0).expect("gathered posting spec is a candidate");
                mods[rank * nterms + ti].push(p.module);
            }
        }
        let mut hits = Vec::new();
        for (rank, &spec) in cands.iter().enumerate() {
            let row = &mut mods[rank * nterms..(rank + 1) * nterms];
            if row.iter().any(|c| c.is_empty()) {
                continue; // AND semantics: every term must match
            }
            let sid = SpecId(spec);
            let entry = repo.entry(sid).expect("posting references live spec");
            let named: Vec<(String, Vec<ModuleId>)> =
                query.terms.iter().cloned().zip(row.iter_mut().map(std::mem::take)).collect();
            if let Some((prefix, matched)) = minimal_cover(entry, &named) {
                let view =
                    build_view(repo, views, sid, &prefix).expect("minimal cover prefix is valid");
                hits.push(KeywordHit { spec: sid, prefix, view, matched });
            }
        }
        hits
    })
}

/// Scan-backed search (no index): tokenizes every module of every spec per
/// query — the baseline plan of experiment E5.
pub fn search_scan(repo: &Repository, query: &KeywordQuery) -> Vec<KeywordHit> {
    search_scan_inner(repo, query, None)
}

/// [`search_scan`] with answer views fetched through `views`; the scan
/// still tokenizes everything (that is the baseline being measured), but
/// repeated queries stop paying view construction.
pub fn search_scan_with_cache(
    repo: &Repository,
    query: &KeywordQuery,
    views: &ViewCache,
) -> Vec<KeywordHit> {
    search_scan_inner(repo, query, Some(views))
}

fn search_scan_inner(
    repo: &Repository,
    query: &KeywordQuery,
    views: Option<&ViewCache>,
) -> Vec<KeywordHit> {
    if query.terms.is_empty() {
        return Vec::new();
    }
    let matches_term = |module: &ppwf_model::spec::Module, term: &str| -> bool {
        let tokens = tokenize(&module.name);
        let qtokens: Vec<String> = term.split(' ').map(|s| s.to_string()).collect();
        let name_hit = if qtokens.len() == 1 {
            tokens.contains(&qtokens[0])
        } else {
            tokens.windows(qtokens.len()).any(|w| w == qtokens.as_slice())
        };
        name_hit
            || module.keywords.iter().any(|k| {
                let kt = tokenize(k);
                kt.join(" ") == term || (qtokens.len() == 1 && kt.contains(&qtokens[0]))
            })
    };
    scan_specs(repo, |sid, entry| {
        let named: Vec<(String, Vec<ModuleId>)> = query
            .terms
            .iter()
            .map(|term| {
                let mods: Vec<ModuleId> = entry
                    .spec
                    .modules()
                    .filter(|m| !m.kind.is_distinguished() && matches_term(m, term))
                    .map(|m| m.id)
                    .collect();
                (term.clone(), mods)
            })
            .collect();
        let (prefix, matched) = minimal_cover(entry, &named)?;
        let view = build_view(repo, views, sid, &prefix)?;
        Some(KeywordHit { spec: sid, prefix, view, matched })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppwf_core::policy::Policy;
    use ppwf_model::fixtures;
    use std::collections::HashMap;

    fn setup() -> (Repository, KeywordIndex) {
        let mut repo = Repository::new();
        let (spec, _) = fixtures::disease_susceptibility();
        repo.insert_spec(spec, Policy::public()).unwrap();
        let index = KeywordIndex::build(&repo);
        (repo, index)
    }

    #[test]
    fn parse_query() {
        let q = KeywordQuery::parse("Database, Disorder Risks");
        assert_eq!(q.terms, vec!["database", "disorder risks"]);
        assert_eq!(KeywordQuery::parse("  , ,").terms.len(), 0);
        assert_eq!(KeywordQuery::new(&["Query OMIM"]).terms, vec!["query omim"]);
    }

    /// Fig. 5 — the paper's worked example, exactly.
    #[test]
    fn fig5_database_disorder_risks() {
        let (repo, index) = setup();
        let entry = repo.entry(SpecId(0)).unwrap();
        let m = fixtures::handles(&entry.spec);
        let q = KeywordQuery::parse("Database, Disorder Risks");
        let hits = search(&repo, &index, &q);
        assert_eq!(hits.len(), 1);
        let hit = &hits[0];
        // Minimal view = {W1, W2, W4}: W3 stays collapsed inside M2.
        let wf: Vec<usize> = hit.prefix.workflows().map(|w| w.index()).collect();
        assert_eq!(wf, vec![0, 1, 3]);
        // Matches: "database" → M5, "disorder risks" → M2.
        assert_eq!(hit.matched.len(), 2);
        assert!(hit.matched.contains(&("database".to_string(), m.m5)));
        assert!(hit.matched.contains(&("disorder risks".to_string(), m.m2)));
        // The view shows exactly I, O, M2, M3, M5, M6, M7, M8 — Fig. 5's
        // node set.
        let mut codes: Vec<String> =
            hit.view.visible_modules().map(|mm| entry.spec.module(mm).code.clone()).collect();
        codes.sort();
        assert_eq!(codes, vec!["M2", "M3", "M5", "M6", "M7", "M8"]);
        // And Fig. 5's edges: M6 → M8, M7 → M8 ("disorders, disorders"),
        // M8 → M2, I → M2, M2 → O.
        assert!(hit.view.has_module_edge(m.m6, m.m8));
        assert!(hit.view.has_module_edge(m.m7, m.m8));
        assert!(hit.view.has_module_edge(m.m8, m.m2));
        assert!(hit.view.has_module_edge(m.m3, m.m5));
    }

    #[test]
    fn and_semantics_rejects_partial_matches() {
        let (repo, index) = setup();
        let q = KeywordQuery::parse("database, unobtainium");
        assert!(search(&repo, &index, &q).is_empty());
    }

    #[test]
    fn shallow_matches_stay_shallow() {
        let (repo, index) = setup();
        // "risk" matches only M2 (keyword tag) at top level: minimal view
        // is the root alone.
        let q = KeywordQuery::parse("risk");
        let hits = search(&repo, &index, &q);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].prefix.len(), 1);
        assert_eq!(hits[0].view.visible_modules().count(), 2, "M1 and M2 only");
    }

    #[test]
    fn scan_agrees_with_index() {
        let (repo, index) = setup();
        for text in ["Database, Disorder Risks", "risk", "query", "pubmed", "snp"] {
            let q = KeywordQuery::parse(text);
            let a = search(&repo, &index, &q);
            let b = search_scan(&repo, &q);
            assert_eq!(a.len(), b.len(), "query {text:?}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.spec, y.spec, "query {text:?}");
                assert_eq!(x.prefix, y.prefix, "query {text:?}");
                assert_eq!(x.matched, y.matched, "query {text:?}");
            }
        }
    }

    #[test]
    fn privilege_filtering_coarsens_or_drops() {
        let (repo, index) = setup();
        let entry = repo.entry(SpecId(0)).unwrap();
        let q = KeywordQuery::parse("database");
        // Root-only access: the only "database" match (M5, in W4) is
        // inadmissible → no hits.
        let mut access = HashMap::new();
        access.insert(SpecId(0), Prefix::root_only(&entry.hierarchy));
        assert!(search_filtered(&repo, &index, &q, &access).is_empty());
        // Full access: hit appears.
        access.insert(SpecId(0), Prefix::full(&entry.hierarchy));
        assert_eq!(search_filtered(&repo, &index, &q, &access).len(), 1);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let (repo, index) = setup();
        assert!(search(&repo, &index, &KeywordQuery::parse("")).is_empty());
        assert!(search_scan(&repo, &KeywordQuery::parse("")).is_empty());
    }

    #[test]
    fn multiple_specs_ordered() {
        let mut repo = Repository::new();
        let (s1, _) = fixtures::disease_susceptibility();
        let (s2, _) = fixtures::disease_susceptibility();
        repo.insert_spec(s1, Policy::public()).unwrap();
        repo.insert_spec(s2, Policy::public()).unwrap();
        let index = KeywordIndex::build(&repo);
        let hits = search(&repo, &index, &KeywordQuery::parse("risk"));
        assert_eq!(hits.len(), 2);
        assert!(hits[0].spec < hits[1].spec);
    }
}
