//! # ppwf-query — privacy-preserving search and query evaluation
//!
//! Implements Sec. 4 of the paper: the two query classes provenance-aware
//! workflow repositories must support, evaluated under privacy.
//!
//! * [`keyword`] — keyword search returning the **minimal view** of the
//!   hierarchy that exposes a match for every query term (refs \[1\], \[7\]);
//!   reproduces Fig. 5 exactly. Index-backed and scan-backed plans.
//! * [`structural`] — structural pattern queries with direct and
//!   transitive edges (BP-QL-flavored, ref \[1\]) over specification views
//!   and executions, including the paper's *"Expand SNP Set executed before
//!   Query OMIM → return the provenance information for the latter"*.
//! * [`privacy_exec`] — the two evaluation strategies Sec. 4 contrasts:
//!   **filter-then-search** (privacy pushed into the index) versus
//!   **search-then-zoom-out** (full answer first, then coarsen until
//!   privacy is achieved), with cost accounting for experiment E6.
//! * [`ranking`] — TF-IDF ranking and its privacy problem: exact scores
//!   leak hidden term counts (Sec. 4's "Impact of Ranking on Privacy
//!   Preservation"); bucketized and visible-only rankers trade utility for
//!   leakage, measured with Kendall-τ (experiment E7).
//! * [`engine`] — the assembled serving stack: keyword index + shared
//!   [`ViewCache`](ppwf_repo::view_cache::ViewCache) + per-user-group
//!   result caches with surfaced statistics (Sec. 4's caching design;
//!   experiment E10).
//! * [`route`] / [`cluster`] — sharded serving: a spec-partitioning
//!   [`Router`](route::Router) over N shard engines, scattered on a
//!   persistent worker pool and gathered into answers bit-identical to a
//!   single engine (experiment E11).
//! * [`serve`] — the asynchronous serving front: typed requests admitted
//!   through a read/write fence, fanned out as independent per-shard pool
//!   jobs and gathered into [`Ticket`](ppwf_repo::ticket::Ticket)
//!   completions, so a small fixed pool multiplexes many in-flight
//!   queries (experiment E14).

pub mod cluster;
pub mod engine;
pub mod exec_match;
pub mod keyword;
pub(crate) mod modes;
pub mod privacy_exec;
pub mod private_provenance;
pub mod ranking;
pub mod route;
pub mod serve;
pub mod structural;

pub use cluster::{ClusterStats, EngineCluster, Mutation, MutationEffect, RankedHits};
pub use engine::{EngineStats, Plan, QueryEngine, RankedAnswer};
pub use keyword::{KeywordHit, KeywordQuery};
pub use route::{Router, ShardStrategy};
pub use serve::{QueryAnswer, ServeFront, ServeRequest, ServeResponse, ServeStats};
