//! Structural pattern matching over **executions** (via execution views).
//!
//! [`crate::structural`] matches patterns against specification views; this
//! module evaluates the same patterns against *execution* views, binding
//! pattern nodes to process ids — the literal reading of the paper's
//! *"find executions where Expand SNP Set was executed before Query OMIM"*.
//! Because matching runs on an [`ExecView`], the caller's access view
//! shapes what is matchable: processes collapsed into a composite can only
//! be bound through the composite's identity, exactly like Fig. 2.

use crate::structural::{Pattern, PatternEdge};
use ppwf_model::exec::Execution;
use ppwf_model::ids::ProcId;
use ppwf_model::spec::Specification;
use ppwf_views::exec_view::{ExecView, ExecViewNode};

/// A match over an execution view: pattern-node index → bound process.
pub type ProcBinding = Vec<ProcId>;

/// The module a view node identifiably executes, if any.
fn node_module(
    spec: &Specification,
    exec: &Execution,
    view: &ExecView,
    n: u32,
) -> Option<(ProcId, ppwf_model::ids::ModuleId)> {
    match view.graph().node(n) {
        ExecViewNode::Kept(orig) => {
            let node = exec.graph().node(orig.index() as u32);
            let m = node.kind.module()?;
            let p = node.proc?;
            // A composite's begin/end pair maps to one process; bind at the
            // begin node only to avoid duplicate bindings.
            if let ppwf_model::exec::ExecNodeKind::End(_) = node.kind {
                if exec.proc(p).begin != *orig {
                    return None;
                }
            }
            let _ = spec;
            Some((p, m))
        }
        ExecViewNode::Collapsed(p, m) => Some((*p, *m)),
        _ => None,
    }
}

/// Evaluate `pattern` against an execution view. Edge semantics: a
/// *transitive* pattern edge requires a dataflow path from the source
/// process's (end) node to the target's (begin) node; a *direct* edge
/// requires a single view edge between them.
pub fn match_exec_view(
    spec: &Specification,
    exec: &Execution,
    view: &ExecView,
    pattern: &Pattern,
) -> Vec<ProcBinding> {
    // Collect bindable (view node, proc, module) triples.
    let mut entities: Vec<(u32, ProcId, ppwf_model::ids::ModuleId)> = view
        .graph()
        .node_ids()
        .filter_map(|n| node_module(spec, exec, view, n).map(|(p, m)| (n, p, m)))
        .collect();
    entities.sort_by_key(|&(_, p, _)| p);
    entities.dedup_by_key(|e| e.1);

    let cands: Vec<Vec<(u32, ProcId)>> = pattern
        .nodes
        .iter()
        .map(|nm| {
            entities
                .iter()
                .filter(|&&(_, _, m)| nm.matches(spec, m))
                .map(|&(n, p, _)| (n, p))
                .collect()
        })
        .collect();
    if cands.iter().any(|c| c.is_empty()) {
        return Vec::new();
    }
    let closure = view.graph().transitive_closure();

    // For a kept composite, paths leave from its *end* node; recover it.
    let end_node_of = |p: ProcId, begin_view_node: u32| -> u32 {
        match view.graph().node(begin_view_node) {
            ExecViewNode::Collapsed(..) => begin_view_node,
            ExecViewNode::Kept(_) => {
                let end = exec.proc(p).end;
                view.node_of_proc(p)
                    .filter(|_| exec.proc(p).begin == exec.proc(p).end)
                    .unwrap_or_else(|| {
                        // Distinct begin/end: find the end's view node by
                        // scanning (executions are small relative to query
                        // rate; a map would be premature).
                        view.graph()
                            .node_ids()
                            .find(|&n| {
                                matches!(view.graph().node(n), ExecViewNode::Kept(orig) if *orig == end)
                            })
                            .unwrap_or(begin_view_node)
                    })
            }
            _ => begin_view_node,
        }
    };

    let mut results: Vec<ProcBinding> = Vec::new();
    let mut binding: Vec<Option<(u32, ProcId)>> = vec![None; pattern.nodes.len()];
    /// A partial assignment of pattern slots to `(view node, process)`.
    type Slots = [Option<(u32, ProcId)>];
    fn backtrack(
        i: usize,
        cands: &[Vec<(u32, ProcId)>],
        binding: &mut Vec<Option<(u32, ProcId)>>,
        results: &mut Vec<ProcBinding>,
        check: &dyn Fn(&Slots) -> bool,
    ) {
        if i == cands.len() {
            results.push(binding.iter().map(|b| b.unwrap().1).collect());
            return;
        }
        for &(n, p) in &cands[i] {
            if binding[..i].iter().any(|b| matches!(b, Some((_, q)) if *q == p)) {
                continue;
            }
            binding[i] = Some((n, p));
            if check(binding) {
                backtrack(i + 1, cands, binding, results, check);
            }
            binding[i] = None;
        }
    }
    let check = |binding: &[Option<(u32, ProcId)>]| -> bool {
        pattern.edges.iter().all(|e: &PatternEdge| {
            match (binding.get(e.from).copied().flatten(), binding.get(e.to).copied().flatten()) {
                (Some((na, pa)), Some((nb, _pb))) => {
                    let from = end_node_of(pa, na);
                    if e.transitive {
                        from != nb && closure[from as usize].contains(nb as usize)
                    } else {
                        view.graph().has_edge(from, nb)
                    }
                }
                _ => true,
            }
        })
    };
    backtrack(0, &cands, &mut binding, &mut results, &check);
    results.sort();
    results.dedup();
    results
}

/// Count matching executions one by one — the honest per-execution version
/// of [`crate::structural::count_matching_executions`], usable when
/// executions differ (e.g. after privacy masking or with failed runs).
pub fn count_matching(
    spec: &Specification,
    views: &[(Execution, ExecView)],
    pattern: &Pattern,
) -> u64 {
    views
        .iter()
        .filter(|(exec, view)| !match_exec_view(spec, exec, view, pattern).is_empty())
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structural::NodeMatcher;
    use ppwf_model::fixtures;
    use ppwf_model::hierarchy::{ExpansionHierarchy, Prefix};
    use ppwf_model::ids::WorkflowId;

    fn setup() -> (Specification, ExpansionHierarchy, Execution) {
        let (spec, _) = fixtures::disease_susceptibility();
        let h = ExpansionHierarchy::of(&spec);
        let exec = fixtures::disease_susceptibility_execution(&spec);
        (spec, h, exec)
    }

    #[test]
    fn paper_query_binds_processes() {
        let (spec, h, exec) = setup();
        let m = fixtures::handles(&spec);
        let view = ExecView::build(&spec, &h, &exec, &Prefix::full(&h)).unwrap();
        let pattern = Pattern::before(
            NodeMatcher::Phrase("expand snp set".into()),
            NodeMatcher::Phrase("query omim".into()),
        );
        let matches = match_exec_view(&spec, &exec, &view, &pattern);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0], vec![exec.proc_of(m.m3).unwrap(), exec.proc_of(m.m6).unwrap()]);
    }

    #[test]
    fn collapsed_composites_bind_by_identity() {
        // Under {W1}: only S1:M1 and S8:M2 are bindable; the top-level
        // "before" relation between them holds.
        let (spec, h, exec) = setup();
        let m = fixtures::handles(&spec);
        let view = ExecView::build(&spec, &h, &exec, &Prefix::root_only(&h)).unwrap();
        let pattern =
            Pattern::before(NodeMatcher::Code("M1".into()), NodeMatcher::Code("M2".into()));
        let matches = match_exec_view(&spec, &exec, &view, &pattern);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0], vec![exec.proc_of(m.m1).unwrap(), exec.proc_of(m.m2).unwrap()]);
        // Inner modules are not bindable at this view.
        let deep = Pattern::before(NodeMatcher::Code("M3".into()), NodeMatcher::Code("M6".into()));
        assert!(match_exec_view(&spec, &exec, &view, &deep).is_empty());
    }

    #[test]
    fn composite_paths_leave_from_end() {
        // Under {W1, W2}: M4 is a kept... collapsed composite; M8 follows
        // it. "M4 before M8" must hold (path from M4's node to M8).
        let (spec, h, exec) = setup();
        let m = fixtures::handles(&spec);
        let p = Prefix::from_workflows(&h, [WorkflowId::new(0), WorkflowId::new(1)]).unwrap();
        let view = ExecView::build(&spec, &h, &exec, &p).unwrap();
        let pattern =
            Pattern::before(NodeMatcher::Code("M4".into()), NodeMatcher::Code("M8".into()));
        assert_eq!(match_exec_view(&spec, &exec, &view, &pattern).len(), 1);
        // And the expanded composite M1 (begin/end kept) still reaches M2.
        let pattern =
            Pattern::before(NodeMatcher::Code("M1".into()), NodeMatcher::Code("M2".into()));
        let matches = match_exec_view(&spec, &exec, &view, &pattern);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0][0], exec.proc_of(m.m1).unwrap());
    }

    #[test]
    fn non_facts_do_not_match() {
        let (spec, h, exec) = setup();
        let view = ExecView::build(&spec, &h, &exec, &Prefix::full(&h)).unwrap();
        let pattern =
            Pattern::before(NodeMatcher::Code("M10".into()), NodeMatcher::Code("M14".into()));
        assert!(match_exec_view(&spec, &exec, &view, &pattern).is_empty());
    }

    #[test]
    fn counting_over_views() {
        let (spec, h, exec) = setup();
        let full = Prefix::full(&h);
        let views: Vec<(Execution, ExecView)> = (0..3)
            .map(|_| {
                let v = ExecView::build(&spec, &h, &exec, &full).unwrap();
                (exec.clone(), v)
            })
            .collect();
        let hit = Pattern::before(NodeMatcher::Code("M3".into()), NodeMatcher::Code("M6".into()));
        assert_eq!(count_matching(&spec, &views, &hit), 3);
        let miss =
            Pattern::before(NodeMatcher::Code("M10".into()), NodeMatcher::Code("M14".into()));
        assert_eq!(count_matching(&spec, &views, &miss), 0);
    }
}
