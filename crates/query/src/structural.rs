//! Structural pattern queries over specification views and executions.
//!
//! Sec. 4: *"structural queries ... allow users to select sub-workflows
//! based on structural properties (e.g., 'find executions where Expand SNP
//! Set was executed before Query OMIM and return the provenance information
//! for the latter')"*. Following BP-QL (ref \[1\]), a [`Pattern`] is a small
//! graph whose nodes carry predicates and whose edges are either **direct**
//! (one dataflow edge) or **transitive** (a dataflow path); τ-expansion
//! structure is respected by evaluating against a *view* — matches can only
//! bind modules visible at the caller's granularity, which is how access
//! views shape query semantics.

use ppwf_model::exec::Execution;
use ppwf_model::expand::SpecView;
use ppwf_model::ids::{DataId, ModuleId};
use ppwf_model::provenance::{provenance_of, ProvenanceGraph};
use ppwf_model::spec::Specification;
use ppwf_repo::keyword_index::tokenize;

/// Node predicate of a pattern.
#[derive(Clone, Debug)]
pub enum NodeMatcher {
    /// Matches any module.
    Any,
    /// Module name contains this token (case-insensitive).
    NameToken(String),
    /// Module name or keyword tags contain this phrase.
    Phrase(String),
    /// Exact module code (`"M6"`).
    Code(String),
}

impl NodeMatcher {
    /// Evaluate against a module.
    pub fn matches(&self, spec: &Specification, m: ModuleId) -> bool {
        let module = spec.module(m);
        match self {
            NodeMatcher::Any => true,
            NodeMatcher::NameToken(t) => tokenize(&module.name).contains(&t.to_lowercase()),
            NodeMatcher::Phrase(p) => {
                let norm = tokenize(p).join(" ");
                let name = tokenize(&module.name).join(" ");
                name.contains(&norm)
                    || module.keywords.iter().any(|k| tokenize(k).join(" ").contains(&norm))
            }
            NodeMatcher::Code(c) => module.code.eq_ignore_ascii_case(c),
        }
    }
}

/// Edge of a pattern.
#[derive(Clone, Copy, Debug)]
pub struct PatternEdge {
    /// Source pattern-node index.
    pub from: usize,
    /// Target pattern-node index.
    pub to: usize,
    /// Direct edge (`false`) or dataflow path (`true`).
    pub transitive: bool,
}

/// A structural pattern.
#[derive(Clone, Debug, Default)]
pub struct Pattern {
    /// Node predicates.
    pub nodes: Vec<NodeMatcher>,
    /// Edges between pattern nodes.
    pub edges: Vec<PatternEdge>,
}

impl Pattern {
    /// Two-node "A before B" pattern with a transitive edge — the shape of
    /// the paper's example query.
    pub fn before(a: NodeMatcher, b: NodeMatcher) -> Self {
        Pattern { nodes: vec![a, b], edges: vec![PatternEdge { from: 0, to: 1, transitive: true }] }
    }
}

/// A match: pattern-node index → bound module.
pub type Binding = Vec<ModuleId>;

/// Evaluate `pattern` against a specification view. Returns every binding
/// of pattern nodes to distinct visible modules satisfying all predicates
/// and edges. Deterministic order (bindings sorted).
pub fn match_view(spec: &Specification, view: &SpecView, pattern: &Pattern) -> Vec<Binding> {
    let modules: Vec<ModuleId> = {
        let mut v: Vec<ModuleId> = view.visible_modules().collect();
        v.sort();
        v
    };
    // Candidates per pattern node.
    let cands: Vec<Vec<ModuleId>> = pattern
        .nodes
        .iter()
        .map(|nm| modules.iter().copied().filter(|&m| nm.matches(spec, m)).collect())
        .collect();
    if cands.iter().any(|c| c.is_empty()) {
        return Vec::new();
    }
    // Precompute closure for transitive edges.
    let closure = view.graph().transitive_closure();
    let node_of = |m: ModuleId| view.node_of(m).expect("visible module");

    let mut results = Vec::new();
    let mut binding: Vec<Option<ModuleId>> = vec![None; pattern.nodes.len()];
    fn backtrack(
        i: usize,
        cands: &[Vec<ModuleId>],
        binding: &mut Vec<Option<ModuleId>>,
        results: &mut Vec<Binding>,
        check: &dyn Fn(&[Option<ModuleId>]) -> bool,
    ) {
        if i == cands.len() {
            results.push(binding.iter().map(|b| b.unwrap()).collect());
            return;
        }
        for &m in &cands[i] {
            if binding[..i].contains(&Some(m)) {
                continue; // injective bindings
            }
            binding[i] = Some(m);
            if check(binding) {
                backtrack(i + 1, cands, binding, results, check);
            }
            binding[i] = None;
        }
    }
    let check = |binding: &[Option<ModuleId>]| -> bool {
        pattern.edges.iter().all(|e| {
            match (binding.get(e.from).copied().flatten(), binding.get(e.to).copied().flatten()) {
                (Some(a), Some(b)) => {
                    let (na, nb) = (node_of(a), node_of(b));
                    if e.transitive {
                        na != nb && closure[na as usize].contains(nb as usize)
                    } else {
                        view.graph().has_edge(na, nb)
                    }
                }
                _ => true, // not yet bound
            }
        })
    };
    backtrack(0, &cands, &mut binding, &mut results, &check);
    results.sort();
    results
}

/// The paper's full example: match the pattern against an execution (via a
/// view) and, for each match, return the provenance of the data produced by
/// the module bound to `provenance_of_node`.
pub fn match_and_provenance(
    spec: &Specification,
    view: &SpecView,
    exec: &Execution,
    pattern: &Pattern,
    provenance_of_node: usize,
) -> Vec<(Binding, Vec<ProvenanceGraph>)> {
    let bindings = match_view(spec, view, pattern);
    bindings
        .into_iter()
        .map(|b| {
            let target = b[provenance_of_node];
            let outputs: Vec<DataId> = exec
                .data_items()
                .filter(|d| {
                    exec.graph()
                        .node(d.producer.index() as u32)
                        .kind
                        .module()
                        .map(|m| m == target)
                        .unwrap_or(false)
                })
                .map(|d| d.id)
                .collect();
            let provs = outputs.iter().map(|&d| provenance_of(exec, d)).collect();
            (b, provs)
        })
        .collect()
}

/// Count of executions in which the pattern matches at all — the
/// provenance counting query the DP experiment (E8) perturbs.
pub fn count_matching_executions(
    spec: &Specification,
    view: &SpecView,
    execs: &[Execution],
    pattern: &Pattern,
) -> u64 {
    // Pattern matching is per-spec here (all executions share structure);
    // an execution "matches" when the view match exists — with varied
    // module behavior this would filter by runtime values; structure-only
    // executions all agree, so this counts all-or-nothing.
    if execs.is_empty() {
        return 0;
    }
    if match_view(spec, view, pattern).is_empty() {
        0
    } else {
        execs.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppwf_model::fixtures;
    use ppwf_model::hierarchy::{ExpansionHierarchy, Prefix};

    fn setup() -> (Specification, ExpansionHierarchy, SpecView) {
        let (spec, _) = fixtures::disease_susceptibility();
        let h = ExpansionHierarchy::of(&spec);
        let view = SpecView::build(&spec, &h, &Prefix::full(&h)).unwrap();
        (spec, h, view)
    }

    /// The paper's example: "Expand SNP Set executed before Query OMIM".
    #[test]
    fn paper_structural_query() {
        let (spec, _h, view) = setup();
        let m = fixtures::handles(&spec);
        let pattern = Pattern::before(
            NodeMatcher::Phrase("expand snp set".into()),
            NodeMatcher::Phrase("query omim".into()),
        );
        let matches = match_view(&spec, &view, &pattern);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0], vec![m.m3, m.m6]);
    }

    #[test]
    fn provenance_of_the_latter() {
        let (spec, h, view) = setup();
        let m = fixtures::handles(&spec);
        let exec = fixtures::disease_susceptibility_execution(&spec);
        let pattern = Pattern::before(
            NodeMatcher::Phrase("expand snp set".into()),
            NodeMatcher::Phrase("query omim".into()),
        );
        let results = match_and_provenance(&spec, &view, &exec, &pattern, 1);
        assert_eq!(results.len(), 1);
        let (binding, provs) = &results[0];
        assert_eq!(binding[1], m.m6);
        // M6 produces exactly d8; its provenance includes d5, d6 and the
        // inputs, but not M7's branch.
        assert_eq!(provs.len(), 1);
        let p = &provs[0];
        assert!(p.contains_data(DataId::new(8)));
        assert!(p.contains_data(DataId::new(6)));
        assert!(p.contains_data(DataId::new(5)));
        assert!(!p.contains_data(DataId::new(7)), "M7's query is not upstream of M6");
        let _ = h;
    }

    #[test]
    fn direct_vs_transitive_edges() {
        let (spec, _h, view) = setup();
        let m = fixtures::handles(&spec);
        // Direct: M5 → M6 is an edge; M3 → M6 is not.
        let direct = Pattern {
            nodes: vec![NodeMatcher::Code("M5".into()), NodeMatcher::Code("M6".into())],
            edges: vec![PatternEdge { from: 0, to: 1, transitive: false }],
        };
        assert_eq!(match_view(&spec, &view, &direct).len(), 1);
        let not_direct = Pattern {
            nodes: vec![NodeMatcher::Code("M3".into()), NodeMatcher::Code("M6".into())],
            edges: vec![PatternEdge { from: 0, to: 1, transitive: false }],
        };
        assert!(match_view(&spec, &view, &not_direct).is_empty());
        let transitive =
            Pattern::before(NodeMatcher::Code("M3".into()), NodeMatcher::Code("M6".into()));
        assert_eq!(match_view(&spec, &view, &transitive).len(), 1);
        let _ = m;
    }

    #[test]
    fn view_granularity_shapes_answers() {
        // At the root-only view, M3/M6 are invisible: the paper's query has
        // no match — privacy-controlled semantics in action.
        let (spec, h, _full) = setup();
        let coarse = SpecView::build(&spec, &h, &Prefix::root_only(&h)).unwrap();
        let pattern = Pattern::before(
            NodeMatcher::Phrase("expand snp set".into()),
            NodeMatcher::Phrase("query omim".into()),
        );
        assert!(match_view(&spec, &coarse, &pattern).is_empty());
        // But a top-level pattern still matches.
        let top = Pattern::before(
            NodeMatcher::Phrase("genetic susceptibility".into()),
            NodeMatcher::Phrase("disorder risk".into()),
        );
        assert_eq!(match_view(&spec, &coarse, &top).len(), 1);
    }

    #[test]
    fn wildcard_and_injectivity() {
        let (spec, _h, view) = setup();
        // Any → Any with a transitive edge: counts ordered reachable pairs
        // of distinct visible modules.
        let pattern = Pattern::before(NodeMatcher::Any, NodeMatcher::Any);
        let matches = match_view(&spec, &view, &pattern);
        assert!(!matches.is_empty());
        assert!(matches.iter().all(|b| b[0] != b[1]), "bindings are injective");
        // Count equals the reachability among visible modules:
        let m = fixtures::handles(&spec);
        assert!(matches.contains(&vec![m.m3, m.m6]));
        assert!(!matches.contains(&vec![m.m10, m.m14]), "Sec. 3's non-fact");
    }

    #[test]
    fn multi_edge_patterns() {
        let (spec, _h, view) = setup();
        let m = fixtures::handles(&spec);
        // Fan: M5 → M6 and M5 → M7 (both direct).
        let fan = Pattern {
            nodes: vec![
                NodeMatcher::Code("M5".into()),
                NodeMatcher::Code("M6".into()),
                NodeMatcher::Code("M7".into()),
            ],
            edges: vec![
                PatternEdge { from: 0, to: 1, transitive: false },
                PatternEdge { from: 0, to: 2, transitive: false },
            ],
        };
        let matches = match_view(&spec, &view, &fan);
        assert_eq!(matches, vec![vec![m.m5, m.m6, m.m7]]);
    }

    #[test]
    fn counting_executions() {
        let (spec, _h, view) = setup();
        let exec = fixtures::disease_susceptibility_execution(&spec);
        let execs = vec![exec.clone(), exec.clone(), exec];
        let hit = Pattern::before(NodeMatcher::Code("M3".into()), NodeMatcher::Code("M6".into()));
        assert_eq!(count_matching_executions(&spec, &view, &execs, &hit), 3);
        let miss =
            Pattern::before(NodeMatcher::Code("M10".into()), NodeMatcher::Code("M14".into()));
        assert_eq!(count_matching_executions(&spec, &view, &execs, &miss), 0);
        assert_eq!(count_matching_executions(&spec, &view, &[], &hit), 0);
    }
}
