//! Provenance queries under privacy: lineage and impact computed **through
//! a disclosure**, so the answer never mentions what the principal cannot
//! see.
//!
//! The paper's Sec. 1 motivates provenance queries ("what downstream data
//! might have been affected", "how the process failed that led to creating
//! the data") and Sec. 4 demands privacy-controlled semantics for them.
//! The rule implemented here mirrors the view semantics everywhere else:
//!
//! * the query runs on the **collapsed** execution view (the disclosure's
//!   [`ExecView`]), so paths through hidden subworkflows appear as single
//!   composite steps (`S1:M1`) rather than their internals,
//! * only **visible** data items can be asked about or returned (asking
//!   about a hidden item is an error, not an empty answer — an empty
//!   answer would itself leak that the item exists but is protected),
//! * values come from the disclosure's masked execution, so sensitive
//!   channels surface as [`Masked`](ppwf_model::value::Value::Masked).

use ppwf_core::enforce::Disclosure;
use ppwf_model::bitset::BitSet;
use ppwf_model::ids::DataId;
use ppwf_model::{ModelError, Result};
use ppwf_views::exec_view::ExecView;

/// A provenance (or impact) answer over a disclosed execution view.
#[derive(Clone, Debug)]
pub struct PrivateProvenance {
    /// The focus item.
    pub focus: DataId,
    /// View-graph node indices on the answer subgraph.
    pub nodes: Vec<u32>,
    /// Visible data items on the answer subgraph (ascending).
    pub data: Vec<DataId>,
}

fn producer_node(view: &ExecView, d: DataId) -> Option<u32> {
    // The earliest view node emitting d: scan edges for the first carrying
    // d and take its source (view edges store merged data).
    let mut candidate: Option<u32> = None;
    for (_, e) in view.graph().edges() {
        if e.payload.data.contains(&d) {
            let from = e.from;
            // Prefer the topologically earliest source.
            candidate = match candidate {
                None => Some(from),
                Some(c) => {
                    if view.graph().reaches(from, c) {
                        Some(from)
                    } else {
                        Some(c)
                    }
                }
            };
        }
    }
    candidate
}

/// Lineage of `d` through a disclosure: the view nodes and visible items on
/// paths from the view's input to `d`'s (visible) producer.
pub fn private_provenance(disclosure: &Disclosure, d: DataId) -> Result<PrivateProvenance> {
    let view = &disclosure.view;
    if !view.visible_data().contains(&d) {
        return Err(ModelError::invalid(format!(
            "data item {d} is not visible in this disclosure"
        )));
    }
    let producer = producer_node(view, d)
        .ok_or_else(|| ModelError::invalid(format!("no visible producer for {d}")))?;
    let g = view.graph();
    let mut on_path = g.reaching_to(producer);
    on_path.intersect_with(&g.reachable_from(view.input()));
    collect(view, on_path, d, producer)
}

/// Downstream impact of `d` through a disclosure (item-level propagation on
/// the view graph).
pub fn private_impact(disclosure: &Disclosure, d: DataId) -> Result<PrivateProvenance> {
    let view = &disclosure.view;
    if !view.visible_data().contains(&d) {
        return Err(ModelError::invalid(format!(
            "data item {d} is not visible in this disclosure"
        )));
    }
    let g = view.graph();
    let order = g.topo_order().expect("views are DAGs");
    let max_item = disclosure.execution.data_count();
    let mut affected = BitSet::new(max_item);
    affected.insert(d.index());
    let mut nodes = BitSet::new(g.node_count());
    if let Some(p) = producer_node(view, d) {
        nodes.insert(p as usize);
    }
    for &u in &order {
        let incoming = g
            .in_edges(u)
            .iter()
            .any(|&e| g.edge(e).payload.data.iter().any(|x| affected.contains(x.index())));
        if incoming {
            nodes.insert(u as usize);
            // Whether this node *derives* new items from its inputs.
            // Kept atomic executions do; kept begin/end pass-throughs only
            // forward identities (their out-edges are covered by the
            // incoming check downstream); collapsed composites hide their
            // internals, so everything they emit is conservatively tainted.
            let derives = match g.node(u) {
                ppwf_views::exec_view::ExecViewNode::Kept(orig) => {
                    disclosure.execution.graph().node(orig.index() as u32).kind.is_producer()
                }
                ppwf_views::exec_view::ExecViewNode::Collapsed(..) => true,
                _ => false,
            };
            if derives {
                for &e in g.out_edges(u) {
                    for &x in &g.edge(e).payload.data {
                        affected.insert(x.index());
                    }
                }
            }
        }
    }
    let mut node_list: Vec<u32> = nodes.iter().map(|n| n as u32).collect();
    node_list.sort_unstable();
    let mut data: Vec<DataId> = affected
        .iter()
        .map(DataId::new)
        .filter(|x| disclosure.view.visible_data().contains(x))
        .collect();
    data.sort();
    Ok(PrivateProvenance { focus: d, nodes: node_list, data })
}

fn collect(
    view: &ExecView,
    on_path: BitSet,
    focus: DataId,
    _producer: u32,
) -> Result<PrivateProvenance> {
    let g = view.graph();
    let mut nodes: Vec<u32> = on_path.iter().map(|n| n as u32).collect();
    nodes.sort_unstable();
    let mut data = vec![focus];
    for (_, e) in g.edges() {
        if on_path.contains(e.from as usize) && on_path.contains(e.to as usize) {
            data.extend(e.payload.data.iter().copied());
        }
    }
    data.sort();
    data.dedup();
    Ok(PrivateProvenance { focus, nodes, data })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppwf_core::enforce::disclose;
    use ppwf_core::policy::{AccessLevel, Policy, Principal};
    use ppwf_model::fixtures;
    use ppwf_model::hierarchy::{ExpansionHierarchy, Prefix};
    use ppwf_model::value::Value;

    fn disclosure(level: u8, full_view: bool) -> Disclosure {
        let (spec, m) = fixtures::disease_susceptibility();
        let h = ExpansionHierarchy::of(&spec);
        let exec = fixtures::disease_susceptibility_execution(&spec);
        let mut policy = Policy::public();
        policy.protect_channel("disorders", AccessLevel(2));
        let _ = m;
        let view = if full_view { Prefix::full(&h) } else { Prefix::root_only(&h) };
        let p = Principal::new("t", AccessLevel(level), view);
        disclose(&spec, &h, &exec, &policy, &p).unwrap()
    }

    #[test]
    fn coarse_lineage_of_final_output() {
        // Root-only view: provenance of d19 = the whole 4-node view with
        // the boundary items only.
        let d = disclosure(0, false);
        let prov = private_provenance(&d, DataId::new(19)).unwrap();
        // Lineage stops at d19's producer (S8:M2): I, S1:M1, S8:M2.
        assert_eq!(prov.nodes.len(), 3);
        let items: Vec<usize> = prov.data.iter().map(|x| x.index()).collect();
        assert_eq!(items, vec![0, 1, 2, 3, 4, 10, 19]);
    }

    #[test]
    fn hidden_items_are_unaskable() {
        let d = disclosure(0, false);
        // d13 (M12's result) is inside the collapsed S8:M2.
        let err = private_provenance(&d, DataId::new(13)).unwrap_err();
        assert!(err.to_string().contains("not visible"));
        assert!(private_impact(&d, DataId::new(13)).is_err());
    }

    #[test]
    fn masked_values_stay_masked_in_answers() {
        // Level 0 with full view: d10 ("disorders") is visible as an item
        // but its value is masked.
        let d = disclosure(0, true);
        let prov = private_provenance(&d, DataId::new(19)).unwrap();
        assert!(prov.data.contains(&DataId::new(10)));
        assert_eq!(d.execution.data(DataId::new(10)).value, Value::Masked);
    }

    #[test]
    fn full_view_lineage_matches_unprivate_provenance() {
        // With full access, private provenance sees the same item set as
        // the raw provenance query.
        let d = disclosure(5, true);
        let prov = private_provenance(&d, DataId::new(19)).unwrap();
        let raw = ppwf_model::provenance::provenance_of(&d.execution, DataId::new(19));
        assert_eq!(prov.data, raw.data);
    }

    #[test]
    fn coarse_impact_of_input() {
        // Impact of d0 (SNPs) at root-only view: flows into S1:M1, then
        // everything downstream of it.
        let d = disclosure(0, false);
        let imp = private_impact(&d, DataId::new(0)).unwrap();
        // d0 → S1:M1 → d10 → S8:M2 → d19 → O.
        let items: Vec<usize> = imp.data.iter().map(|x| x.index()).collect();
        assert_eq!(items, vec![0, 10, 19]);
        assert!(imp.nodes.len() >= 3);
    }

    #[test]
    fn impact_does_not_cross_independent_branches() {
        // d2 (lifestyle) at full view: reaches M9's outputs and onward but
        // never the W2/W4 side (M3, M5..M8 outputs d5..d10).
        let d = disclosure(5, true);
        let imp = private_impact(&d, DataId::new(2)).unwrap();
        for i in [5usize, 6, 7, 8, 9, 10] {
            assert!(
                !imp.data.contains(&DataId::new(i)),
                "d{i} is upstream/parallel, not impacted by d2"
            );
        }
        assert!(imp.data.contains(&DataId::new(19)));
    }
}
