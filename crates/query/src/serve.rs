//! The asynchronous serving front: many in-flight cluster queries
//! multiplexed on a small fixed worker pool.
//!
//! [`EngineCluster`]'s entry points are *blocking*: one OS thread submits
//! one query and cannot do anything else until the scatter/gather
//! finishes, so a serving tier holds at most one query in flight per
//! thread. The [`ServeFront`] inverts that: [`ServeFront::submit`] accepts
//! a typed [`ServeRequest`], returns a [`Ticket`] immediately, and the
//! query executes as **independent per-shard pool jobs** — not one
//! blocking job per query — whose last finisher runs the gather stage and
//! completes the ticket. A single submitting thread can therefore keep
//! dozens of queries in flight over a 2-thread pool, and the pool's queue,
//! not a thread-per-request stack, is the concurrency ceiling.
//!
//! **Write/read ordering (the version fence).** Interleaving mutations
//! with multiplexed reads is where privacy bugs live: a response assembled
//! from shard answers at two different repository versions could stitch a
//! pre-policy-swap shard view onto a post-swap one — a leak, not just a
//! wrong answer. The front therefore runs a FIFO admission queue with a
//! read/write fence:
//!
//! * reads admit **concurrently** (each bumps the in-flight reader count
//!   before its shard jobs are spawned);
//! * a mutation at the head of the queue **drains**: it waits until every
//!   admitted read has completed, then runs exclusively (behind the
//!   cluster's write lock), then reopens admission.
//!
//! Consequently an admitted read's version-vector epoch cannot move while
//! the read is in flight — every response is computed entirely at one
//! epoch the fence admitted, and is bit-identical to the blocking cluster
//! serving the same request at that version (`gather_*` stages are
//! *shared code*, not parallel implementations). Warm requests sidestep
//! all of it: a front-cache hit completes inline on the submitting thread
//! ([`Ticket::ready`]) without touching the queue — serving the current
//! epoch's merged answer, which corresponds to ordering the read before
//! any still-queued mutation (an admissible sequential cut, since those
//! mutations have not been applied yet).
//!
//! [`ServeStats`] surfaces the serving health an operator watches: the
//! in-flight high-water mark (how much multiplexing actually happened),
//! admission-queue depth, fence waits, and completion-latency buckets.
//!
//! **Durability.** When the underlying cluster has a
//! [`DurableLog`](ppwf_repo::wal::DurableLog) attached
//! ([`EngineCluster::attach_durability`]), the fenced write path is
//! durable for free: a mutation runs exclusively behind the cluster's
//! write lock, where [`EngineCluster::mutate`] validates, appends (and
//! per policy fsyncs) the record *before* applying it. A
//! [`QueryAnswer::Mutated`] carrying `Ok` therefore acknowledges a
//! *durable* write, and because the fence serializes mutations FIFO, the
//! acknowledged set after a crash is always a prefix of the submitted
//! mutation order — exactly what [`ppwf_repo::Repository::recover`]
//! rebuilds. An `Err` answer (validation or log failure) acknowledges
//! nothing and changes nothing.
//!
//! **Group commit.** When the log's policy carries a
//! [`GroupCommit`](ppwf_repo::wal::GroupCommit) mode, the fence drains in
//! *batches*: the pump pops the whole consecutive run of mutations at the
//! head of the queue (never past a queued read — FIFO is preserved), the
//! write job may hold the batch open up to `max_delay_us` and re-drain
//! late arrivals, and [`EngineCluster::mutate_batch`] validates each
//! record individually, appends valid runs as single WAL records (one
//! fsync per run) and applies them in sequence order. Every ticket in the
//! batch completes only after the fsync covering its record returned,
//! with its own per-record epoch — durable-on-acknowledge, amortized, and
//! bit-identical to dispatching the mutations one at a time. Warm inline
//! completions also recycle their ticket allocations through a
//! [`TicketPool`], so a front-cache hit allocates nothing on the hot
//! path.
//!
//! **Pipelined commit.** When the log's policy additionally sets
//! [`pipelined_commit`](ppwf_repo::wal::DurabilityPolicy::pipelined_commit),
//! the write job appends and applies its batch, then **releases the
//! write fence before the covering fsync finishes**: the fsync runs as a
//! dedicated pool sync job, and batch *k+1* is admitted, validated and
//! applied while batch *k*'s fsync is still in flight. Acknowledgement
//! order is unchanged — every ticket completes only after the fsync
//! covering its record reports in (a [`CommitGate`] holds the staged
//! outcomes until the per-run durability callbacks fire), so
//! `Mutated(Ok)` still means *durable*, and the acknowledged set after a
//! crash is still a prefix of submission order. The honest boundary:
//! reads admitted in the overlap window can observe applied-but-not-yet-
//! acknowledged state (a read-uncommitted window for *losable* suffix
//! data — never for anything a client was told succeeded), and a crash
//! in the window loses only unacknowledged frames, which recovery
//! truncates at the tear exactly like any unsynced suffix.

use crate::cluster::{EngineCluster, RankedHits};
use crate::engine::Plan;
use crate::keyword::{KeywordHit, KeywordQuery};
use crate::privacy_exec::PrivateSearchOutcome;
use crate::ranking::RankingMode;
use parking_lot::RwLock;
use ppwf_model::{ModelError, Result};
use ppwf_repo::mutation::{Mutation, MutationEffect};
use ppwf_repo::pool::WorkerPool;
use ppwf_repo::ticket::{Ticket, TicketCompleter, TicketPool};
use ppwf_repo::wal::{DurableCallback, GroupCommit, WalResult};
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A typed serving request — the front's whole vocabulary. Queries carry
/// the user group (privacy is per-group, never per-connection), mutations
/// the same typed [`Mutation`]s the blocking write path consumes.
#[derive(Clone, Debug)]
pub enum ServeRequest {
    /// Privilege-filtered keyword search.
    Keyword {
        /// Requesting user group.
        group: String,
        /// Query text (comma-separated terms).
        query: String,
    },
    /// Privacy-preserving search under an explicit plan.
    Private {
        /// Requesting user group.
        group: String,
        /// Query text.
        query: String,
        /// Evaluation plan.
        plan: Plan,
    },
    /// Ranked keyword search.
    Ranked {
        /// Requesting user group.
        group: String,
        /// Query text.
        query: String,
        /// Ranking mode.
        mode: RankingMode,
    },
    /// A typed repository mutation, fenced against in-flight reads.
    /// Boxed: mutations carry whole specifications, and the request enum
    /// travels through queues by value.
    Mutate(Box<Mutation>),
}

impl ServeRequest {
    /// Convenience constructor for a fenced mutation request.
    pub fn mutate(mutation: Mutation) -> ServeRequest {
        ServeRequest::Mutate(Box::new(mutation))
    }

    fn is_write(&self) -> bool {
        matches!(self, ServeRequest::Mutate(_))
    }
}

/// A completed answer. Query variants are `None` for unknown groups,
/// mirroring the blocking entry points.
#[derive(Debug)]
pub enum QueryAnswer {
    /// Answer to [`ServeRequest::Keyword`].
    Keyword(Option<Arc<Vec<KeywordHit>>>),
    /// Answer to [`ServeRequest::Private`].
    Private(Option<Arc<PrivateSearchOutcome>>),
    /// Answer to [`ServeRequest::Ranked`].
    Ranked(Option<Arc<RankedHits>>),
    /// Outcome of [`ServeRequest::Mutate`].
    Mutated(Result<MutationEffect>),
}

/// A response: the answer plus the version-vector epoch it was computed
/// at — single-valued for the whole response, by the fence. Tests replay
/// the request log sequentially and check each response bit-identical to
/// the reference state at exactly this epoch.
#[derive(Debug)]
pub struct ServeResponse {
    /// The cluster epoch ([`EngineCluster`] version-vector sum) the answer
    /// was computed at; for mutations, the epoch after application.
    pub epoch: u64,
    /// The typed answer.
    pub answer: QueryAnswer,
}

/// Upper bounds (µs, inclusive) of the completion-latency buckets in
/// [`ServeStats::latency_counts`]; the last bucket is unbounded.
pub const LATENCY_BOUNDS_US: [u64; 7] = [4, 16, 64, 256, 1024, 4096, 16384];

/// Point-in-time serving counters. Monotone except `queue_depth` (a
/// gauge).
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Requests accepted by [`ServeFront::submit`].
    pub submitted: u64,
    /// Responses completed (inline or via the queue).
    pub completed: u64,
    /// Warm front-cache hits completed inline — these never touched the
    /// admission queue or the pool.
    pub warm_inline: u64,
    /// Mutations applied.
    pub mutations: u64,
    /// Fenced write dispatches (each runs one batch of ≥ 1 mutations);
    /// `mutations / write_batches` is the realized amortization factor.
    pub write_batches: u64,
    /// Largest mutation batch one dispatch ran.
    pub max_write_batch: u64,
    /// Warm inline completions served from a recycled ticket allocation
    /// (see [`TicketPool`]).
    pub warm_ticket_reuses: u64,
    /// Pump passes that found a mutation at the head of the queue still
    /// fenced behind in-flight reads.
    pub fence_waits: u64,
    /// High-water mark of concurrently in-flight admitted requests
    /// (reads in flight plus an active writer) — the multiplexing
    /// instrument: blocking per-thread serving pins this at the thread
    /// count, the async front takes it to the admission window.
    pub in_flight_high_water: u64,
    /// Current admission-queue depth (requests accepted, not yet
    /// admitted past the fence).
    pub queue_depth: u64,
    /// High-water mark of the admission queue.
    pub queue_high_water: u64,
    /// Completion-latency histogram; bucket `i` counts responses with
    /// submit→complete latency ≤ [`LATENCY_BOUNDS_US`]`[i]` µs (last
    /// bucket: everything slower).
    pub latency_counts: [u64; LATENCY_BOUNDS_US.len() + 1],
    /// Durability counters of the underlying cluster (batch-size
    /// histogram, fsyncs saved, snapshot pause timings …), when a log is
    /// attached *and* the cluster read lock was free at the moment
    /// [`ServeFront::stats`] probed it; always populated once the front
    /// has quiesced.
    pub durability: Option<ppwf_repo::wal::DurabilityStats>,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    warm_inline: AtomicU64,
    mutations: AtomicU64,
    /// Mutations submitted but not yet completed — the group-commit
    /// sibling test: a batch is held open for `max_delay_us` only while
    /// more writes than it already holds are in flight somewhere (queued
    /// or about to queue), so a lone writer never pays the delay.
    writes_in_flight: AtomicU64,
    write_batches: AtomicU64,
    max_write_batch: AtomicU64,
    fence_waits: AtomicU64,
    in_flight_high_water: AtomicU64,
    queue_high_water: AtomicU64,
    latency: [AtomicU64; LATENCY_BOUNDS_US.len() + 1],
}

impl Counters {
    fn record_latency(&self, started: Instant) {
        let us = started.elapsed().as_micros() as u64;
        let bucket = LATENCY_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    fn raise_high_water(slot: &AtomicU64, observed: u64) {
        slot.fetch_max(observed, Ordering::Relaxed);
    }
}

/// One accepted request waiting behind the fence.
struct Queued {
    req: ServeRequest,
    completer: TicketCompleter<ServeResponse>,
    submitted: Instant,
}

/// Admission state, guarded by one mutex: the FIFO queue plus the fence's
/// two counters. Held only for queue surgery — never across query work.
struct Admission {
    queue: VecDeque<Queued>,
    readers_in_flight: usize,
    writer_active: bool,
}

/// Slots the warm-ticket slab retains; sized past any realistic number of
/// simultaneously live warm tickets so steady-state warm serving reuses.
const WARM_TICKET_SLOTS: usize = 64;

struct Shared {
    cluster: RwLock<EngineCluster>,
    pool: Arc<WorkerPool>,
    admission: Mutex<Admission>,
    counters: Counters,
    /// The attached log's group-commit knobs, cached at construction (the
    /// policy is immutable for a log's lifetime): `Some` lets the pump
    /// and the write job drain consecutive mutations into one batch,
    /// `None` keeps the one-at-a-time dispatch.
    write_batch: Option<GroupCommit>,
    /// Pipelined commit, cached like `write_batch`: the write job then
    /// releases the fence before its covering fsync and completes tickets
    /// from the sync job's durability callbacks.
    pipelined: bool,
    /// Recycled allocations for warm inline completions.
    warm_tickets: TicketPool<ServeResponse>,
}

/// The asynchronous serving front. See the module docs.
pub struct ServeFront {
    shared: Arc<Shared>,
}

impl ServeFront {
    /// Serve `cluster` on its own worker pool.
    pub fn new(cluster: EngineCluster) -> Self {
        let pool = cluster.pool_handle();
        Self::with_pool(cluster, pool)
    }

    /// Serve `cluster`, running shard tasks and mutations on `pool`
    /// (normally the same pool the cluster's blocking scatter uses, so
    /// all work drains one queue).
    pub fn with_pool(cluster: EngineCluster, pool: Arc<WorkerPool>) -> Self {
        let write_batch = cluster.group_commit_policy();
        let pipelined = cluster.pipelined_commit_policy();
        ServeFront {
            shared: Arc::new(Shared {
                cluster: RwLock::new(cluster),
                pool,
                admission: Mutex::new(Admission {
                    queue: VecDeque::new(),
                    readers_in_flight: 0,
                    writer_active: false,
                }),
                counters: Counters::default(),
                write_batch,
                pipelined,
                warm_tickets: TicketPool::new(WARM_TICKET_SLOTS),
            }),
        }
    }

    /// Accept a request. Never blocks on query work: warm front-cache
    /// hits complete inline (no queue, no pool), everything else is
    /// admission-queued and executed as pool jobs. The ticket resolves
    /// whenever the response is ready; dropping it un-awaited is fine.
    pub fn submit(&self, req: ServeRequest) -> Ticket<ServeResponse> {
        let shared = &self.shared;
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        if req.is_write() {
            shared.counters.writes_in_flight.fetch_add(1, Ordering::Relaxed);
        }
        let submitted = Instant::now();
        if !req.is_write() {
            // Warm path: probe the cluster front without blocking. If a
            // writer holds (or waits on) the cluster lock, `try_read`
            // fails and the request queues behind the mutation instead —
            // exactly the FIFO ordering the fence wants.
            if let Some(cluster) = shared.cluster.try_read() {
                if let Some(answer) = probe_front(&cluster, &req) {
                    let epoch = cluster.front_epoch();
                    drop(cluster);
                    shared.counters.warm_inline.fetch_add(1, Ordering::Relaxed);
                    shared.counters.record_latency(submitted);
                    return shared.warm_tickets.ready(ServeResponse { epoch, answer });
                }
            }
        }
        let (ticket, completer) = Ticket::pending(Some(Arc::clone(&shared.pool)));
        {
            let mut admission = shared.admission.lock().expect("admission");
            admission.queue.push_back(Queued { req, completer, submitted });
            Counters::raise_high_water(
                &shared.counters.queue_high_water,
                admission.queue.len() as u64,
            );
        }
        pump(shared);
        ticket
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.counters;
        let queue_depth = self.shared.admission.lock().expect("admission").queue.len() as u64;
        let mut latency_counts = [0u64; LATENCY_BOUNDS_US.len() + 1];
        for (out, counter) in latency_counts.iter_mut().zip(&c.latency) {
            *out = counter.load(Ordering::Relaxed);
        }
        ServeStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            warm_inline: c.warm_inline.load(Ordering::Relaxed),
            mutations: c.mutations.load(Ordering::Relaxed),
            write_batches: c.write_batches.load(Ordering::Relaxed),
            max_write_batch: c.max_write_batch.load(Ordering::Relaxed),
            warm_ticket_reuses: self.shared.warm_tickets.reused(),
            fence_waits: c.fence_waits.load(Ordering::Relaxed),
            in_flight_high_water: c.in_flight_high_water.load(Ordering::Relaxed),
            queue_depth,
            queue_high_water: c.queue_high_water.load(Ordering::Relaxed),
            latency_counts,
            durability: self
                .shared
                .cluster
                .try_read()
                .and_then(|cluster| cluster.durability_stats()),
        }
    }

    /// Run `f` against the cluster under the read lock — the inspection
    /// hatch tests and stats use (e.g. [`EngineCluster::stats`],
    /// [`EngineCluster::version_vector`]). Do not call from inside a pool
    /// job while a mutation might be queued: the read lock can then wait
    /// on the writer.
    pub fn with_cluster<R>(&self, f: impl FnOnce(&EngineCluster) -> R) -> R {
        f(&self.shared.cluster.read())
    }

    /// Durability counters of the underlying cluster, when a log is
    /// attached (`None` otherwise). Takes the cluster read lock — same
    /// caveat as [`Self::with_cluster`].
    pub fn durability_stats(&self) -> Option<ppwf_repo::wal::DurabilityStats> {
        self.shared.cluster.read().durability_stats()
    }

    /// Block until every accepted request has completed, helping the pool
    /// while waiting. Intended for test/bench teardown; normal operation
    /// never needs a barrier.
    pub fn quiesce(&self) {
        loop {
            {
                let c = &self.shared.counters;
                let admission = self.shared.admission.lock().expect("admission");
                if admission.queue.is_empty()
                    && admission.readers_in_flight == 0
                    && !admission.writer_active
                    && c.completed.load(Ordering::Relaxed) == c.submitted.load(Ordering::Relaxed)
                {
                    return;
                }
            }
            if !self.shared.pool.help_one() {
                std::thread::yield_now();
            }
        }
    }
}

/// Probe the cluster-front caches for `req` at the current epoch. A hit
/// is the fully merged answer — one hash probe plus an `Arc` clone.
fn probe_front(cluster: &EngineCluster, req: &ServeRequest) -> Option<QueryAnswer> {
    let epoch = cluster.front_epoch();
    match req {
        ServeRequest::Keyword { group, query } => cluster
            .front_keyword_cache()
            .get(group, query, epoch)
            .map(|hit| QueryAnswer::Keyword(Some(hit))),
        ServeRequest::Private { group, query, plan } => cluster
            .front_private_cache(*plan)
            .get(group, query, epoch)
            .map(|hit| QueryAnswer::Private(Some(hit))),
        ServeRequest::Ranked { group, query, mode } => cluster
            .front_ranked_cache(*mode)
            .get(group, query, epoch)
            .map(|hit| QueryAnswer::Ranked(Some(hit))),
        ServeRequest::Mutate(_) => None,
    }
}

/// Admit as much of the queue as the fence allows. Runs after every
/// submit and every completion, on whichever thread got there — the
/// admission lock makes pumps mutually exclusive per decision, and the
/// loop re-checks after each dispatch so no admissible request is left
/// waiting for the next event.
fn pump(shared: &Arc<Shared>) {
    loop {
        let queued = {
            let mut admission = shared.admission.lock().expect("admission");
            if admission.writer_active {
                return;
            }
            let Some(head) = admission.queue.front() else { return };
            if head.req.is_write() {
                if admission.readers_in_flight > 0 {
                    // The fence: the mutation waits for in-flight reads
                    // to drain; the last completion re-pumps.
                    shared.counters.fence_waits.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                admission.writer_active = true;
                // Batched admission draining: the whole consecutive run
                // of mutations at the head goes to one dispatch, capped
                // by the policy's max_batch (1 without group commit).
                // The drain never reaches past the first queued read, so
                // FIFO order — and the fence semantics — are untouched.
                let max_batch = shared.write_batch.map_or(1, |g| g.max_batch.max(1));
                let mut batch = vec![admission.queue.pop_front().expect("head exists")];
                while batch.len() < max_batch
                    && admission.queue.front().is_some_and(|next| next.req.is_write())
                {
                    batch.push(admission.queue.pop_front().expect("peeked write"));
                }
                Counters::raise_high_water(
                    &shared.counters.in_flight_high_water,
                    batch.len() as u64,
                );
                drop(admission);
                // Nothing admits past an active writer; its completion
                // job clears the flag and re-pumps.
                dispatch_write(shared, batch);
                return;
            }
            admission.readers_in_flight += 1;
            let in_flight = admission.readers_in_flight as u64;
            Counters::raise_high_water(&shared.counters.in_flight_high_water, in_flight);
            admission.queue.pop_front().expect("head exists")
        };
        // A read that completed without fanning out (warm, unknown group,
        // fully pruned) releases its fence slot here, in the loop — never
        // by recursing into pump — so a long run of inline-completable
        // reads costs constant stack.
        if dispatch_read(shared, queued) {
            shared.admission.lock().expect("admission").readers_in_flight -= 1;
        }
    }
}

/// Run a batch of fenced mutations as one exclusive pool job: every
/// admitted read has drained, so the write lock is uncontended (modulo
/// inline warm probes, which never block — `try_read` yields to a
/// waiting writer). With group commit configured, the job may hold the
/// batch open for `max_delay_us` and then top it up with mutations that
/// queued behind the fence meanwhile (safe: `writer_active` keeps the
/// pump off the queue, and the top-up stops at the first queued read, so
/// FIFO order holds). [`EngineCluster::mutate_batch`] then appends valid
/// runs as single WAL records — every ticket completes only after the
/// fsync covering its record returned, with its own per-record epoch.
fn dispatch_write(shared: &Arc<Shared>, batch: Vec<Queued>) {
    let pool = Arc::clone(&shared.pool);
    let shared = Arc::clone(shared);
    pool.exec(move || {
        let mut batch = batch;
        if let Some(group) = shared.write_batch {
            if group.max_delay_us > 0
                && batch.len() < group.max_batch
                && shared.counters.writes_in_flight.load(Ordering::Relaxed) > batch.len() as u64
            {
                // The documented latency cost of group commit: the first
                // record waits up to max_delay for peers to share its
                // fsync — but only when such peers exist (more writes in
                // flight than the batch holds); a lone writer's batch
                // goes straight to the fsync.
                std::thread::sleep(std::time::Duration::from_micros(group.max_delay_us));
            }
            let mut admission = shared.admission.lock().expect("admission");
            while batch.len() < group.max_batch.max(1)
                && admission.queue.front().is_some_and(|next| next.req.is_write())
            {
                batch.push(admission.queue.pop_front().expect("peeked write"));
            }
        }
        let mut mutations = Vec::with_capacity(batch.len());
        let mut handles = Vec::with_capacity(batch.len());
        for queued in batch {
            let Queued { req, completer, submitted } = queued;
            let ServeRequest::Mutate(mutation) = req else {
                unreachable!("write dispatch requires Mutate")
            };
            mutations.push(*mutation);
            handles.push((completer, submitted));
        }
        if shared.pipelined {
            run_pipelined_write(&shared, mutations, handles);
            return;
        }
        let count = handles.len() as u64;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut cluster = shared.cluster.write();
            let outcomes = cluster.mutate_batch(mutations);
            drop(cluster);
            outcomes
        }));
        match outcome {
            Ok(outcomes) => {
                debug_assert_eq!(outcomes.len() as u64, count);
                shared.counters.mutations.fetch_add(count, Ordering::Relaxed);
                shared.counters.write_batches.fetch_add(1, Ordering::Relaxed);
                Counters::raise_high_water(&shared.counters.max_write_batch, count);
                for ((result, epoch), (completer, submitted)) in outcomes.into_iter().zip(handles) {
                    // Count before completing: once a ticket resolves,
                    // its owner may read stats, and quiesce() keys on
                    // completed == submitted.
                    shared.counters.writes_in_flight.fetch_sub(1, Ordering::Relaxed);
                    shared.counters.record_latency(submitted);
                    completer
                        .complete(ServeResponse { epoch, answer: QueryAnswer::Mutated(result) });
                }
            }
            Err(payload) => {
                // A panicked batch still completes every ticket — the
                // counter parity (and so quiesce()) must not wedge on it.
                // The payload is not clonable: the first ticket re-throws
                // the real payload, peers a marker naming the shared
                // cause.
                let mut payload = Some(payload);
                for (completer, submitted) in handles {
                    shared.counters.writes_in_flight.fetch_sub(1, Ordering::Relaxed);
                    shared.counters.record_latency(submitted);
                    match payload.take() {
                        Some(p) => completer.complete_with_panic(p),
                        None => completer.complete_with_panic(Box::new(
                            "a mutation batched with this one panicked the write job",
                        )),
                    }
                }
            }
        }
        shared.admission.lock().expect("admission").writer_active = false;
        pump(&shared);
    });
}

/// The pipelined write path: append + apply the batch under the write
/// lock, then release the fence and re-pump **before** the covering
/// fsync reports — batch *k+1* admits and applies while batch *k*'s
/// fsync runs on the sync job. Tickets stay parked in a [`CommitGate`]
/// until every durability callback minted for the batch has fired, so
/// acknowledgement order (and `Mutated(Ok)` ⇒ durable) is exactly the
/// synchronous path's.
fn run_pipelined_write(
    shared: &Arc<Shared>,
    mutations: Vec<Mutation>,
    handles: Vec<(TicketCompleter<ServeResponse>, Instant)>,
) {
    let count = handles.len() as u64;
    let gate = Arc::new(CommitGate {
        shared: Arc::clone(shared),
        state: Mutex::new(GateState::default()),
    });
    let factory_gate = Arc::clone(&gate);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut cluster = shared.cluster.write();
        let outcomes = cluster.mutate_batch_pipelined(mutations, move |range| {
            // Mint-side accounting: the log fires every minted callback
            // exactly once (even on a synchronous append error), so
            // done == expected is a sound completion barrier.
            factory_gate.state.lock().expect("commit gate").expected += 1;
            let fired = Arc::clone(&factory_gate);
            Box::new(move |verdict| fired.on_durable(range, verdict)) as DurableCallback
        });
        drop(cluster);
        outcomes
    }));
    // The pipelining: the batch is applied (or panicked), so the fence
    // can lift now — the covering fsync is still in flight, and the next
    // batch validates and applies against it. Tickets complete later,
    // from maybe_finish, once the callbacks report in.
    shared.admission.lock().expect("admission").writer_active = false;
    pump(shared);
    match outcome {
        Ok(outcomes) => {
            debug_assert_eq!(outcomes.len() as u64, count);
            shared.counters.mutations.fetch_add(count, Ordering::Relaxed);
            shared.counters.write_batches.fetch_add(1, Ordering::Relaxed);
            Counters::raise_high_water(&shared.counters.max_write_batch, count);
            gate.stage(StagedCompletion { outcomes, handles, panic: None });
        }
        Err(payload) => {
            // Runs appended before the panic still own minted callbacks;
            // the gate waits for them so no callback outlives its batch's
            // accounting, then completes every ticket with the panic.
            gate.stage(StagedCompletion { outcomes: Vec::new(), handles, panic: Some(payload) });
        }
    }
}

/// Parks a pipelined batch's tickets until the fsyncs covering its WAL
/// runs have all reported. Two halves race benignly: the write job
/// stages outcomes + completers after releasing the fence, and the sync
/// job's durability callbacks tick `done` toward `expected`; whichever
/// side observes both conditions takes the staged completion (the
/// `Option::take` makes the finisher unique) and resolves the tickets.
struct CommitGate {
    shared: Arc<Shared>,
    state: Mutex<GateState>,
}

#[derive(Default)]
struct GateState {
    /// Durability callbacks minted by the batch's run flushes.
    expected: usize,
    /// Callbacks that have fired (Ok or Err).
    done: usize,
    /// Batch-index ranges whose covering fsync failed, with the error.
    failed: Vec<(Range<usize>, String)>,
    /// Set once by the write job; taken exactly once by the finisher.
    staged: Option<StagedCompletion>,
}

struct StagedCompletion {
    outcomes: Vec<(Result<MutationEffect>, u64)>,
    handles: Vec<(TicketCompleter<ServeResponse>, Instant)>,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl CommitGate {
    fn on_durable(self: &Arc<Self>, range: Range<usize>, verdict: WalResult<()>) {
        {
            let mut state = self.state.lock().expect("commit gate");
            state.done += 1;
            if let Err(e) = verdict {
                state.failed.push((range, e.to_string()));
            }
        }
        self.maybe_finish();
    }

    fn stage(self: &Arc<Self>, staged: StagedCompletion) {
        self.state.lock().expect("commit gate").staged = Some(staged);
        self.maybe_finish();
    }

    fn maybe_finish(self: &Arc<Self>) {
        let (staged, failed) = {
            let mut state = self.state.lock().expect("commit gate");
            if state.done < state.expected || state.staged.is_none() {
                return;
            }
            let staged = state.staged.take().expect("checked above");
            (staged, std::mem::take(&mut state.failed))
        };
        let shared = &self.shared;
        match staged.panic {
            None => {
                for (i, ((result, epoch), (completer, submitted))) in
                    staged.outcomes.into_iter().zip(staged.handles).enumerate()
                {
                    // An applied effect whose covering fsync failed must
                    // not acknowledge as durable: the durability error
                    // overrides the in-memory Ok (recovery will replay
                    // only what the log actually holds).
                    let result = match failed.iter().find(|(range, _)| range.contains(&i)) {
                        Some((_, detail)) => {
                            Err(ModelError::invalid(format!("durability: {detail}")))
                        }
                        None => result,
                    };
                    shared.counters.writes_in_flight.fetch_sub(1, Ordering::Relaxed);
                    shared.counters.record_latency(submitted);
                    completer
                        .complete(ServeResponse { epoch, answer: QueryAnswer::Mutated(result) });
                }
            }
            Some(payload) => {
                let mut payload = Some(payload);
                for (completer, submitted) in staged.handles {
                    shared.counters.writes_in_flight.fetch_sub(1, Ordering::Relaxed);
                    shared.counters.record_latency(submitted);
                    match payload.take() {
                        Some(p) => completer.complete_with_panic(p),
                        None => completer.complete_with_panic(Box::new(
                            "a mutation batched with this one panicked the write job",
                        )),
                    }
                }
            }
        }
    }
}

/// What one shard task produced for its gather.
enum ShardPart {
    Keyword(Arc<Vec<KeywordHit>>),
    Private(Arc<PrivateSearchOutcome>),
    Ranked((Arc<Vec<KeywordHit>>, Arc<crate::engine::RankedAnswer>)),
}

/// How the gather finishes a read — fixed at planning time.
enum ReadKind {
    Keyword,
    Private(Plan),
    Ranked {
        mode: RankingMode,
        /// Corpus-global IDFs, collected once at planning (cheap memo
        /// probes) so shard tasks stay independent.
        idfs: Vec<f64>,
    },
}

/// The continuation shared by one read's shard tasks: parts land in
/// `slots`, and whichever task decrements `remaining` to zero runs the
/// gather and completes the ticket. No thread ever blocks waiting for
/// another shard.
struct Gather {
    shared: Arc<Shared>,
    group: String,
    query_text: String,
    kind: ReadKind,
    epoch: u64,
    targets: Vec<usize>,
    slots: Vec<Mutex<Option<ShardPart>>>,
    remaining: AtomicUsize,
    completer: Mutex<Option<TicketCompleter<ServeResponse>>>,
    panicked: AtomicBool,
    submitted: Instant,
}

/// Plan an admitted read and fan its shard tasks out as independent pool
/// jobs. Planning (front re-probe, group check, index-gated target
/// selection, ranked IDF collection) is memo-probe cheap and runs on the
/// admitting thread; all per-shard query work goes to the pool. Returns
/// `true` if the read completed without fanning out (the caller then
/// releases its fence slot).
fn dispatch_read(shared: &Arc<Shared>, queued: Queued) -> bool {
    let Queued { req, completer, submitted } = queued;
    let cluster = shared.cluster.read();
    let epoch = cluster.front_epoch();
    // The request may have warmed while queued (an identical read ahead
    // of it); serve it without shard work, like the inline path.
    if let Some(answer) = probe_front(&cluster, &req) {
        drop(cluster);
        shared.counters.warm_inline.fetch_add(1, Ordering::Relaxed);
        shared.counters.record_latency(submitted);
        completer.complete(ServeResponse { epoch, answer });
        return true;
    }
    let (group, query_text, kind) = match req {
        ServeRequest::Keyword { group, query } => (group, query, ReadKind::Keyword),
        ServeRequest::Private { group, query, plan } => (group, query, ReadKind::Private(plan)),
        ServeRequest::Ranked { group, query, mode } => {
            let idfs = if cluster.registry().group(&group).is_some() {
                cluster.ranked_corpus_idfs(&KeywordQuery::parse(&query))
            } else {
                Vec::new()
            };
            (group, query, ReadKind::Ranked { mode, idfs })
        }
        ServeRequest::Mutate(_) => unreachable!("read dispatch requires a query"),
    };
    if cluster.registry().group(&group).is_none() {
        let answer = match kind {
            ReadKind::Keyword => QueryAnswer::Keyword(None),
            ReadKind::Private(_) => QueryAnswer::Private(None),
            ReadKind::Ranked { .. } => QueryAnswer::Ranked(None),
        };
        drop(cluster);
        shared.counters.record_latency(submitted);
        completer.complete(ServeResponse { epoch, answer });
        return true;
    }
    let query = KeywordQuery::parse(&query_text);
    let targets = cluster.target_shards(&query);
    let gather = Arc::new(Gather {
        shared: Arc::clone(shared),
        group,
        query_text,
        kind,
        epoch,
        remaining: AtomicUsize::new(targets.len()),
        slots: targets.iter().map(|_| Mutex::new(None)).collect(),
        targets,
        completer: Mutex::new(Some(completer)),
        panicked: AtomicBool::new(false),
        submitted,
    });
    if gather.targets.is_empty() {
        // Index gating pruned every shard: gather an empty answer (which
        // also publishes it to the front cache) without any pool work.
        gather.finalize(&cluster);
        return true;
    }
    drop(cluster);
    for slot in 0..gather.targets.len() {
        let gather = Arc::clone(&gather);
        shared.pool.exec(move || gather.run_shard_task(slot));
    }
    false
}

/// Decrement the reader fence and re-pump (a drained fence may admit a
/// waiting mutation).
fn finish_read(shared: &Arc<Shared>) {
    shared.admission.lock().expect("admission").readers_in_flight -= 1;
    pump(shared);
}

impl Gather {
    /// One shard's task: query the shard engine under the cluster read
    /// lock, deposit the part, and — as the last finisher — gather.
    fn run_shard_task(self: &Arc<Self>, slot: usize) {
        let shard = self.targets[slot];
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let cluster = self.shared.cluster.read();
            debug_assert_eq!(
                cluster.front_epoch(),
                self.epoch,
                "fence violated: epoch moved under an in-flight read"
            );
            let engine = &cluster.shards()[shard];
            let registered = "group registered on every shard";
            match &self.kind {
                ReadKind::Keyword => ShardPart::Keyword(
                    engine.search_as(&self.group, &self.query_text).expect(registered),
                ),
                ReadKind::Private(plan) => ShardPart::Private(
                    engine
                        .private_search_as(&self.group, &self.query_text, *plan)
                        .expect(registered),
                ),
                ReadKind::Ranked { mode, .. } => ShardPart::Ranked(
                    engine
                        .ranked_search_as(&self.group, &self.query_text, *mode)
                        .expect(registered),
                ),
            }
        }));
        match outcome {
            Ok(part) => *self.slots[slot].lock().expect("gather slot") = Some(part),
            Err(payload) => {
                self.panicked.store(true, Ordering::SeqCst);
                // The ticket learns of the panic immediately; the fence
                // still waits for the remaining shard tasks below.
                if let Some(completer) = self.completer.lock().expect("gather completer").take() {
                    // A panicked read still completes (counter parity for
                    // quiesce); its latency buckets like any response.
                    self.shared.counters.record_latency(self.submitted);
                    completer.complete_with_panic(payload);
                }
            }
        }
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            if !self.panicked.load(Ordering::SeqCst) {
                let cluster = self.shared.cluster.read();
                self.finalize(&cluster);
            }
            finish_read(&self.shared);
        }
    }

    /// The gather continuation: merge the parts through the cluster's
    /// shared gather stages (bit-identical to the blocking path) and
    /// complete the ticket.
    fn finalize(&self, cluster: &EngineCluster) {
        let parts: Vec<ShardPart> = self
            .slots
            .iter()
            .map(|s| s.lock().expect("gather slot").take().expect("all shard parts deposited"))
            .collect();
        let answer = match &self.kind {
            ReadKind::Keyword => {
                let per_shard: Vec<_> = parts
                    .into_iter()
                    .map(|p| match p {
                        ShardPart::Keyword(hits) => hits,
                        _ => unreachable!("keyword gather got a foreign part"),
                    })
                    .collect();
                QueryAnswer::Keyword(Some(cluster.gather_keyword(
                    &self.group,
                    &self.query_text,
                    self.epoch,
                    &self.targets,
                    &per_shard,
                )))
            }
            ReadKind::Private(plan) => {
                let per_shard: Vec<_> = parts
                    .into_iter()
                    .map(|p| match p {
                        ShardPart::Private(outcome) => outcome,
                        _ => unreachable!("private gather got a foreign part"),
                    })
                    .collect();
                QueryAnswer::Private(Some(cluster.gather_private(
                    &self.group,
                    &self.query_text,
                    *plan,
                    self.epoch,
                    &self.targets,
                    &per_shard,
                )))
            }
            ReadKind::Ranked { mode, idfs } => {
                let per_shard: Vec<_> = parts
                    .into_iter()
                    .map(|p| match p {
                        ShardPart::Ranked(pair) => pair,
                        _ => unreachable!("ranked gather got a foreign part"),
                    })
                    .collect();
                QueryAnswer::Ranked(Some(cluster.gather_ranked(
                    &self.group,
                    &self.query_text,
                    *mode,
                    self.epoch,
                    idfs,
                    &self.targets,
                    &per_shard,
                )))
            }
        };
        if let Some(completer) = self.completer.lock().expect("gather completer").take() {
            self.shared.counters.record_latency(self.submitted);
            completer.complete(ServeResponse { epoch: self.epoch, answer });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppwf_core::policy::{AccessLevel, Policy};
    use ppwf_model::fixtures;
    use ppwf_repo::principals::{PrincipalRegistry, ViewRule};
    use ppwf_repo::repository::{Repository, SpecId};

    fn registry() -> PrincipalRegistry {
        let mut registry = PrincipalRegistry::new();
        registry.add_group("public", AccessLevel(0), ViewRule::RootOnly);
        registry.add_group("researchers", AccessLevel(3), ViewRule::Full);
        registry
    }

    fn corpus(n: usize) -> Repository {
        let mut repo = Repository::new();
        for _ in 0..n {
            let (spec, _) = fixtures::disease_susceptibility();
            repo.insert_spec(spec, Policy::public()).unwrap();
        }
        repo
    }

    fn front(specs: usize, shards: usize, threads: usize) -> ServeFront {
        let pool = Arc::new(WorkerPool::new(threads));
        let cluster = EngineCluster::with_config(
            corpus(specs),
            registry(),
            shards,
            crate::route::ShardStrategy::RoundRobin,
            Arc::clone(&pool),
        );
        ServeFront::with_pool(cluster, pool)
    }

    fn keyword(group: &str, query: &str) -> ServeRequest {
        ServeRequest::Keyword { group: group.into(), query: query.into() }
    }

    #[test]
    fn answers_match_the_blocking_cluster() {
        let front = front(5, 2, 2);
        let blocking = EngineCluster::new(corpus(5), registry(), 2);
        for (group, query) in
            [("researchers", "risk"), ("public", "risk"), ("researchers", "database")]
        {
            let response = front.submit(keyword(group, query)).wait();
            let QueryAnswer::Keyword(Some(hits)) = response.answer else {
                panic!("expected a keyword answer")
            };
            let reference = blocking.search_as(group, query).unwrap();
            assert_eq!(hits.len(), reference.len(), "{group}/{query}");
            for (a, b) in hits.iter().zip(reference.iter()) {
                assert_eq!(a.spec, b.spec);
                assert_eq!(a.prefix, b.prefix);
            }
        }
    }

    #[test]
    fn warm_requests_complete_inline() {
        let front = front(4, 2, 2);
        let cold = front.submit(keyword("researchers", "risk")).wait();
        let stats = front.stats();
        assert_eq!(stats.warm_inline, 0);
        let warm_ticket = front.submit(keyword("researchers", "risk"));
        assert!(warm_ticket.is_complete(), "warm hit must complete at submit time");
        let warm = warm_ticket.wait();
        assert_eq!(warm.epoch, cold.epoch);
        let (QueryAnswer::Keyword(Some(a)), QueryAnswer::Keyword(Some(b))) =
            (&cold.answer, &warm.answer)
        else {
            panic!("expected keyword answers")
        };
        assert!(Arc::ptr_eq(a, b), "warm answer must share the merged Arc");
        assert_eq!(front.stats().warm_inline, 1);
    }

    #[test]
    fn unknown_group_answers_none() {
        let front = front(2, 2, 1);
        let response = front.submit(keyword("nobody", "risk")).wait();
        assert!(matches!(response.answer, QueryAnswer::Keyword(None)));
    }

    #[test]
    fn mutations_fence_and_apply_in_order() {
        let front = front(3, 2, 2);
        let before = front.submit(keyword("researchers", "risk")).wait();
        let QueryAnswer::Keyword(Some(hits)) = &before.answer else { panic!() };
        assert_eq!(hits.len(), 3);
        let (spec, _) = fixtures::disease_susceptibility();
        let effect = front
            .submit(ServeRequest::mutate(Mutation::InsertSpec { spec, policy: Policy::public() }))
            .wait();
        let QueryAnswer::Mutated(Ok(MutationEffect::SpecInserted { spec })) = effect.answer else {
            panic!("expected a successful insert")
        };
        assert_eq!(spec, SpecId(3));
        assert!(effect.epoch > before.epoch, "answer-changing write must move the epoch");
        let after = front.submit(keyword("researchers", "risk")).wait();
        let QueryAnswer::Keyword(Some(hits)) = &after.answer else { panic!() };
        assert_eq!(hits.len(), 4, "stale answer served after a fenced insert");
        assert_eq!(front.stats().mutations, 1);
    }

    #[test]
    fn multiplexes_many_in_flight_requests() {
        let pool = Arc::new(WorkerPool::new(2));
        let cluster = EngineCluster::with_config(
            corpus(6),
            registry(),
            3,
            crate::route::ShardStrategy::RoundRobin,
            Arc::clone(&pool),
        );
        let front = ServeFront::with_pool(cluster, Arc::clone(&pool));
        // Plug both workers so no shard job can complete while the burst
        // is being submitted: every cold read must then be concurrently
        // in flight, which is the multiplexing claim itself — one
        // submitting thread, many admitted queries, zero extra threads.
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let rx = std::sync::Mutex::new(release_rx);
        let barrier = Arc::new(rx);
        for _ in 0..2 {
            let barrier = Arc::clone(&barrier);
            pool.exec(move || {
                let _ = barrier.lock().unwrap().recv();
            });
        }
        let queries =
            ["risk", "database", "Database, Disorder Risks", "pubmed", "database, pubmed"];
        let tickets: Vec<_> = (0..10)
            .map(|i| {
                let group = if i % 2 == 0 { "researchers" } else { "public" };
                front.submit(keyword(group, queries[i % queries.len()]))
            })
            .collect();
        let stats = front.stats();
        assert_eq!(
            stats.in_flight_high_water, 10,
            "all cold requests must be admitted and in flight at once"
        );
        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        for t in tickets {
            let response = t.wait();
            assert!(matches!(response.answer, QueryAnswer::Keyword(Some(_))));
        }
        let stats = front.stats();
        assert_eq!(stats.completed, 10);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.latency_counts.iter().sum::<u64>(), 10);
        front.quiesce();
    }

    /// A durable front over `MemStorage`; `group` batches queued writes.
    fn durable_front(
        threads: usize,
        group: Option<ppwf_repo::wal::GroupCommit>,
    ) -> (ServeFront, Arc<WorkerPool>) {
        use ppwf_repo::storage::{MemStorage, StorageBackend};
        use ppwf_repo::wal::DurabilityPolicy;
        let pool = Arc::new(WorkerPool::new(threads));
        let policy =
            DurabilityPolicy { group_commit: group, snapshot_every: 0, ..Default::default() };
        let backend: Arc<dyn StorageBackend> = Arc::new(MemStorage::new());
        let (cluster, _) = EngineCluster::open_durable(
            backend,
            policy,
            registry(),
            2,
            crate::route::ShardStrategy::RoundRobin,
            Arc::clone(&pool),
        )
        .expect("open durable cluster on fresh storage");
        (ServeFront::with_pool(cluster, Arc::clone(&pool)), pool)
    }

    /// Queued writes behind the fence drain as ONE WAL batch under one
    /// fsync, apply in submission order, and hand out per-record epochs
    /// bit-identical to a sequential unbatched reference.
    #[test]
    fn queued_writes_batch_into_one_fsync() {
        use ppwf_repo::wal::GroupCommit;
        let (front, pool) = durable_front(2, Some(GroupCommit { max_batch: 8, max_delay_us: 0 }));
        // Plug both workers so the write job cannot run until every
        // mutation is queued: the batch drain must then cover all five.
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let barrier = Arc::new(std::sync::Mutex::new(release_rx));
        for _ in 0..2 {
            let barrier = Arc::clone(&barrier);
            pool.exec(move || {
                let _ = barrier.lock().unwrap().recv();
            });
        }
        let tickets: Vec<_> = (0..5)
            .map(|_| {
                let (spec, _) = fixtures::disease_susceptibility();
                front.submit(ServeRequest::mutate(Mutation::InsertSpec {
                    spec,
                    policy: Policy::public(),
                }))
            })
            .collect();
        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        let epochs: Vec<u64> = tickets
            .into_iter()
            .map(|t| {
                let response = t.wait();
                assert!(matches!(response.answer, QueryAnswer::Mutated(Ok(_))));
                response.epoch
            })
            .collect();
        front.quiesce();
        let stats = front.stats();
        assert_eq!(stats.mutations, 5);
        assert_eq!(stats.write_batches, 1, "all queued writes must drain as one batch");
        assert_eq!(stats.max_write_batch, 5);
        let wal = stats.durability.expect("durable front reports wal stats");
        assert_eq!(wal.appends, 5, "appends keep counting durable mutations");
        assert_eq!(wal.records, 1, "one physical record covers the batch");
        assert_eq!(wal.syncs, 1, "one fsync acknowledges the whole batch");
        assert_eq!(wal.fsyncs_saved, 4);

        // Sequential unbatched reference: same stream, same epochs, same
        // final image.
        let (reference, _ref_pool) = durable_front(2, None);
        let reference_epochs: Vec<u64> = (0..5)
            .map(|_| {
                let (spec, _) = fixtures::disease_susceptibility();
                let response = reference
                    .submit(ServeRequest::mutate(Mutation::InsertSpec {
                        spec,
                        policy: Policy::public(),
                    }))
                    .wait();
                assert!(matches!(response.answer, QueryAnswer::Mutated(Ok(_))));
                response.epoch
            })
            .collect();
        assert_eq!(epochs, reference_epochs, "batched epochs must match sequential");
        let batched = front.with_cluster(|c| c.assemble_repository().unwrap().save());
        let sequential = reference.with_cluster(|c| c.assemble_repository().unwrap().save());
        assert_eq!(batched, sequential, "batched apply must be bit-identical");
    }

    /// Pipelined commit at the front: queued writes drain as one batch,
    /// every ticket acknowledges only after its covering fsync (so all
    /// acks mean durable), the pipeline stats register the queued frame,
    /// and reopening the same storage recovers the acked image
    /// bit-identically.
    #[test]
    fn pipelined_writes_ack_durable_and_recover() {
        use ppwf_repo::storage::{MemStorage, StorageBackend};
        use ppwf_repo::wal::DurabilityPolicy;
        let pool = Arc::new(WorkerPool::new(2));
        let policy = DurabilityPolicy { snapshot_every: 0, ..DurabilityPolicy::pipelined(8, 0) };
        let backend: Arc<dyn StorageBackend> = Arc::new(MemStorage::new());
        let (cluster, _) = EngineCluster::open_durable(
            Arc::clone(&backend),
            policy,
            registry(),
            2,
            crate::route::ShardStrategy::RoundRobin,
            Arc::clone(&pool),
        )
        .expect("open durable cluster on fresh storage");
        let front = ServeFront::with_pool(cluster, Arc::clone(&pool));
        // Plug both workers so the five writes queue behind the fence
        // and drain as one pipelined batch.
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let barrier = Arc::new(std::sync::Mutex::new(release_rx));
        for _ in 0..2 {
            let barrier = Arc::clone(&barrier);
            pool.exec(move || {
                let _ = barrier.lock().unwrap().recv();
            });
        }
        let tickets: Vec<_> = (0..5)
            .map(|_| {
                let (spec, _) = fixtures::disease_susceptibility();
                front.submit(ServeRequest::mutate(Mutation::InsertSpec {
                    spec,
                    policy: Policy::public(),
                }))
            })
            .collect();
        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        for t in tickets {
            let response = t.wait();
            assert!(
                matches!(response.answer, QueryAnswer::Mutated(Ok(_))),
                "a pipelined ack means the covering fsync returned Ok"
            );
        }
        front.quiesce();
        let stats = front.stats();
        assert_eq!(stats.mutations, 5);
        assert_eq!(stats.write_batches, 1, "queued writes still drain as one batch");
        let wal = stats.durability.expect("durable front reports wal stats");
        assert_eq!(wal.appends, 5);
        assert_eq!(wal.records, 1, "the pipelined batch still appends as one record");
        assert!(wal.syncs >= 1, "at least one covering fsync acknowledged the batch");
        assert!(
            wal.pipeline_depth_high_water >= 1,
            "the frame must have passed through the sync queue, got {}",
            wal.pipeline_depth_high_water
        );
        let served = front.with_cluster(|c| c.assemble_repository().unwrap().save());
        drop(front);
        // Reopen the same storage: the acked image must recover whole.
        let pool2 = Arc::new(WorkerPool::new(1));
        let (recovered, _) = EngineCluster::open_durable(
            backend,
            policy,
            registry(),
            2,
            crate::route::ShardStrategy::RoundRobin,
            pool2,
        )
        .expect("reopen the pipelined log");
        assert_eq!(
            recovered.assemble_repository().unwrap().save(),
            served,
            "recovery must be bit-identical to the acknowledged image"
        );
    }

    /// The second warm hit recycles the first's consumed ticket slot.
    #[test]
    fn warm_hits_reuse_pooled_tickets() {
        let front = front(4, 2, 2);
        front.submit(keyword("researchers", "risk")).wait();
        let first_warm = front.submit(keyword("researchers", "risk"));
        assert!(first_warm.is_complete());
        first_warm.wait();
        let second_warm = front.submit(keyword("researchers", "risk"));
        second_warm.wait();
        let stats = front.stats();
        assert_eq!(stats.warm_inline, 2);
        assert!(
            stats.warm_ticket_reuses >= 1,
            "a consumed warm ticket must be recycled, got {} reuses",
            stats.warm_ticket_reuses
        );
    }

    #[test]
    fn private_and_ranked_serve_through_the_front() {
        let front = front(4, 2, 2);
        let response = front
            .submit(ServeRequest::Private {
                group: "public".into(),
                query: "risk".into(),
                plan: Plan::FilterThenSearch,
            })
            .wait();
        assert!(matches!(response.answer, QueryAnswer::Private(Some(_))));
        let response = front
            .submit(ServeRequest::Ranked {
                group: "researchers".into(),
                query: "database".into(),
                mode: RankingMode::ExactFull,
            })
            .wait();
        let QueryAnswer::Ranked(Some(answer)) = response.answer else { panic!() };
        let blocking = EngineCluster::new(corpus(4), registry(), 2);
        let reference =
            blocking.ranked_search_as("researchers", "database", RankingMode::ExactFull).unwrap();
        assert_eq!(answer.ranked.scores, reference.ranked.scores, "f64 bits must agree");
        assert_eq!(answer.ranked.order, reference.ranked.order);
    }

    #[test]
    fn one_thread_pool_cannot_deadlock() {
        let front = front(4, 3, 1);
        let tickets: Vec<_> =
            (0..8).map(|_| front.submit(keyword("researchers", "risk"))).collect();
        let (spec, _) = fixtures::disease_susceptibility();
        let mutation = front
            .submit(ServeRequest::mutate(Mutation::InsertSpec { spec, policy: Policy::public() }));
        for t in tickets {
            t.wait();
        }
        assert!(matches!(mutation.wait().answer, QueryAnswer::Mutated(Ok(_))));
        front.quiesce();
    }
}
