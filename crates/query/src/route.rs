//! Spec-partitioning routing for the sharded serving cluster.
//!
//! A [`Router`] owns the bidirectional mapping between *global* spec ids
//! (what clients see — dense insertion order across the whole corpus) and
//! *shard-local* ids (dense insertion order within each shard repository).
//! The placement [`ShardStrategy`] only matters at assignment time; after
//! that the router is a pair of O(1) lookup tables, so the scatter path
//! never hashes and the gather path remaps ids with one indexed load.

use ppwf_repo::repository::SpecId;

/// How new specifications are placed on shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardStrategy {
    /// `global % shards` — perfectly balanced for append-only corpora.
    RoundRobin,
    /// Multiplicative hash of the global id — balanced in expectation and
    /// stable under id-space gaps (e.g. future tombstones).
    Hash,
}

impl ShardStrategy {
    fn place(self, global: SpecId, shards: usize) -> usize {
        match self {
            ShardStrategy::RoundRobin => global.index() % shards,
            ShardStrategy::Hash => {
                // Fibonacci hashing: spreads consecutive ids well without a
                // hasher dependency.
                let h = (global.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 33) % shards as u64) as usize
            }
        }
    }
}

/// The global↔local spec-id mapping for one cluster.
///
/// Deleted specifications are **retired**, never unmapped: the
/// global↔local tables keep their slots (ids are never reassigned, local
/// ids stay aligned with the shard repositories' tombstone slots), and a
/// retired bit makes [`Router::locate`] refuse the id. This is what lets
/// the id maps survive removal — `global_of` still resolves for gather
/// remaps, and reconstruction from a recovered global repository can
/// re-derive the identical placement.
#[derive(Clone, Debug)]
pub struct Router {
    strategy: ShardStrategy,
    /// global id → (shard, local id).
    to_shard: Vec<(u32, u32)>,
    /// shard → local id → global id.
    to_global: Vec<Vec<SpecId>>,
    /// global id → deleted. Aligned with `to_shard`.
    retired: Vec<bool>,
    retired_count: usize,
}

impl Router {
    /// An empty router over `shards` shards.
    pub fn new(shards: usize, strategy: ShardStrategy) -> Self {
        assert!(shards > 0, "need at least one shard");
        Router {
            strategy,
            to_shard: Vec::new(),
            to_global: vec![Vec::new(); shards],
            retired: Vec::new(),
            retired_count: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.to_global.len()
    }

    /// Number of assigned specifications, retired ones included — the
    /// global id space (matches a tombstone-slot repository's `len`).
    pub fn spec_count(&self) -> usize {
        self.to_shard.len()
    }

    /// Number of live (never-retired) specifications.
    pub fn live_count(&self) -> usize {
        self.to_shard.len() - self.retired_count
    }

    /// Mark a global id as deleted. The slot survives — `global_of` still
    /// resolves and the id is never reassigned — but [`Self::locate`]
    /// refuses it from now on.
    pub fn retire(&mut self, global: SpecId) {
        let slot = &mut self.retired[global.index()];
        debug_assert!(!*slot, "retire must be called once per global id");
        if !*slot {
            *slot = true;
            self.retired_count += 1;
        }
    }

    /// Whether a global id has been retired (out-of-range ids are not
    /// retired — they were never assigned).
    pub fn is_retired(&self, global: SpecId) -> bool {
        self.retired.get(global.index()).copied().unwrap_or(false)
    }

    /// The placement strategy.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// Assign the next global id to a shard; returns `(global, shard,
    /// local)`. Ids are dense: the caller must insert the spec into the
    /// returned shard's repository immediately (which hands out `local`).
    pub fn assign(&mut self) -> (SpecId, usize, SpecId) {
        let global = SpecId(self.to_shard.len() as u32);
        let shard = self.strategy.place(global, self.shard_count());
        let local = SpecId(self.to_global[shard].len() as u32);
        self.to_shard.push((shard as u32, local.0));
        self.to_global[shard].push(global);
        self.retired.push(false);
        (global, shard, local)
    }

    /// Where a global spec lives: `(shard, local id)`. `None` for ids
    /// that were never assigned *and* for retired (deleted) ids — callers
    /// that must distinguish the two probe [`Self::is_retired`] first.
    pub fn locate(&self, global: SpecId) -> Option<(usize, SpecId)> {
        if self.is_retired(global) {
            return None;
        }
        self.to_shard.get(global.index()).map(|&(s, l)| (s as usize, SpecId(l)))
    }

    /// The global id of a shard-local spec.
    pub fn global_of(&self, shard: usize, local: SpecId) -> SpecId {
        self.to_global[shard][local.index()]
    }

    /// Global ids living on `shard`, in local-id order (ascending global).
    pub fn shard_specs(&self, shard: usize) -> &[SpecId] {
        &self.to_global[shard]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_balances_and_round_trips() {
        let mut r = Router::new(3, ShardStrategy::RoundRobin);
        for i in 0..9u32 {
            let (global, shard, local) = r.assign();
            assert_eq!(global, SpecId(i));
            assert_eq!(shard, i as usize % 3);
            assert_eq!(r.locate(global), Some((shard, local)));
            assert_eq!(r.global_of(shard, local), global);
        }
        for s in 0..3 {
            assert_eq!(r.shard_specs(s).len(), 3);
        }
    }

    #[test]
    fn hash_placement_is_deterministic_and_total() {
        let mut a = Router::new(4, ShardStrategy::Hash);
        let mut b = Router::new(4, ShardStrategy::Hash);
        for _ in 0..32 {
            let (ga, sa, _) = a.assign();
            let (gb, sb, _) = b.assign();
            assert_eq!((ga, sa), (gb, sb), "placement must be deterministic");
        }
        let placed: usize = (0..4).map(|s| a.shard_specs(s).len()).sum();
        assert_eq!(placed, 32);
    }

    #[test]
    fn shard_specs_ascend_globally() {
        let mut r = Router::new(2, ShardStrategy::Hash);
        for _ in 0..20 {
            r.assign();
        }
        for s in 0..2 {
            let specs = r.shard_specs(s);
            assert!(specs.windows(2).all(|w| w[0] < w[1]), "local order preserves global order");
        }
    }

    #[test]
    fn unknown_global_is_none() {
        let r = Router::new(2, ShardStrategy::RoundRobin);
        assert!(r.locate(SpecId(0)).is_none());
        assert!(!r.is_retired(SpecId(0)), "unassigned ids are not retired");
    }

    #[test]
    fn retired_ids_survive_in_the_maps_but_refuse_lookups() {
        let mut r = Router::new(2, ShardStrategy::RoundRobin);
        for _ in 0..4 {
            r.assign();
        }
        let (shard, local) = r.locate(SpecId(1)).unwrap();
        r.retire(SpecId(1));
        assert!(r.is_retired(SpecId(1)));
        assert!(r.locate(SpecId(1)).is_none(), "retired ids must not route");
        assert_eq!(r.global_of(shard, local), SpecId(1), "gather remap survives retirement");
        assert_eq!(r.spec_count(), 4, "the id space keeps its slots");
        assert_eq!(r.live_count(), 3);
        // New assignments never reuse the retired slot.
        let (global, _, _) = r.assign();
        assert_eq!(global, SpecId(4));
    }
}
