//! Sharded query serving: scatter/gather over a cluster of engines.
//!
//! One [`QueryEngine`] bounds serving capacity by one keyword index, one
//! view cache and one repository walk per request. The [`EngineCluster`]
//! lifts that bound: a [`Router`] partitions specifications across N shard
//! engines (each a full, independently cached [`QueryEngine`] over its own
//! repository slice), and every serving entry point scatters across the
//! shards on a persistent [`WorkerPool`], then gathers per-shard hits into
//! one merged answer in global spec order.
//!
//! Three invariants make the cluster *transparent* — answers are
//! bit-identical to a single engine over the same corpus:
//!
//! * **Per-spec independence.** Keyword, private-search and ranked answers
//!   are unions of per-spec results, and every spec lives on exactly one
//!   shard, so a gather in global-spec order reproduces the single-engine
//!   hit list exactly. Module privacy is enforced *inside* each shard — a
//!   shard sanitizes its hits against the group's access views before
//!   anything reaches the gather stage, exactly as in the unsharded model.
//! * **Corpus-global ranking statistics.** TF-IDF scores depend on corpus
//!   document counts; shard-local IDFs would drift. The cluster sums
//!   per-shard `(doc_count, df)` into global IDFs and rescores gathered
//!   profiles with [`scores_for_profiles`] — bitwise the single engine's
//!   math.
//! * **Index-gated scatter.** A shard whose index lacks some query term
//!   cannot contribute a hit (AND semantics), so the router skips it before
//!   any access-map resolution. This is pure pruning: it never changes an
//!   answer, and it is where sharding beats the single engine even on one
//!   core — selective queries touch one shard's worth of state, not the
//!   whole corpus. On multi-core hosts the surviving shard tasks also run
//!   in parallel on the pool.
//!
//! Per-group caching lives in two tiers. The shards keep their
//! `(group, query)` caches (they partition cleanly across a spec
//! partition). In front of them sits the **cluster-front result cache**:
//! fully merged answers keyed by `(group, query, mode)` and tagged with
//! the cluster's **version vector** — one monotone
//! [`QueryEngine::results_version`] per shard. A warm cluster request is
//! then a single probe plus an `Arc` clone, skipping the scatter, the hit
//! remap and the merge entirely — the per-request work E11's warm column
//! measured against the single engine. Because each shard's counter only
//! moves when a routed write can change answers, execution appends — the
//! dominant provenance write — leave the front cache warm; spec inserts
//! and policy swaps move the owning shard's component and stale every
//! front entry at the old vector, which the shard caches then repopulate.

use crate::engine::{CacheSnapshot, EngineStats, Plan, QueryEngine, RankedAnswer};
use crate::keyword::{KeywordHit, KeywordQuery};
use crate::modes::ModeCaches;
use crate::privacy_exec::PrivateSearchOutcome;
use crate::ranking::{idfs_from_shard_counts, rank_by_scores, scores_for_profiles, RankingMode};
use crate::route::{Router, ShardStrategy};
use ppwf_core::policy::Policy;
use ppwf_model::exec::Execution;
use ppwf_model::spec::Specification;
use ppwf_model::{ModelError, Result};
use ppwf_repo::cache::GroupCache;
use ppwf_repo::mutation::SpecText;
use ppwf_repo::pool::WorkerPool;
use ppwf_repo::principals::PrincipalRegistry;
use ppwf_repo::repository::{deleted_spec_error, Repository, SpecEntry, SpecId};
use ppwf_repo::snapshot::{CowChunk, CowImage, CHUNK_SPECS};
use ppwf_repo::storage::StorageBackend;
use ppwf_repo::wal::{
    DurabilityPolicy, DurabilityStats, DurableCallback, DurableLog, GroupCommit, RecoveryStats,
    WalError, WalResult,
};
use std::collections::HashSet;
use std::ops::Range;
use std::sync::Arc;

pub use ppwf_repo::mutation::{Mutation, MutationEffect};

/// A router slot resolved to a shard that no longer holds the entry — an
/// id-map/shard inconsistency that should be impossible, surfaced as a
/// typed per-request error instead of a serving-thread panic.
fn stale_route_error(global: SpecId) -> ModelError {
    ModelError::invalid(format!(
        "stale routing entry: spec {} resolves to no shard entry",
        global.0
    ))
}

/// The existing spec a mutation validates against, if any — the key the
/// batch paths use to detect a pending-destructive conflict inside a run.
fn referenced_spec(mutation: &Mutation) -> Option<SpecId> {
    match mutation {
        Mutation::InsertSpec { .. } => None,
        Mutation::AddExecution { spec, .. }
        | Mutation::SetPolicy { spec, .. }
        | Mutation::DeleteSpec { spec }
        | Mutation::EditSpec { spec, .. } => Some(*spec),
    }
}

/// Whether `mutation` references a spec the pending run already touched
/// destructively — the case where pre-run validation is unsound (a
/// deleted target would validate as live) and the run must flush first.
fn referenced_conflicts(mutation: &Mutation, run_destructive: &HashSet<SpecId>) -> bool {
    !run_destructive.is_empty()
        && referenced_spec(mutation).is_some_and(|spec| run_destructive.contains(&spec))
}

/// Record a validated mutation's destructive target, if any, in the
/// pending run's overlay.
fn note_destructive(mutation: &Mutation, run_destructive: &mut HashSet<SpecId>) {
    if let Mutation::DeleteSpec { spec } | Mutation::EditSpec { spec, .. } = mutation {
        run_destructive.insert(*spec);
    }
}

/// A fully merged ranked answer the cluster front caches as one unit:
/// global-id hit list plus ranking, the two halves already aligned by the
/// gather stage.
#[derive(Debug)]
pub struct RankedHits {
    /// Merged hits in global spec order.
    pub hits: Vec<KeywordHit>,
    /// Order, scores and profiles aligned with `hits`.
    pub ranked: RankedAnswer,
}

/// Per-shard and rolled-up cache counters for operators and E11/E13.
#[derive(Clone, Debug)]
pub struct ClusterStats {
    /// One [`EngineStats`] per shard, in shard order.
    pub per_shard: Vec<EngineStats>,
    /// Field-wise sum across shards (rates derive from summed counters, so
    /// idle shards cannot produce NaN or dilute a rate).
    pub aggregate: EngineStats,
    /// The cluster-front result cache (keyword + private + ranked tiers
    /// summed): hits here skipped the scatter/remap/merge entirely.
    pub front: CacheSnapshot,
}

impl ClusterStats {
    /// Per-shard keyword hit rates, in shard order (0 for idle shards).
    pub fn keyword_hit_rates(&self) -> Vec<f64> {
        self.per_shard.iter().map(|s| s.keyword.hit_rate()).collect()
    }

    /// Aggregate keyword hit rate across the cluster.
    pub fn aggregate_keyword_hit_rate(&self) -> f64 {
        self.aggregate.keyword.hit_rate()
    }
}

/// The sharded serving stack. See the module docs.
pub struct EngineCluster {
    shards: Vec<QueryEngine>,
    router: Router,
    registry: PrincipalRegistry,
    pool: Arc<WorkerPool>,
    /// Cluster-front merged-answer caches, tagged with the version-vector
    /// epoch ([`Self::front_epoch`]). One per query class, mirroring the
    /// engine's own cache layout so the warm probes stay borrow-only.
    front_keyword: GroupCache<Vec<KeywordHit>>,
    front_private: [GroupCache<PrivateSearchOutcome>; 2],
    front_ranked: ModeCaches<RankedHits>,
    /// How many times a routed write rebuilt a shard's registry view —
    /// the instrument proving rebuilds run only for writes that change
    /// principal-visible state (never execution appends).
    registry_view_rebuilds: u64,
    /// When present, every routed mutation is appended here — with
    /// *global* spec ids, before any shard applies it — so one log
    /// captures the whole cluster's write history. See
    /// [`Self::attach_durability`].
    durability: Option<DurableLog>,
}

/// Capacity of each cluster-front cache (same default as a shard's
/// result caches).
const FRONT_CAPACITY: usize = 4096;

impl EngineCluster {
    /// Partition `repo` across `shards` engines (round-robin placement, the
    /// process-global pool, default cache capacities).
    pub fn new(repo: Repository, registry: PrincipalRegistry, shards: usize) -> Self {
        Self::with_config(
            repo,
            registry,
            shards,
            ShardStrategy::RoundRobin,
            Arc::clone(WorkerPool::global()),
        )
    }

    /// Full-control construction: placement strategy and serving pool.
    pub fn with_config(
        repo: Repository,
        registry: PrincipalRegistry,
        shards: usize,
        strategy: ShardStrategy,
        pool: Arc<WorkerPool>,
    ) -> Self {
        let mut router = Router::new(shards, strategy);
        let mut shard_repos: Vec<Repository> = (0..shards).map(|_| Repository::new()).collect();
        // Ingest split: entries were validated when they entered `repo`, so
        // partitioning moves them without re-deriving hierarchies. Slots
        // are partitioned, not just live entries: a tombstone still burns
        // its global id (router retires it) and its shard-local slot, so a
        // recovered post-delete corpus re-derives the identical placement.
        for slot in repo.into_slots() {
            let (global, shard, local) = router.assign();
            match slot {
                Some(entry) => {
                    let assigned = shard_repos[shard].insert_entry(entry);
                    debug_assert_eq!(
                        assigned, local,
                        "router and shard repo must agree on local ids"
                    );
                }
                None => {
                    let assigned = shard_repos[shard].insert_tombstone();
                    debug_assert_eq!(
                        assigned, local,
                        "router and shard repo must agree on local ids"
                    );
                    router.retire(global);
                }
            }
        }
        let engines = shard_repos
            .into_iter()
            .enumerate()
            .map(|(s, r)| QueryEngine::new(r, shard_view_of_registry(&registry, &router, s)))
            .collect();
        EngineCluster {
            shards: engines,
            router,
            registry,
            pool,
            front_keyword: GroupCache::new(FRONT_CAPACITY),
            front_private: [GroupCache::new(FRONT_CAPACITY), GroupCache::new(FRONT_CAPACITY)],
            front_ranked: ModeCaches::new(FRONT_CAPACITY),
            registry_view_rebuilds: 0,
            durability: None,
        }
    }

    /// Recover `(snapshot, WAL suffix)` from `backend`, partition the
    /// recovered corpus across `shards` engines and attach the log — the
    /// cluster restart path. Replay rebuilds the *global* repository (the
    /// log records global ids), and the standard ingest split then
    /// re-partitions it exactly as the original construction did, so the
    /// recovered cluster answers bit-identically to the pre-crash one.
    pub fn open_durable(
        backend: Arc<dyn StorageBackend>,
        policy: DurabilityPolicy,
        registry: PrincipalRegistry,
        shards: usize,
        strategy: ShardStrategy,
        pool: Arc<WorkerPool>,
    ) -> WalResult<(Self, RecoveryStats)> {
        let opened = DurableLog::open(backend, policy)?;
        let mut cluster =
            EngineCluster::with_config(opened.repository, registry, shards, strategy, pool);
        let mut log = opened.log;
        if log.policy().background_snapshots {
            log.set_snapshot_pool(Arc::clone(&cluster.pool));
        }
        if log.policy().pipelined_commit {
            log.set_sync_pool(Arc::clone(&cluster.pool));
        }
        cluster.durability = Some(log);
        Ok((cluster, opened.recovery))
    }

    /// Attach a durable log: from here on, [`Self::mutate`] validates,
    /// appends (global ids) and only then routes every mutation, and
    /// snapshots the assembled global corpus on the log's cadence. If the
    /// log is empty while the cluster already holds specs, a baseline
    /// snapshot is written first so recovery always has a base covering
    /// the pre-log history.
    pub fn attach_durability(&mut self, mut log: DurableLog) -> WalResult<()> {
        if log.is_empty() && self.spec_count() > 0 {
            let mut image = self.assemble_repository().map_err(|e| WalError::Snapshot {
                name: "<cluster assembly>".to_string(),
                detail: e.to_string(),
            })?;
            // The log starts at sequence 0: version then counts mutations
            // since the baseline — see [`Repository::set_version`].
            image.set_version(log.stats().last_seq);
            log.snapshot_now(&image)?;
        }
        if log.policy().background_snapshots {
            log.set_snapshot_pool(Arc::clone(&self.pool));
        }
        if log.policy().pipelined_commit {
            log.set_sync_pool(Arc::clone(&self.pool));
        }
        self.durability = Some(log);
        Ok(())
    }

    /// The group-commit knobs of the attached log's policy, if any — the
    /// serving front caches this at construction to size its batched
    /// admission drains.
    pub fn group_commit_policy(&self) -> Option<GroupCommit> {
        self.durability.as_ref().and_then(|log| log.policy().group_commit)
    }

    /// Whether the attached log's policy pipelines covering fsyncs — the
    /// serving front caches this to pick its dispatch path.
    pub fn pipelined_commit_policy(&self) -> bool {
        self.durability
            .as_ref()
            .is_some_and(|log| log.policy().pipelined_commit && log.policy().fsync_each)
    }

    /// Block until every pipelined frame's covering fsync has fired its
    /// acknowledgement (test/bench quiescing; the write path never waits).
    pub fn wait_for_pipeline(&self) {
        if let Some(log) = self.durability.as_ref() {
            log.wait_for_pipeline();
        }
    }

    /// Whether the attached log has a background snapshot job in flight
    /// (test/bench quiescing; the write path never waits on this).
    pub fn background_snapshot_in_flight(&self) -> bool {
        self.durability.as_ref().is_some_and(|log| log.background_snapshot_in_flight())
    }

    /// Durability counters, when a log is attached.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        self.durability.as_ref().map(|log| log.stats())
    }

    /// The cluster's corpus re-assembled as one global repository: entries
    /// in global id order, each shard-held entry cloned back whole — the
    /// snapshot image. Its `version` counts entries, not the mutation
    /// history (shard partitioning does not preserve the global mutation
    /// counter); the durable call sites re-stamp it with the log's
    /// acknowledged sequence number ([`Repository::set_version`]) so
    /// snapshot + suffix replay ends bit-identical to a sequential replay
    /// of the whole history, and the rebuilt cluster re-partitions the
    /// entries exactly as original construction did. Retired global ids
    /// come back as tombstone slots, preserving the id space. A router
    /// slot that resolves to a missing shard entry (an id-map
    /// inconsistency) surfaces as a typed error, not a panic.
    pub fn assemble_repository(&self) -> Result<Repository> {
        let mut repo = Repository::new();
        for global in 0..self.router.spec_count() {
            let global = SpecId(global as u32);
            if self.router.is_retired(global) {
                repo.insert_tombstone();
                continue;
            }
            let entry = self.entry(global).ok_or_else(|| stale_route_error(global))?.clone();
            repo.insert_entry(entry);
        }
        Ok(repo)
    }

    /// The cluster-wide version vector: shard `s`'s component is its
    /// engine's [`QueryEngine::results_version`], which moves exactly when
    /// a routed write to that shard can change answers. Front-cache
    /// entries are valid iff the vector is unchanged since they were
    /// merged.
    pub fn version_vector(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.results_version()).collect()
    }

    /// The version vector collapsed to one monotone epoch for cache
    /// tagging. Components never decrease and every answer-changing write
    /// strictly increases exactly one of them, so two equal sums can only
    /// arise from the identical vector — the scalar is collision-free
    /// without storing the whole vector per entry. The async serving
    /// front's fence leans on the same property: an admitted read's epoch
    /// cannot move while the read is in flight, because mutations drain
    /// in-flight reads first.
    pub(crate) fn front_epoch(&self) -> u64 {
        self.shards.iter().map(|s| s.results_version()).sum()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of specifications across all shards.
    pub fn spec_count(&self) -> usize {
        self.router.spec_count()
    }

    /// The shard engines, in shard order (read-only; writes go through
    /// [`Self::mutate`]).
    pub fn shards(&self) -> &[QueryEngine] {
        &self.shards
    }

    /// The spec-placement router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The cluster-level group registry (shards hold remapped views of it).
    pub fn registry(&self) -> &PrincipalRegistry {
        &self.registry
    }

    /// Look up a spec entry by global id.
    pub fn entry(&self, global: SpecId) -> Option<&SpecEntry> {
        let (shard, local) = self.router.locate(global)?;
        self.shards[shard].repo().entry(local)
    }

    /// How many shards a query would scatter to after index gating — the
    /// pruning diagnostic E11 reports (and operators watch: a mix that
    /// always touches every shard gets no routing benefit).
    pub fn probe_target_count(&self, query_text: &str) -> usize {
        self.target_shards(&KeywordQuery::parse(query_text)).len()
    }

    /// Shards that could contribute to `query`: every term must have a
    /// possible posting in the shard's index (AND semantics make the rest
    /// unreachable). Pure pruning — never changes an answer.
    pub(crate) fn target_shards(&self, query: &KeywordQuery) -> Vec<usize> {
        if query.terms.is_empty() {
            return Vec::new();
        }
        (0..self.shards.len())
            .filter(|&s| {
                let index = self.shards[s].index();
                query.terms.iter().all(|t| index.may_match(t))
            })
            .collect()
    }

    /// Scatter `f` over the target shards on the pool; results come back in
    /// target order. Single-target scatters run inline — no queue handoff.
    fn scatter<'a, T, F>(&'a self, targets: &[usize], f: F) -> Vec<T>
    where
        T: Send + 'a,
        F: Fn(&'a QueryEngine) -> T + Sync + 'a,
    {
        match targets.len() {
            0 => Vec::new(),
            1 => vec![f(&self.shards[targets[0]])],
            _ => {
                let f = &f;
                let tasks: Vec<_> = targets
                    .iter()
                    .map(|&s| {
                        let shard = &self.shards[s];
                        move || f(shard)
                    })
                    .collect();
                self.pool.run(tasks)
            }
        }
    }

    /// The serving pool (shared with the async front, so scoped scatter
    /// jobs and non-blocking shard tasks drain one queue).
    pub(crate) fn pool_handle(&self) -> Arc<WorkerPool> {
        Arc::clone(&self.pool)
    }

    /// The cluster-front keyword cache (async front probes it inline).
    pub(crate) fn front_keyword_cache(&self) -> &GroupCache<Vec<KeywordHit>> {
        &self.front_keyword
    }

    /// The cluster-front private-search cache for `plan`.
    pub(crate) fn front_private_cache(&self, plan: Plan) -> &GroupCache<PrivateSearchOutcome> {
        &self.front_private[plan.slot()]
    }

    /// The cluster-front ranked cache serving `mode`.
    pub(crate) fn front_ranked_cache(&self, mode: RankingMode) -> Arc<GroupCache<RankedHits>> {
        self.front_ranked.cache(mode)
    }

    fn remap_hit(&self, shard: usize, h: &KeywordHit) -> KeywordHit {
        KeywordHit {
            spec: self.router.global_of(shard, h.spec),
            prefix: h.prefix.clone(),
            view: Arc::clone(&h.view),
            matched: h.matched.clone(),
        }
    }

    /// Privilege-filtered keyword search, scattered and gathered in global
    /// spec order. Returns `None` for unknown groups. Warm requests are
    /// served from the cluster-front cache — one probe, no scatter, no
    /// remap, no merge — and, past it, from the shards' `(group, query)`
    /// caches.
    pub fn search_as(&self, group: &str, query_text: &str) -> Option<Arc<Vec<KeywordHit>>> {
        // Front probe before the registry walk, mirroring the engine's
        // "cache before any access work" ordering: only registered groups
        // ever get entries inserted, so a hit implies a known group.
        let epoch = self.front_epoch();
        if let Some(hit) = self.front_keyword.get(group, query_text, epoch) {
            return Some(hit);
        }
        self.registry.group(group)?;
        let query = KeywordQuery::parse(query_text);
        let targets = self.target_shards(&query);
        let per_shard = self.scatter(&targets, |shard| {
            shard.search_as(group, query_text).expect("group registered on every shard")
        });
        Some(self.gather_keyword(group, query_text, epoch, &targets, &per_shard))
    }

    /// The keyword gather stage, shared bitwise between the blocking path
    /// above and the async front's shard-task continuation: remap each
    /// shard's hits to global ids, merge in global spec order, publish to
    /// the front cache at `epoch`.
    pub(crate) fn gather_keyword(
        &self,
        group: &str,
        query_text: &str,
        epoch: u64,
        targets: &[usize],
        per_shard: &[Arc<Vec<KeywordHit>>],
    ) -> Arc<Vec<KeywordHit>> {
        let mut merged = Vec::new();
        for (&s, hits) in targets.iter().zip(per_shard) {
            merged.extend(hits.iter().map(|h| self.remap_hit(s, h)));
        }
        if targets.len() > 1 {
            // Within one shard, local-id order is global-id order already.
            merged.sort_by_key(|h| h.spec);
        }
        let merged = Arc::new(merged);
        self.front_keyword.insert(group, query_text, epoch, Arc::clone(&merged));
        merged
    }

    /// Privacy-preserving search under an explicit plan; per-shard hits are
    /// gathered in global spec order and the plans' cost counters (views
    /// built, zoom steps, discards) are summed — each is a count of
    /// per-spec work, so the sum equals the single-engine figure.
    pub fn private_search_as(
        &self,
        group: &str,
        query_text: &str,
        plan: Plan,
    ) -> Option<Arc<PrivateSearchOutcome>> {
        let epoch = self.front_epoch();
        let front = &self.front_private[plan.slot()];
        if let Some(hit) = front.get(group, query_text, epoch) {
            return Some(hit);
        }
        self.registry.group(group)?;
        let query = KeywordQuery::parse(query_text);
        let targets = self.target_shards(&query);
        let per_shard = self.scatter(&targets, |shard| {
            shard
                .private_search_as(group, query_text, plan)
                .expect("group registered on every shard")
        });
        Some(self.gather_private(group, query_text, plan, epoch, &targets, &per_shard))
    }

    /// The private-search gather stage (see [`Self::gather_keyword`]):
    /// merge hits in global spec order and sum the plans' per-spec cost
    /// counters, so the totals equal the single-engine figures.
    pub(crate) fn gather_private(
        &self,
        group: &str,
        query_text: &str,
        plan: Plan,
        epoch: u64,
        targets: &[usize],
        per_shard: &[Arc<PrivateSearchOutcome>],
    ) -> Arc<PrivateSearchOutcome> {
        let mut hits = Vec::new();
        let (mut views_built, mut zoom_steps, mut discarded) = (0usize, 0usize, 0usize);
        for (&s, outcome) in targets.iter().zip(per_shard) {
            views_built += outcome.views_built;
            zoom_steps += outcome.zoom_steps;
            discarded += outcome.discarded;
            hits.extend(outcome.hits.iter().map(|h| self.remap_hit(s, h)));
        }
        hits.sort_by_key(|h| h.spec);
        let outcome = Arc::new(PrivateSearchOutcome { hits, views_built, zoom_steps, discarded });
        self.front_private[plan.slot()].insert(group, query_text, epoch, Arc::clone(&outcome));
        outcome
    }

    /// Ranked keyword search. Shards contribute hits and TF profiles (both
    /// cached shard-side); the gather stage rescores every profile with
    /// corpus-global IDFs summed over *all* shards — including pruned ones,
    /// whose document counts still shape the statistics — so scores and
    /// order are bit-identical to a single engine over the same corpus.
    pub fn ranked_search_as(
        &self,
        group: &str,
        query_text: &str,
        mode: RankingMode,
    ) -> Option<Arc<RankedHits>> {
        let epoch = self.front_epoch();
        let front = self.front_ranked.cache(mode);
        if let Some(hit) = front.get(group, query_text, epoch) {
            return Some(hit);
        }
        self.registry.group(group)?;
        let query = KeywordQuery::parse(query_text);
        let targets = self.target_shards(&query);
        let idfs = if targets.is_empty() {
            // No shard can contribute a hit; the IDF statistics would go
            // unused (scores of an empty profile set), so skip collecting
            // them — this is the fast-reject path the query mix leans on.
            Vec::new()
        } else {
            self.ranked_corpus_idfs(&query)
        };
        let per_shard = self.scatter(&targets, |shard| {
            shard
                .ranked_search_as(group, query_text, mode)
                .expect("group registered on every shard")
        });
        Some(self.gather_ranked(group, query_text, mode, epoch, &idfs, &targets, &per_shard))
    }

    /// Corpus-global IDFs for `query` over *all* shards — including ones
    /// the scatter prunes, whose document counts still shape the
    /// statistics. Per-shard dfs go through each index's per-term memo:
    /// the first request per term per index build materializes (phrases
    /// verify adjacency over postings), every later gather is a map probe.
    pub(crate) fn ranked_corpus_idfs(&self, query: &KeywordQuery) -> Vec<f64> {
        let doc_counts: Vec<usize> = self.shards.iter().map(|s| s.index().doc_count()).collect();
        let dfs_per_term: Vec<Vec<usize>> = query
            .terms
            .iter()
            .map(|t| self.shards.iter().map(|s| s.index().df_cached(t)).collect())
            .collect();
        idfs_from_shard_counts(&doc_counts, &dfs_per_term)
    }

    /// The ranked gather stage (see [`Self::gather_keyword`]): remap and
    /// merge hits with their TF profiles in global spec order, rescore
    /// every profile with the corpus-global `idfs`, publish at `epoch`.
    /// Scores and order come out bit-identical to a single engine.
    #[allow(clippy::too_many_arguments)] // the gather stage's full context, threaded not stored
    pub(crate) fn gather_ranked(
        &self,
        group: &str,
        query_text: &str,
        mode: RankingMode,
        epoch: u64,
        idfs: &[f64],
        targets: &[usize],
        per_shard: &[(Arc<Vec<KeywordHit>>, Arc<RankedAnswer>)],
    ) -> Arc<RankedHits> {
        let mut rows: Vec<(KeywordHit, crate::ranking::TfProfile)> = Vec::new();
        for (&s, (hits, ranked)) in targets.iter().zip(per_shard) {
            for (i, h) in hits.iter().enumerate() {
                rows.push((self.remap_hit(s, h), ranked.profiles[i].clone()));
            }
        }
        rows.sort_by_key(|(h, _)| h.spec);
        let (hits, profiles): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
        let scores = scores_for_profiles(idfs, &profiles, mode);
        let order = rank_by_scores(&scores);
        let answer =
            Arc::new(RankedHits { hits, ranked: RankedAnswer { order, scores, profiles } });
        self.front_ranked.cache(mode).insert(group, query_text, epoch, Arc::clone(&answer));
        answer
    }

    /// Apply a routed, typed mutation — the same [`Mutation`] vocabulary
    /// and [`MutationEffect`] contract as [`QueryEngine::mutate`], with
    /// ids in the returned effect translated to *global* spec ids. The
    /// mutation forwards to exactly one shard engine: only that shard's
    /// index appends and only its caches invalidate — and the front cache
    /// needs no explicit invalidation at all, because the owning shard's
    /// version-vector component moves (or, for execution appends,
    /// deliberately does not).
    ///
    /// With durability attached, the mutation is validated against the
    /// *global* corpus first (mirroring every check the routed apply runs,
    /// so the log never holds a record that fails on replay), appended —
    /// and per the log's policy fsynced — with its global ids, and only
    /// then routed to the owning shard. An `Err` from the append means
    /// nothing was acknowledged and no shard changed.
    pub fn mutate(&mut self, mutation: Mutation) -> Result<MutationEffect> {
        if self.durability.is_some() {
            self.check_global(&mutation)?;
        }
        if let Some(log) = self.durability.as_mut() {
            log.append(&mutation)?;
        }
        let effect = self.apply_routed(mutation)?;
        self.snapshot_on_cadence();
        Ok(effect)
    }

    /// Apply a run of mutations with group-committed durability: each
    /// mutation validates individually against the current global state
    /// (`check_global` stays per-record, so the log never holds an
    /// unreplayable record), maximal valid runs append as **one** WAL
    /// batch record — one fsync acknowledges the whole run — applies
    /// follow in sequence order, and the returned outcomes (effect plus
    /// the [`Self::front_epoch`] after that mutation) are bit-identical
    /// to calling [`Self::mutate`] once per element, in order.
    ///
    /// Validating against the *pre-run* state is sound for the
    /// non-destructive vocabulary: an `InsertSpec` check is
    /// state-independent, and `AddExecution` / `SetPolicy` need only
    /// entry existence and the immutable spec structure, neither of which
    /// a non-destructive predecessor can revoke. `DeleteSpec` (and, kept
    /// conservative, `EditSpec`) break that monotonicity — a record
    /// validated while its target was still live would be unreplayable —
    /// so the run carries a destructive overlay: a mutation referencing a
    /// spec the pending run already deleted or edited flushes the run
    /// first and validates against the applied state, exactly the state
    /// the sequential reference would have shown it. A mutation that
    /// *fails* the pre-run check likewise flushes the pending run first
    /// and re-validates against the updated state.
    ///
    /// Without an attached log this degenerates to sequential
    /// [`Self::mutate`] calls (there is no fsync to amortize).
    pub fn mutate_batch(&mut self, mutations: Vec<Mutation>) -> Vec<(Result<MutationEffect>, u64)> {
        if self.durability.is_none() {
            return mutations
                .into_iter()
                .map(|mutation| {
                    let result = self.mutate(mutation);
                    (result, self.front_epoch())
                })
                .collect();
        }
        let mut out = Vec::with_capacity(mutations.len());
        let mut run: Vec<Mutation> = Vec::new();
        let mut run_destructive: HashSet<SpecId> = HashSet::new();
        for mutation in mutations {
            if referenced_conflicts(&mutation, &run_destructive) {
                self.flush_run(&mut run, &mut out);
                run_destructive.clear();
            }
            match self.check_global(&mutation) {
                Ok(()) => {
                    note_destructive(&mutation, &mut run_destructive);
                    run.push(mutation);
                }
                Err(e) => {
                    if run.is_empty() {
                        out.push((Err(e), self.front_epoch()));
                    } else {
                        self.flush_run(&mut run, &mut out);
                        run_destructive.clear();
                        match self.check_global(&mutation) {
                            Ok(()) => {
                                note_destructive(&mutation, &mut run_destructive);
                                run.push(mutation);
                            }
                            Err(e) => out.push((Err(e), self.front_epoch())),
                        }
                    }
                }
            }
        }
        self.flush_run(&mut run, &mut out);
        self.snapshot_on_cadence();
        out
    }

    /// [`Self::mutate_batch`] with the covering fsync pipelined: maximal
    /// valid runs append through
    /// [`DurableLog::append_batch_pipelined`], so this returns — and the
    /// caller may admit the next batch — while the fsync covering the
    /// runs is still in flight on the sync pool.
    ///
    /// For every run that reaches the log, `on_run_durable(range)` is
    /// called once to mint the run's durability callback; `range` indexes
    /// the *input* `mutations` (equivalently the returned outcomes) the
    /// run covers. The callback fires on the sync job's thread with the
    /// run's durability verdict — `Ok` only after the covering fsync.
    /// **Nothing in the returned outcomes is acknowledgeable until its
    /// run's callback reports `Ok`**: an in-memory `Ok(effect)` whose
    /// callback later reports `Err` must surface to the client as a
    /// durability failure. Mutations that fail validation never join a
    /// run and mint no callback — their `Err` outcome is final; a run
    /// whose append errs synchronously still fires its callback (with an
    /// error), so counting fired callbacks against minted ones is a sound
    /// completion barrier.
    ///
    /// Cadence snapshots still fire here and may cover appended-but-
    /// unacked records: the snapshot itself is durable, so recovery keeps
    /// (never loses) those records — acknowledgement order is unchanged.
    pub fn mutate_batch_pipelined(
        &mut self,
        mutations: Vec<Mutation>,
        mut on_run_durable: impl FnMut(Range<usize>) -> DurableCallback,
    ) -> Vec<(Result<MutationEffect>, u64)> {
        if self.durability.is_none() {
            // No log, nothing to pipeline: every outcome is final at
            // return, and the caller's completion path needs no callback.
            return self.mutate_batch(mutations);
        }
        let mut out = Vec::with_capacity(mutations.len());
        let mut run: Vec<Mutation> = Vec::new();
        let mut run_destructive: HashSet<SpecId> = HashSet::new();
        for mutation in mutations {
            if referenced_conflicts(&mutation, &run_destructive) {
                self.flush_run_pipelined(&mut run, &mut out, &mut on_run_durable);
                run_destructive.clear();
            }
            match self.check_global(&mutation) {
                Ok(()) => {
                    note_destructive(&mutation, &mut run_destructive);
                    run.push(mutation);
                }
                Err(e) => {
                    if run.is_empty() {
                        out.push((Err(e), self.front_epoch()));
                    } else {
                        self.flush_run_pipelined(&mut run, &mut out, &mut on_run_durable);
                        run_destructive.clear();
                        match self.check_global(&mutation) {
                            Ok(()) => {
                                note_destructive(&mutation, &mut run_destructive);
                                run.push(mutation);
                            }
                            Err(e) => out.push((Err(e), self.front_epoch())),
                        }
                    }
                }
            }
        }
        self.flush_run_pipelined(&mut run, &mut out, &mut on_run_durable);
        self.snapshot_on_cadence();
        out
    }

    /// Append `run` as one pipelined group-commit record and apply it in
    /// order. The run's callback fires exactly once on every path: a
    /// synchronous append failure fires it with an error before the `Err`
    /// outcomes are pushed, an `Ok` append hands it the covering fsync's
    /// verdict.
    fn flush_run_pipelined(
        &mut self,
        run: &mut Vec<Mutation>,
        out: &mut Vec<(Result<MutationEffect>, u64)>,
        on_run_durable: &mut impl FnMut(Range<usize>) -> DurableCallback,
    ) {
        if run.is_empty() {
            return;
        }
        let batch = std::mem::take(run);
        let range = out.len()..out.len() + batch.len();
        let log = self.durability.as_mut().expect("pipelined flush is the durable path");
        if let Err(e) = log.append_batch_pipelined(&batch, on_run_durable(range)) {
            let detail = e.to_string();
            for _ in &batch {
                out.push((
                    Err(ModelError::invalid(format!("durability: {detail}"))),
                    self.front_epoch(),
                ));
            }
            return;
        }
        for mutation in batch {
            let effect = self.apply_routed(mutation);
            debug_assert!(effect.is_ok(), "a checked, appended mutation must apply");
            out.push((effect, self.front_epoch()));
        }
    }

    /// Append `run` as one group-commit record, apply it in order, and
    /// push each mutation's outcome. A failed append acknowledges
    /// nothing: every member reports the durability error and no shard
    /// changes — the same all-or-nothing contract as a single append.
    fn flush_run(&mut self, run: &mut Vec<Mutation>, out: &mut Vec<(Result<MutationEffect>, u64)>) {
        if run.is_empty() {
            return;
        }
        let batch = std::mem::take(run);
        let log = self.durability.as_mut().expect("flush_run is the durable path");
        if let Err(e) = log.append_batch(&batch) {
            // Mirror the single-append error shape (`From<WalError>`).
            let detail = e.to_string();
            for _ in &batch {
                out.push((
                    Err(ModelError::invalid(format!("durability: {detail}"))),
                    self.front_epoch(),
                ));
            }
            return;
        }
        for mutation in batch {
            let effect = self.apply_routed(mutation);
            debug_assert!(effect.is_ok(), "a checked, appended mutation must apply");
            out.push((effect, self.front_epoch()));
        }
    }

    /// Route one validated (and, when durable, already-appended) mutation
    /// to its owning shard.
    fn apply_routed(&mut self, mutation: Mutation) -> Result<MutationEffect> {
        match mutation {
            Mutation::InsertSpec { spec, policy } => self
                .insert_spec_routed(spec, policy)
                .map(|spec| MutationEffect::SpecInserted { spec }),
            Mutation::AddExecution { spec, exec } => self
                .add_execution_routed(spec, exec)
                .map(|()| MutationEffect::ExecutionAppended { spec }),
            Mutation::SetPolicy { spec, policy } => self
                .set_policy_routed(spec, policy)
                .map(|()| MutationEffect::PolicyChanged { spec }),
            Mutation::DeleteSpec { spec } => {
                self.delete_spec_routed(spec).map(|()| MutationEffect::SpecDeleted { spec })
            }
            Mutation::EditSpec { spec, text } => {
                self.edit_spec_routed(spec, text).map(|()| MutationEffect::SpecEdited { spec })
            }
        }
    }

    /// Resolve a global id that must name a live spec: retired ids report
    /// the same "spec deleted" error a single engine's repository does
    /// (the property harness compares error text bit-for-bit), and ids
    /// that were never assigned report the id-space bound — which counts
    /// tombstone slots, exactly like a repository's `len`.
    fn locate_live(&self, spec: SpecId) -> Result<(usize, SpecId)> {
        if self.router.is_retired(spec) {
            return Err(deleted_spec_error(spec));
        }
        self.router.locate(spec).ok_or(ModelError::BadId {
            kind: "spec",
            index: spec.index(),
            len: self.router.spec_count(),
        })
    }

    /// Cadence snapshots for the durable write paths: build a
    /// copy-on-write image — only the chunks the log saw dirtied since
    /// the last snapshot are cloned out of the shards; clean chunks ride
    /// along as manifest references — stamp it with the appended sequence
    /// number (the assembly loses the global mutation count — see
    /// [`Repository::set_version`]), and hand it to the log: inline, or
    /// as a background pool job when the policy opts in. Against the old
    /// whole-image clone this shrinks both the pause (O(dirty chunks)
    /// cloning) and the write volume (clean chunks are never
    /// re-serialized).
    fn snapshot_on_cadence(&mut self) {
        // The in-flight check keeps a busy background snapshot from
        // charging the write path a wasted image assembly every cadence.
        if !self
            .durability
            .as_ref()
            .is_some_and(|log| log.snapshot_due() && !log.background_snapshot_in_flight())
        {
            return;
        }
        let spec_count = self.router.spec_count();
        let log = self.durability.as_mut().expect("presence checked above");
        let plan = log.snapshot_chunk_plan(spec_count);
        let version = log.stats().last_seq;
        // Retired globals serialize as tombstone slots (flag 0), keeping
        // chunk math aligned with the id space. A live router slot whose
        // shard entry is missing is an id-map inconsistency: skip this
        // cadence rather than persist a wrong image or panic the write
        // path — the WAL already holds every record, so recovery is
        // unaffected and a later cadence (or restart) retries.
        let mut stale_route = false;
        let chunks: Vec<CowChunk> = plan
            .iter()
            .enumerate()
            .map(|(c, reuse)| match reuse {
                Some(r) => CowChunk::Clean(*r),
                None => {
                    let lo = c * CHUNK_SPECS;
                    let hi = spec_count.min(lo + CHUNK_SPECS);
                    CowChunk::Dirty(
                        (lo..hi)
                            .map(|global| {
                                let global = SpecId(global as u32);
                                if self.router.is_retired(global) {
                                    return None;
                                }
                                let entry =
                                    self.router.locate(global).and_then(|(shard, local)| {
                                        self.shards[shard].repo().entry(local)
                                    });
                                if entry.is_none() {
                                    stale_route = true;
                                }
                                entry.cloned()
                            })
                            .collect(),
                    )
                }
            })
            .collect();
        if stale_route {
            return;
        }
        let log = self.durability.as_mut().expect("presence checked above");
        log.snapshot_if_due_cow(CowImage { version, chunks });
    }

    /// The validation the routed apply would run, without applying — the
    /// cluster-level analogue of [`Repository::check`], against global
    /// ids. Keeping it in lockstep with `insert_spec_routed` /
    /// `add_execution` / `set_policy` is what makes appended records
    /// replayable by construction.
    fn check_global(&self, mutation: &Mutation) -> Result<()> {
        match mutation {
            Mutation::InsertSpec { spec, policy } => policy.validate(spec),
            Mutation::AddExecution { spec, exec } => {
                exec.check_invariants()?;
                let (shard, local) = self.locate_live(*spec)?;
                let entry = self.shards[shard]
                    .repo()
                    .entry(local)
                    .ok_or_else(|| stale_route_error(*spec))?;
                if exec.spec_name() != entry.spec.name() {
                    return Err(ModelError::invalid(format!(
                        "execution of `{}` added under spec `{}`",
                        exec.spec_name(),
                        entry.spec.name()
                    )));
                }
                Ok(())
            }
            Mutation::SetPolicy { spec, policy } => {
                let (shard, local) = self.locate_live(*spec)?;
                let entry = self.shards[shard]
                    .repo()
                    .entry(local)
                    .ok_or_else(|| stale_route_error(*spec))?;
                policy.validate(&entry.spec)
            }
            Mutation::DeleteSpec { spec } => {
                let (shard, local) = self.locate_live(*spec)?;
                self.shards[shard].repo().check_delete(local)
            }
            Mutation::EditSpec { spec, text } => {
                let (shard, local) = self.locate_live(*spec)?;
                self.shards[shard].repo().check_edit(local, text)
            }
        }
    }

    /// Insert a specification; returns its global id. Routes through
    /// [`Self::mutate`], so with durability attached the insert is logged
    /// like any other write.
    pub fn insert_spec(&mut self, spec: Specification, policy: Policy) -> Result<SpecId> {
        let effect = self.mutate(Mutation::InsertSpec { spec, policy })?;
        Ok(effect.inserted_id().expect("insert effect carries the new id"))
    }

    /// Record an execution of the spec with global id `spec`. Routes
    /// through [`Self::mutate`] (durable when a log is attached).
    pub fn add_execution(&mut self, spec: SpecId, exec: Execution) -> Result<()> {
        self.mutate(Mutation::AddExecution { spec, exec }).map(|_| ())
    }

    /// Replace the policy of the spec with global id `spec`. Routes
    /// through [`Self::mutate`] (durable when a log is attached).
    pub fn set_policy(&mut self, spec: SpecId, policy: Policy) -> Result<()> {
        self.mutate(Mutation::SetPolicy { spec, policy }).map(|_| ())
    }

    fn insert_spec_routed(&mut self, spec: Specification, policy: Policy) -> Result<SpecId> {
        // Validate before assigning a global id, so a rejected insert never
        // burns a router slot (the inner insert re-validates, infallibly).
        policy.validate(&spec)?;
        let (global, shard, local) = self.router.assign();
        let effect = self.shards[shard]
            .mutate(Mutation::InsertSpec { spec, policy })
            .expect("policy pre-validated");
        debug_assert_eq!(effect.inserted_id(), Some(local));
        self.refresh_registry_view(shard, global);
        Ok(global)
    }

    fn add_execution_routed(&mut self, spec: SpecId, exec: Execution) -> Result<()> {
        let (shard, local) = self.locate_live(spec)?;
        let effect = self.shards[shard].mutate(Mutation::AddExecution { spec: local, exec })?;
        debug_assert!(!effect.changes_visible_state());
        Ok(())
    }

    fn set_policy_routed(&mut self, spec: SpecId, policy: Policy) -> Result<()> {
        let (shard, local) = self.locate_live(spec)?;
        self.shards[shard].mutate(Mutation::SetPolicy { spec: local, policy })?;
        Ok(())
    }

    /// Delete the spec with global id `spec`: the owning shard retracts
    /// its postings and tombstones the local slot, the router retires the
    /// global id (it is never reassigned and never routes again), and —
    /// when a registry override named the spec — the shard's registry
    /// view is rebuilt so the override no longer maps to the dead slot.
    /// The owning shard's version-vector component moves, so every front
    /// cache entry merged at the old epoch is unreachable.
    fn delete_spec_routed(&mut self, spec: SpecId) -> Result<()> {
        let (shard, local) = self.locate_live(spec)?;
        self.shards[shard].mutate(Mutation::DeleteSpec { spec: local })?;
        self.router.retire(spec);
        self.refresh_registry_view(shard, spec);
        Ok(())
    }

    /// Revise the searchable text of the spec with global id `spec` in
    /// place. Text lives entirely inside the owning shard's entry and
    /// index — registry overrides key on ids, not text — so no registry
    /// view work is needed; the shard re-indexes the spec and its
    /// version-vector component moves.
    fn edit_spec_routed(&mut self, spec: SpecId, text: SpecText) -> Result<()> {
        let (shard, local) = self.locate_live(spec)?;
        self.shards[shard].mutate(Mutation::EditSpec { spec: local, text })?;
        Ok(())
    }

    /// Registry-view maintenance for the writes that can alter how
    /// registry overrides map onto a shard: an insert maps an override
    /// that was unmapped while the spec did not exist, and a delete
    /// unmaps one (the retired id no longer routes, so the rebuilt view
    /// drops it). Execution appends change nothing principal-visible,
    /// and policy swaps and text edits live entirely inside the
    /// repository entry, so those paths never call this; even inserts
    /// and deletes rebuild only when a matching override exists.
    /// [`Self::registry_view_rebuilds`] counts the rebuilds this gate
    /// lets through.
    fn refresh_registry_view(&mut self, shard: usize, global: SpecId) {
        if self.registry.groups().iter().any(|g| g.overrides.contains_key(&global)) {
            let view = shard_view_of_registry(&self.registry, &self.router, shard);
            self.shards[shard].set_registry(view);
            self.registry_view_rebuilds += 1;
        }
    }

    /// Lifetime count of per-shard registry-view rebuilds triggered by
    /// routed writes — stays at zero for execution appends and policy
    /// swaps, and for inserts without a matching override.
    pub fn registry_view_rebuilds(&self) -> u64 {
        self.registry_view_rebuilds
    }

    /// Replace the registry cluster-wide: every shard receives its remapped
    /// view and clears its result caches, and the front caches drop too
    /// (group names may now mean different privileges — version tags
    /// cannot see registry changes).
    pub fn set_registry(&mut self, registry: PrincipalRegistry) {
        self.registry = registry;
        for s in 0..self.shards.len() {
            let view = shard_view_of_registry(&self.registry, &self.router, s);
            self.shards[s].set_registry(view);
        }
        self.front_keyword.clear();
        for cache in &self.front_private {
            cache.clear();
        }
        self.front_ranked.clear();
    }

    /// Per-shard snapshots plus the cluster rollup and front-cache
    /// counters.
    pub fn stats(&self) -> ClusterStats {
        let per_shard: Vec<EngineStats> = self.shards.iter().map(|s| s.stats()).collect();
        let aggregate = EngineStats::merged(&per_shard);
        let front = CacheSnapshot::of(self.front_keyword.stats())
            .merge(CacheSnapshot::sum(self.front_private.iter().map(|c| c.stats())))
            .merge(self.front_ranked.snapshot());
        ClusterStats { per_shard, aggregate, front }
    }
}

/// The registry as shard `s` must see it: per-spec overrides re-keyed from
/// global ids to the shard's local ids, overrides for foreign specs
/// dropped. Default rules and clearance levels pass through unchanged.
fn shard_view_of_registry(
    registry: &PrincipalRegistry,
    router: &Router,
    shard: usize,
) -> PrincipalRegistry {
    registry.map_spec_ids(|global| {
        router.locate(global).and_then(|(s, local)| (s == shard).then_some(local))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppwf_core::policy::AccessLevel;
    use ppwf_model::fixtures;
    use ppwf_repo::principals::ViewRule;

    fn registry() -> PrincipalRegistry {
        let mut registry = PrincipalRegistry::new();
        registry.add_group("public", AccessLevel(0), ViewRule::RootOnly);
        registry.add_group("researchers", AccessLevel(3), ViewRule::Full);
        registry
    }

    fn corpus(n: usize) -> Repository {
        let mut repo = Repository::new();
        for _ in 0..n {
            let (spec, _) = fixtures::disease_susceptibility();
            repo.insert_spec(spec, Policy::public()).unwrap();
        }
        repo
    }

    fn cluster(specs: usize, shards: usize) -> EngineCluster {
        EngineCluster::new(corpus(specs), registry(), shards)
    }

    #[test]
    fn gathers_all_shards_in_global_order() {
        let c = cluster(5, 2);
        let hits = c.search_as("researchers", "risk").unwrap();
        assert_eq!(hits.len(), 5, "every shard contributes its specs");
        let ids: Vec<u32> = hits.iter().map(|h| h.spec.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4], "global spec order");
    }

    #[test]
    fn agrees_with_single_engine() {
        let c = cluster(4, 3);
        let single = QueryEngine::new(corpus(4), registry());
        for group in ["public", "researchers"] {
            for q in ["risk", "database", "Database, Disorder Risks", "nonexistent"] {
                let clustered = c.search_as(group, q).unwrap();
                let reference = single.search_as(group, q).unwrap();
                assert_eq!(clustered.len(), reference.len(), "{group}/{q}");
                for (a, b) in clustered.iter().zip(reference.iter()) {
                    assert_eq!(a.spec, b.spec);
                    assert_eq!(a.prefix, b.prefix);
                    assert_eq!(a.matched, b.matched);
                }
            }
        }
    }

    #[test]
    fn groups_never_share_answers() {
        let c = cluster(2, 2);
        assert_eq!(c.search_as("researchers", "database").unwrap().len(), 2);
        assert_eq!(c.search_as("public", "database").unwrap().len(), 0);
        assert_eq!(c.stats().aggregate.keyword.hits, 0, "distinct groups cannot hit");
    }

    #[test]
    fn unknown_group_is_refused() {
        let c = cluster(2, 2);
        assert!(c.search_as("nobody", "risk").is_none());
        assert!(c.private_search_as("nobody", "risk", Plan::FilterThenSearch).is_none());
        assert!(c.ranked_search_as("nobody", "risk", RankingMode::ExactFull).is_none());
    }

    #[test]
    fn mutation_routes_and_invalidates() {
        let mut c = cluster(3, 2);
        assert_eq!(c.search_as("researchers", "risk").unwrap().len(), 3);
        let (spec, _) = fixtures::disease_susceptibility();
        let id = c
            .mutate(Mutation::InsertSpec { spec, policy: Policy::public() })
            .unwrap()
            .inserted_id()
            .expect("insert returns id");
        assert_eq!(id, SpecId(3), "global ids are dense");
        assert_eq!(c.spec_count(), 4);
        assert_eq!(
            c.search_as("researchers", "risk").unwrap().len(),
            4,
            "stale answer served after insert"
        );
    }

    #[test]
    fn execution_and_policy_route_by_global_id() {
        let mut c = cluster(4, 3);
        let spec_entry = c.entry(SpecId(2)).unwrap();
        let exec = fixtures::disease_susceptibility_execution(&spec_entry.spec);
        c.mutate(Mutation::AddExecution { spec: SpecId(2), exec }).unwrap();
        let (shard, local) = c.router().locate(SpecId(2)).unwrap();
        assert_eq!(c.shards()[shard].repo().entry(local).unwrap().executions.len(), 1);
        c.mutate(Mutation::SetPolicy { spec: SpecId(2), policy: Policy::public() }).unwrap();
        // Unknown global ids report the cluster-wide spec count.
        let err = c.set_policy(SpecId(99), Policy::public()).unwrap_err();
        match err {
            ModelError::BadId { len, .. } => assert_eq!(len, 4),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn overrides_remap_to_owning_shard() {
        let mut registry = registry();
        // Tighten researchers on global spec 1 only.
        registry.set_override(1, SpecId(1), ViewRule::RootOnly);
        let c = EngineCluster::new(corpus(3), registry, 2);
        let hits = c.search_as("researchers", "database").unwrap();
        // "database" matches M5 (deep in W4): visible on specs 0 and 2,
        // overridden away on spec 1.
        let ids: Vec<u32> = hits.iter().map(|h| h.spec.0).collect();
        assert_eq!(ids, vec![0, 2], "override applied to the right global spec");
    }

    #[test]
    fn registry_swap_reaches_every_shard() {
        let mut c = cluster(2, 2);
        assert_eq!(c.search_as("public", "database").unwrap().len(), 0);
        let mut open = PrincipalRegistry::new();
        open.add_group("public", AccessLevel(3), ViewRule::Full);
        c.set_registry(open);
        assert_eq!(
            c.search_as("public", "database").unwrap().len(),
            2,
            "stale coarse answer served after privilege change"
        );
    }

    #[test]
    fn stats_roll_up_across_shards() {
        let c = cluster(4, 2);
        c.search_as("researchers", "risk").unwrap();
        c.search_as("researchers", "risk").unwrap();
        let stats = c.stats();
        assert_eq!(stats.per_shard.len(), 2);
        let summed: u64 = stats.per_shard.iter().map(|s| s.keyword.hits).sum();
        assert_eq!(stats.aggregate.keyword.hits, summed);
        // The warm request is absorbed by the cluster front; shard caches
        // see only the cold scatter.
        assert_eq!(stats.front.hits, 1);
        assert_eq!(stats.front.misses, 1);
        assert!(stats.aggregate.keyword.misses > 0);
        assert_eq!(stats.keyword_hit_rates().len(), 2);
    }

    #[test]
    fn access_resolution_is_lazy_per_shard() {
        let c = cluster(6, 3);
        // No candidate postings anywhere: no shard resolves a single rule.
        c.search_as("researchers", "unobtainium").unwrap();
        assert_eq!(c.stats().aggregate.access.misses, 0, "empty scatter must resolve nothing");
        // A real query: each targeted shard resolves only its local
        // candidates, so the cluster-wide total is bounded by the corpus.
        c.search_as("researchers", "database").unwrap();
        let stats = c.stats();
        assert!(stats.aggregate.access.misses > 0);
        assert!(stats.aggregate.access.misses <= 6);
    }

    #[test]
    fn zero_lookup_rates_are_zero_not_nan() {
        let c = cluster(2, 2);
        let stats = c.stats();
        assert_eq!(stats.aggregate_keyword_hit_rate(), 0.0);
        assert!(stats.keyword_hit_rates().iter().all(|r| *r == 0.0));
    }

    #[test]
    fn pruned_shards_still_shape_ranking_statistics() {
        let c = cluster(4, 4);
        let single = QueryEngine::new(corpus(4), registry());
        let answer = c.ranked_search_as("researchers", "database", RankingMode::ExactFull).unwrap();
        let (shits, sranked) =
            single.ranked_search_as("researchers", "database", RankingMode::ExactFull).unwrap();
        assert_eq!(answer.hits.len(), shits.len());
        assert_eq!(answer.ranked.order, sranked.order);
        assert_eq!(answer.ranked.scores, sranked.scores, "IDF must be corpus-global");
    }

    #[test]
    fn front_cache_serves_warm_requests_without_scatter() {
        let c = cluster(4, 2);
        let cold = c.search_as("researchers", "risk").unwrap();
        let before = c.stats();
        let warm = c.search_as("researchers", "risk").unwrap();
        assert!(Arc::ptr_eq(&cold, &warm), "warm request must share the merged answer");
        let after = c.stats();
        assert_eq!(after.front.hits, before.front.hits + 1);
        assert_eq!(
            after.aggregate.keyword.hits + after.aggregate.keyword.misses,
            before.aggregate.keyword.hits + before.aggregate.keyword.misses,
            "a front hit must not touch any shard"
        );
    }

    #[test]
    fn execution_appends_keep_the_front_cache_warm() {
        let mut c = cluster(3, 2);
        let cold = c.search_as("researchers", "risk").unwrap();
        let vector = c.version_vector();
        let exec = {
            let entry = c.entry(SpecId(1)).unwrap();
            fixtures::disease_susceptibility_execution(&entry.spec)
        };
        let effect = c.mutate(Mutation::AddExecution { spec: SpecId(1), exec }).unwrap();
        assert!(!effect.changes_visible_state());
        assert_eq!(c.version_vector(), vector, "provenance appends must not move the vector");
        let warm = c.search_as("researchers", "risk").unwrap();
        assert!(Arc::ptr_eq(&cold, &warm), "the merged answer must survive the append");
        assert_eq!(c.registry_view_rebuilds(), 0);
    }

    #[test]
    fn answer_changing_writes_move_only_the_owning_component() {
        let mut c = cluster(4, 2);
        c.search_as("researchers", "risk").unwrap();
        let before = c.version_vector();
        // Policy swap on global spec 1 → shard 1 under round-robin.
        c.mutate(Mutation::SetPolicy { spec: SpecId(1), policy: Policy::public() }).unwrap();
        let after = c.version_vector();
        assert_eq!(before.len(), after.len());
        let moved: Vec<usize> = (0..before.len()).filter(|&s| before[s] != after[s]).collect();
        assert_eq!(moved.len(), 1, "exactly the owning shard's component moves");
        // The stale front entry is unreachable at the new epoch: the next
        // request re-merges.
        let stats_before = c.stats();
        c.search_as("researchers", "risk").unwrap();
        let stats_after = c.stats();
        assert_eq!(stats_after.front.hits, stats_before.front.hits, "no stale front hit");
        assert!(stats_after.front.misses > stats_before.front.misses);
    }

    fn edit_of(spec: SpecId) -> Mutation {
        use ppwf_repo::mutation::ModuleTextEdit;
        let (_, m) = fixtures::disease_susceptibility();
        Mutation::EditSpec {
            spec,
            text: SpecText {
                edits: vec![ModuleTextEdit {
                    module: m.m5,
                    name: "Sanitized".into(),
                    keywords: vec!["redacted".into()],
                }],
            },
        }
    }

    #[test]
    fn destructive_mutations_agree_with_single_engine() {
        let mut c = cluster(4, 3);
        let mut single = QueryEngine::new(corpus(4), registry());
        for m in [Mutation::DeleteSpec { spec: SpecId(1) }, edit_of(SpecId(2))] {
            assert_eq!(c.mutate(m.clone()).unwrap(), single.mutate(m).unwrap());
        }
        for q in ["database", "redacted", "risk"] {
            let clustered = c.search_as("researchers", q).unwrap();
            let reference = single.search_as("researchers", q).unwrap();
            assert_eq!(clustered.len(), reference.len(), "{q}");
            for (a, b) in clustered.iter().zip(reference.iter()) {
                assert_eq!((a.spec, &a.prefix, &a.matched), (b.spec, &b.prefix, &b.matched), "{q}");
            }
            let answer = c.ranked_search_as("researchers", q, RankingMode::ExactFull).unwrap();
            let (_, ranked) =
                single.ranked_search_as("researchers", q, RankingMode::ExactFull).unwrap();
            assert_eq!(answer.ranked.order, ranked.order, "{q}");
            assert_eq!(
                answer.ranked.scores, ranked.scores,
                "post-delete IDF must stay corpus-global: {q}"
            );
        }
    }

    #[test]
    fn retired_ids_refuse_every_routed_write_with_the_single_engine_error() {
        let mut c = cluster(3, 2);
        c.mutate(Mutation::DeleteSpec { spec: SpecId(0) }).unwrap();
        let expected = deleted_spec_error(SpecId(0)).to_string();
        let exec = {
            let entry = c.entry(SpecId(1)).unwrap();
            fixtures::disease_susceptibility_execution(&entry.spec)
        };
        let writes = [
            Mutation::DeleteSpec { spec: SpecId(0) },
            Mutation::AddExecution { spec: SpecId(0), exec },
            Mutation::SetPolicy { spec: SpecId(0), policy: Policy::public() },
            edit_of(SpecId(0)),
        ];
        for m in writes {
            assert_eq!(c.mutate(m).unwrap_err().to_string(), expected);
        }
        // Out-of-range ids still report the full id space, tombstones
        // included — the same `len` a single engine's repository shows.
        match c.mutate(Mutation::DeleteSpec { spec: SpecId(99) }).unwrap_err() {
            ModelError::BadId { len, .. } => assert_eq!(len, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn assembled_repository_preserves_tombstones_and_ids_never_reroute() {
        let mut c = cluster(4, 2);
        c.mutate(Mutation::DeleteSpec { spec: SpecId(1) }).unwrap();
        assert_eq!(c.router().spec_count(), 4, "retired ids keep their slots");
        assert_eq!(c.router().live_count(), 3);
        assert!(c.router().locate(SpecId(1)).is_none());
        assert!(c.entry(SpecId(1)).is_none());

        let repo = c.assemble_repository().expect("assembly is total on a consistent cluster");
        assert_eq!(repo.len(), 4, "the snapshot image preserves the id space");
        assert_eq!(repo.live_count(), 3);
        assert!(repo.entry(SpecId(1)).is_none());
        assert!(repo.entry(SpecId(3)).is_some());

        // The retired id is never reassigned: the next insert extends the
        // id space past it.
        let (spec, _) = fixtures::disease_susceptibility();
        let id = c
            .mutate(Mutation::InsertSpec { spec, policy: Policy::public() })
            .unwrap()
            .inserted_id()
            .unwrap();
        assert_eq!(id, SpecId(4));
    }

    #[test]
    fn delete_drops_the_registry_override_from_the_shard_view() {
        let mut registry = registry();
        registry.set_override(1, SpecId(1), ViewRule::RootOnly);
        let mut c = EngineCluster::new(corpus(3), registry, 2);
        assert_eq!(
            c.search_as("researchers", "database")
                .unwrap()
                .iter()
                .map(|h| h.spec.0)
                .collect::<Vec<_>>(),
            vec![0, 2],
            "override hides spec 1's deep modules"
        );
        c.mutate(Mutation::DeleteSpec { spec: SpecId(1) }).unwrap();
        assert_eq!(c.registry_view_rebuilds(), 1, "the delete must rebuild the owning view");
        assert_eq!(
            c.search_as("researchers", "database")
                .unwrap()
                .iter()
                .map(|h| h.spec.0)
                .collect::<Vec<_>>(),
            vec![0, 2],
            "survivors answer unchanged through the rebuilt view"
        );
        // Deletes without a matching override skip the rebuild.
        c.mutate(Mutation::DeleteSpec { spec: SpecId(2) }).unwrap();
        assert_eq!(c.registry_view_rebuilds(), 1);
    }

    #[test]
    fn durable_batches_flush_on_destructive_conflicts_to_match_sequential_order() {
        use ppwf_repo::storage::MemStorage;
        let policy = DurabilityPolicy {
            fsync_each: true,
            group_commit: Some(GroupCommit { max_batch: 16, max_delay_us: 0 }),
            ..DurabilityPolicy::default()
        };
        let durable = |pool: &Arc<WorkerPool>| {
            let storage = Arc::new(MemStorage::new());
            EngineCluster::open_durable(
                storage as Arc<dyn StorageBackend>,
                policy,
                registry(),
                2,
                ShardStrategy::RoundRobin,
                Arc::clone(pool),
            )
            .expect("open durable cluster")
            .0
        };
        let pool = Arc::new(WorkerPool::new(2));
        let mut batched = durable(&pool);
        let mut sequential = durable(&pool);
        for c in [&mut batched, &mut sequential] {
            for _ in 0..2 {
                let (spec, _) = fixtures::disease_susceptibility();
                c.mutate(Mutation::InsertSpec { spec, policy: Policy::public() }).unwrap();
            }
        }
        let exec = {
            let entry = batched.entry(SpecId(0)).unwrap();
            fixtures::disease_susceptibility_execution(&entry.spec)
        };
        let (spec, _) = fixtures::disease_susceptibility();
        let stream = vec![
            Mutation::InsertSpec { spec, policy: Policy::public() },
            Mutation::DeleteSpec { spec: SpecId(0) },
            // Conflicts with the pending delete: the run must flush and
            // this must refuse against the *applied* state.
            Mutation::AddExecution { spec: SpecId(0), exec },
            Mutation::DeleteSpec { spec: SpecId(0) },
            edit_of(SpecId(1)),
            // Conflicts with the pending edit, then succeeds post-flush.
            Mutation::SetPolicy { spec: SpecId(1), policy: Policy::public() },
            Mutation::DeleteSpec { spec: SpecId(1) },
            edit_of(SpecId(1)),
        ];
        let outcomes = batched.mutate_batch(stream.clone());
        let reference: Vec<(Result<MutationEffect>, u64)> = stream
            .into_iter()
            .map(|m| {
                let result = sequential.mutate(m);
                (result, sequential.front_epoch())
            })
            .collect();
        assert_eq!(outcomes.len(), reference.len());
        for (i, ((got, got_epoch), (want, want_epoch))) in
            outcomes.iter().zip(reference.iter()).enumerate()
        {
            match (got, want) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "effect diverges at {i}"),
                (Err(a), Err(b)) => {
                    assert_eq!(a.to_string(), b.to_string(), "error diverges at {i}")
                }
                other => panic!("outcome diverges at {i}: {other:?}"),
            }
            assert_eq!(got_epoch, want_epoch, "epoch diverges at {i}");
        }
        assert_eq!(batched.spec_count(), sequential.spec_count());
        let a = batched.assemble_repository().unwrap();
        let b = sequential.assemble_repository().unwrap();
        assert_eq!(a.live_count(), b.live_count());
        assert_eq!(a.len(), b.len());
    }
}
