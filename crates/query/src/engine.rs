//! The query engine: the paper's Sec. 4 serving stack assembled into one
//! front door.
//!
//! A repository serves *every* privilege level from one store; what varies
//! per request is the principal's **user group**. The engine therefore owns
//! the shared read structures — the keyword index, the
//! [`ViewCache`](ppwf_repo::view_cache::ViewCache) of flattened views — and
//! a [`GroupCache`] per query class, keyed by `(group, query)` exactly as
//! Sec. 4 prescribes: *"consider user groups when utilizing cached
//! information during query processing"*. Two principals of the same group
//! share answers; different groups never do, so fine-grained answers cannot
//! leak into coarse-grained sessions through the cache.
//!
//! Mutations go through [`QueryEngine::mutate`], which consumes a typed
//! [`Mutation`] and keys its maintenance on the returned
//! [`MutationEffect`]: spec inserts *append* to the keyword index
//! ([`KeywordIndex::refresh`] — no full rebuild) and invalidate result
//! caches; policy swaps invalidate results plus only the touched spec's
//! access memo; execution appends — the dominant write, provenance
//! accruing over repeated executions — leave the index, the access memos
//! *and every result cache* untouched, because no keyword, private or
//! ranked answer reads executions. Result caches are therefore tagged with
//! the engine's [`QueryEngine::results_version`], which only moves when an
//! effect can change answers, not with the raw repository version.
//!
//! Cold queries resolve access views **lazily**: the engine holds an
//! [`AccessCache`] whose per-group [`AccessResolver`]s resolve a spec's
//! rule only when that spec shows up in candidate postings (or in a hit
//! being coarsened), memoizing products across queries. The former plan —
//! materializing the group's whole-corpus access map per cold query — made
//! access resolution the dominant cold cost (E12 measures the difference);
//! the filter-then-search privacy invariant is untouched, because postings
//! are still filtered before any search work.

use crate::keyword::{search_filtered_with_cache, KeywordHit, KeywordQuery};
use crate::modes::ModeCaches;
use crate::privacy_exec::{
    filter_then_search_cached, search_then_zoom_out_cached, PrivateSearchOutcome,
};
use crate::ranking::{
    idfs_for_terms, profiles_for_hits, rank_by_scores, scores_for_profiles, RankingMode, TfProfile,
};
use ppwf_model::Result;
use ppwf_repo::cache::{CacheStats, GroupCache};
use ppwf_repo::keyword_index::KeywordIndex;
use ppwf_repo::mutation::{Mutation, MutationEffect};
use ppwf_repo::principals::{AccessCache, AccessResolver, PrincipalRegistry};
use ppwf_repo::repository::Repository;
use ppwf_repo::storage::StorageBackend;
use ppwf_repo::view_cache::ViewCache;
use ppwf_repo::wal::{DurabilityPolicy, DurabilityStats, DurableLog, RecoveryStats, WalResult};
use std::sync::Arc;

/// Which privacy-preserving evaluation plan to run (Sec. 4's contrast).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Plan {
    /// Privacy pushed into the index (the production plan).
    FilterThenSearch,
    /// Oblivious full search, then per-hit coarsening (the costly plan).
    SearchThenZoomOut,
}

impl Plan {
    /// Index into a per-plan cache array (the engine's and the cluster
    /// front's). One cache per plan keeps the warm probe borrow-only — no
    /// composite key to allocate.
    pub(crate) fn slot(self) -> usize {
        match self {
            Plan::FilterThenSearch => 0,
            Plan::SearchThenZoomOut => 1,
        }
    }
}

/// A ranked keyword answer: hit order (best first), scores and profiles
/// aligned with the hit list the keyword cache holds for the same query.
#[derive(Debug)]
pub struct RankedAnswer {
    /// Hit indices, best first.
    pub order: Vec<usize>,
    /// Per-hit score under the requested mode.
    pub scores: Vec<f64>,
    /// Per-hit term-frequency profiles.
    pub profiles: Vec<TfProfile>,
}

impl RankedAnswer {
    /// Whether two answers are *bit*-identical: same order and scores
    /// whose `f64` bit patterns match exactly (no epsilon, no NaN
    /// surprises). This is the equality the serving-equivalence suites
    /// assert — an async or sharded path that merely approximates the
    /// single engine's ranking is a divergence, not a rounding artifact.
    pub fn bitwise_eq(&self, other: &RankedAnswer) -> bool {
        self.order == other.order
            && self.scores.len() == other.scores.len()
            && self.scores.iter().zip(&other.scores).all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

/// Point-in-time counters of one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Cache hits so far.
    pub hits: u64,
    /// Cache misses so far.
    pub misses: u64,
    /// Stale entries dropped so far.
    pub invalidations: u64,
}

impl CacheSnapshot {
    pub(crate) fn of(stats: &CacheStats) -> Self {
        CacheSnapshot {
            hits: stats.hits(),
            misses: stats.misses(),
            invalidations: stats.invalidations(),
        }
    }

    pub(crate) fn sum<'a>(many: impl IntoIterator<Item = &'a CacheStats>) -> Self {
        many.into_iter().fold(CacheSnapshot::default(), |acc, s| CacheSnapshot {
            hits: acc.hits + s.hits(),
            misses: acc.misses + s.misses(),
            invalidations: acc.invalidations + s.invalidations(),
        })
    }

    /// Combine two snapshots (e.g. the same cache class across shards).
    pub fn merge(self, other: CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            invalidations: self.invalidations + other.invalidations,
        }
    }

    /// Hit rate in [0, 1]; defined as 0 when the snapshot records no
    /// lookups at all, so fresh engines and idle shards report 0, never
    /// NaN — and cluster rollups can divide fearlessly.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Counters of every cache layer the engine runs, for operators and
/// E10/E12.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// The `(spec, prefix)` view memo.
    pub views: CacheSnapshot,
    /// The `(group, query)` keyword-answer cache.
    pub keyword: CacheSnapshot,
    /// The `(group, query)` private-search-outcome cache.
    pub private: CacheSnapshot,
    /// The per-mode `(group, query)` ranking caches, summed.
    pub ranked: CacheSnapshot,
    /// The lazy access-view memo: `hits` are memo-served resolutions,
    /// `misses` are rule resolutions actually performed — the E12
    /// instrument (misses ≪ corpus × cold queries is the lazy win).
    pub access: CacheSnapshot,
}

impl EngineStats {
    /// Field-wise sum over many engines' stats — the cluster-level rollup.
    /// Snapshots sum per cache class; rates come from the summed counters,
    /// so shards with zero lookups dilute nothing and divide by nothing.
    pub fn merged<'a>(many: impl IntoIterator<Item = &'a EngineStats>) -> EngineStats {
        many.into_iter().fold(EngineStats::default(), |acc, s| EngineStats {
            views: acc.views.merge(s.views),
            keyword: acc.keyword.merge(s.keyword),
            private: acc.private.merge(s.private),
            ranked: acc.ranked.merge(s.ranked),
            access: acc.access.merge(s.access),
        })
    }
}

/// The assembled serving stack. See the module docs.
pub struct QueryEngine {
    repo: Repository,
    registry: PrincipalRegistry,
    index: KeywordIndex,
    views: ViewCache,
    /// Lazy per-group access-view memos: cold queries resolve rules only
    /// for candidate specs, and the products survive across queries until
    /// a version bump or registry swap.
    access: AccessCache,
    keyword_results: GroupCache<Vec<KeywordHit>>,
    /// One cache per [`Plan`], indexed by [`Plan::slot`].
    private_results: [GroupCache<PrivateSearchOutcome>; 2],
    /// Ranked answers, one `(group, query)` cache per ranking mode — the
    /// bounded [`ModeCaches`] map shared with the cluster front.
    ranked_results: ModeCaches<RankedAnswer>,
    /// The version result caches key their entries by. It advances to the
    /// repository version whenever a [`MutationEffect`] can change
    /// answers (spec inserts, policy swaps) and stays put for execution
    /// appends — so the write-heavy provenance path leaves every warm
    /// `(group, query)` entry servable. Never ahead of `repo.version()`.
    results_version: u64,
    /// When present, every mutation is appended (and, per policy, fsynced)
    /// here *before* it is applied — see [`Self::attach_durability`].
    durability: Option<DurableLog>,
}

impl QueryEngine {
    /// Assemble an engine with default cache capacities (1024 views, 4096
    /// results per query class).
    pub fn new(repo: Repository, registry: PrincipalRegistry) -> Self {
        Self::with_capacities(repo, registry, 1024, 4096)
    }

    /// Assemble with explicit cache capacities.
    pub fn with_capacities(
        repo: Repository,
        registry: PrincipalRegistry,
        view_capacity: usize,
        result_capacity: usize,
    ) -> Self {
        let index = KeywordIndex::build(&repo);
        let results_version = repo.version();
        QueryEngine {
            repo,
            registry,
            index,
            views: ViewCache::new(view_capacity),
            access: AccessCache::new(),
            keyword_results: GroupCache::new(result_capacity),
            private_results: [GroupCache::new(result_capacity), GroupCache::new(result_capacity)],
            ranked_results: ModeCaches::new(result_capacity),
            results_version,
            durability: None,
        }
    }

    /// Recover `(snapshot, WAL suffix)` from `backend` and assemble an
    /// engine over the recovered repository with durability attached —
    /// the restart path. The rebuilt keyword index is bit-identical to
    /// the never-crashed engine's, and because every replayed record was
    /// checksum-verified the engine keeps using the trusted-epoch refresh
    /// fast path from the first post-recovery write.
    pub fn open_durable(
        backend: Arc<dyn StorageBackend>,
        policy: DurabilityPolicy,
        registry: PrincipalRegistry,
    ) -> WalResult<(Self, RecoveryStats)> {
        let opened = DurableLog::open(backend, policy)?;
        let mut engine = QueryEngine::new(opened.repository, registry);
        engine.durability = Some(opened.log);
        Ok((engine, opened.recovery))
    }

    /// Attach a durable log: from here on, [`Self::mutate`] appends (and,
    /// per the log's policy, fsyncs) every mutation before applying it,
    /// and snapshots on the log's cadence. If the log is empty while the
    /// repository is not (durability bolted onto a pre-loaded corpus), a
    /// baseline snapshot is written first so recovery always has a base
    /// covering the pre-log history.
    pub fn attach_durability(&mut self, mut log: DurableLog) -> WalResult<()> {
        if log.is_empty() && !self.repo.is_empty() {
            log.snapshot_now(&self.repo)?;
        }
        self.durability = Some(log);
        Ok(())
    }

    /// Durability counters, when a log is attached.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        self.durability.as_ref().map(|log| log.stats())
    }

    /// Route the attached log's cadence snapshots to `pool`; takes effect
    /// when the log's policy opts in
    /// ([`ppwf_repo::wal::DurabilityPolicy::background_snapshots`]), so
    /// [`Self::mutate`]'s snapshot pause shrinks to cloning only the
    /// copy-on-write chunks dirtied since the last snapshot — clean
    /// chunks ride along by reference and are never re-serialized.
    pub fn set_snapshot_pool(&mut self, pool: Arc<ppwf_repo::pool::WorkerPool>) {
        if let Some(log) = &mut self.durability {
            log.set_snapshot_pool(pool);
        }
    }

    /// Block until no background snapshot is in flight (test/bench
    /// teardown; the write path never waits).
    pub fn wait_for_background_snapshots(&self) {
        if let Some(log) = &self.durability {
            log.wait_for_background_snapshot();
        }
    }

    /// The repository (read-only; mutations go through [`Self::mutate`]).
    pub fn repo(&self) -> &Repository {
        &self.repo
    }

    /// The group registry.
    pub fn registry(&self) -> &PrincipalRegistry {
        &self.registry
    }

    /// The keyword index currently serving queries.
    pub fn index(&self) -> &KeywordIndex {
        &self.index
    }

    /// The shared view cache.
    pub fn views(&self) -> &ViewCache {
        &self.views
    }

    /// Apply a typed repository mutation, keying every layer's maintenance
    /// on the returned [`MutationEffect`]:
    ///
    /// * **spec insert** — the keyword index *appends* the new spec's
    ///   postings ([`KeywordIndex::refresh`], no full rebuild), cached
    ///   views and access memos carry forward (existing specs and
    ///   hierarchies are untouched), and [`Self::results_version`]
    ///   advances so cached answers lazily invalidate;
    /// * **policy swap** — zero index work, only the touched spec's views
    ///   and access memo drop, results invalidate;
    /// * **execution append** — zero index work, views and access memos
    ///   carry forward, and results stay *warm*: provenance is not part
    ///   of any keyword, private or ranked answer;
    /// * **spec delete** — the keyword index retracts exactly the retired
    ///   spec's postings ([`KeywordIndex::delete_spec`], no rebuild), the
    ///   touched spec's views and access memo drop, results invalidate;
    /// * **spec edit** — the keyword index retracts and re-indexes the one
    ///   spec in place ([`KeywordIndex::edit_spec`]), with the same
    ///   per-spec invalidation as a delete.
    ///
    /// A failed mutation (validation error) changes nothing anywhere.
    ///
    /// With durability attached, the mutation is validated against the
    /// current state first (so the log never holds a record that fails on
    /// replay), then appended — and per the log's policy fsynced — and
    /// only then applied; an `Err` from the append means nothing was
    /// acknowledged and nothing changed in memory. Snapshots fire on the
    /// log's cadence after the apply; in background mode they are chunked
    /// copy-on-write images (dirty chunks serialized, clean ones reused
    /// by content-addressed reference). Pipelined commit — overlapping
    /// the covering fsync with the next batch's apply — lives a layer up,
    /// in [`crate::cluster::EngineCluster::mutate_batch_pipelined`] and
    /// the serve front: this single-engine path always acknowledges
    /// inline.
    pub fn mutate(&mut self, mutation: Mutation) -> Result<MutationEffect> {
        if let Some(log) = &mut self.durability {
            self.repo.check(&mutation)?;
            log.append(&mutation)?;
        }
        let effect = self.repo.apply(mutation)?;
        let version = self.repo.version();
        // Index maintenance is keyed on the typed effect. Non-destructive
        // effects take the trusted-epoch refresh: the engine owns this
        // repository and every write is a typed mutation (checked just
        // above when durable), so the per-write O(corpus) fingerprint
        // verification scan is structurally redundant — `refresh_trusted`
        // appends in O(new specs) and degrades to the verifying rebuild
        // if the invariant is ever broken. Destructive effects route to
        // the targeted retraction/re-index paths, which re-sync the
        // structure epoch the trusted shortcut keys on.
        match effect {
            MutationEffect::SpecDeleted { spec } => self.index.delete_spec(&self.repo, spec),
            MutationEffect::SpecEdited { spec } => self.index.edit_spec(&self.repo, spec),
            _ => self.index.refresh_trusted(&self.repo),
        }
        match effect {
            MutationEffect::SpecInserted { .. } => {
                // Existing views and access prefixes read only immutable
                // state (spec structure, hierarchies); carry both forward.
                self.views.advance(version);
                self.access.advance(version);
                self.results_version = version;
            }
            MutationEffect::ExecutionAppended { .. } => {
                self.views.advance(version);
                self.access.advance(version);
            }
            MutationEffect::PolicyChanged { spec }
            | MutationEffect::SpecDeleted { spec }
            | MutationEffect::SpecEdited { spec } => {
                self.views.invalidate_spec(spec, version);
                self.access.invalidate_spec(spec, version);
                self.results_version = version;
            }
        }
        if let Some(log) = &mut self.durability {
            log.snapshot_if_due(&self.repo);
        }
        Ok(effect)
    }

    /// The version result caches are keyed by: advances on effects that
    /// can change answers (inserts, policy swaps), holds still across
    /// execution appends. The cluster's version vector is one of these per
    /// shard.
    pub fn results_version(&self) -> u64 {
        self.results_version
    }

    /// Replace the registry (e.g. a group's access rule changed). Result
    /// caches and the access memo are cleared outright: group keys may now
    /// mean different privileges, and lazy version tags cannot see
    /// registry changes.
    pub fn set_registry(&mut self, registry: PrincipalRegistry) {
        self.registry = registry;
        self.access.clear();
        self.keyword_results.clear();
        for cache in &self.private_results {
            cache.clear();
        }
        self.ranked_results.clear();
    }

    /// A lazy access resolver for `group` at the current repository
    /// version — the cold path's privilege source. Exposed so operators
    /// and tests can drive/inspect resolution directly; query entry points
    /// call it internally after their result-cache probe misses.
    pub fn access_resolver(&self, group: &str) -> Option<AccessResolver<'_>> {
        self.access.resolver(&self.registry, &self.repo, group)
    }

    /// The lazy access memo (counters, memoized sizes).
    pub fn access_cache(&self) -> &AccessCache {
        &self.access
    }

    /// Privilege-filtered keyword search for one group, cached per
    /// `(group, query)`. Returns `None` for unknown groups.
    ///
    /// The cache is probed *before* any access resolution: a warm hit is
    /// one hash lookup plus an `Arc` clone, never a walk of the registry —
    /// that ordering is what E10's warm path measures. A cold miss builds
    /// a lazy [`AccessResolver`], so only specs with candidate postings
    /// pay rule resolution (E12's cold-path lever) — never the whole
    /// corpus, as the former eager `access_map` did.
    pub fn search_as(&self, group: &str, query_text: &str) -> Option<Arc<Vec<KeywordHit>>> {
        let version = self.results_version;
        if let Some(hit) = self.keyword_results.get(group, query_text, version) {
            return Some(hit);
        }
        let access = self.access_resolver(group)?;
        let query = KeywordQuery::parse(query_text);
        let answer = Arc::new(search_filtered_with_cache(
            &self.repo,
            &self.index,
            &query,
            &access,
            &self.views,
        ));
        self.keyword_results.insert(group, query_text, version, Arc::clone(&answer));
        Some(answer)
    }

    /// Privacy-preserving search under an explicit plan, cached per
    /// `(group, query)` in a per-plan cache (so the warm probe stays
    /// borrow-only, like [`Self::search_as`]). Returns `None` for unknown
    /// groups.
    pub fn private_search_as(
        &self,
        group: &str,
        query_text: &str,
        plan: Plan,
    ) -> Option<Arc<PrivateSearchOutcome>> {
        let version = self.results_version;
        let cache = &self.private_results[plan.slot()];
        if let Some(hit) = cache.get(group, query_text, version) {
            return Some(hit);
        }
        let access = self.access_resolver(group)?;
        let query = KeywordQuery::parse(query_text);
        let outcome = Arc::new(match plan {
            Plan::FilterThenSearch => {
                filter_then_search_cached(&self.repo, &self.index, &query, &access, &self.views)
            }
            Plan::SearchThenZoomOut => {
                search_then_zoom_out_cached(&self.repo, &self.index, &query, &access, &self.views)
            }
        });
        cache.insert(group, query_text, version, Arc::clone(&outcome));
        Some(outcome)
    }

    /// Ranked keyword search: the cached hit list for `(group, query)`
    /// scored under `mode`, itself cached per `(group, query)` in a
    /// per-mode cache ([`ModeCaches`]), so repeated ranked queries skip
    /// the TF re-tokenization pass entirely — and the warm probe is
    /// allocation-free like the other layers.
    pub fn ranked_search_as(
        &self,
        group: &str,
        query_text: &str,
        mode: RankingMode,
    ) -> Option<(Arc<Vec<KeywordHit>>, Arc<RankedAnswer>)> {
        let hits = self.search_as(group, query_text)?;
        let version = self.results_version;
        let cache = self.ranked_results.cache(mode);
        let ranked = cache.get_or_compute(group, query_text, version, || {
            let query = KeywordQuery::parse(query_text);
            let profiles = profiles_for_hits(&self.repo, &hits, &query.terms);
            let idfs = idfs_for_terms(&self.index, &query.terms);
            let scores = scores_for_profiles(&idfs, &profiles, mode);
            let order = rank_by_scores(&scores);
            RankedAnswer { order, scores, profiles }
        });
        Some((hits, ranked))
    }

    /// Counters of every cache layer.
    pub fn stats(&self) -> EngineStats {
        let ranked = self.ranked_results.snapshot();
        EngineStats {
            views: CacheSnapshot::of(self.views.stats()),
            keyword: CacheSnapshot::of(self.keyword_results.stats()),
            private: CacheSnapshot::sum(self.private_results.iter().map(|c| c.stats())),
            ranked,
            access: CacheSnapshot::of(self.access.stats()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::MAX_RANKED_MODES;
    use ppwf_core::policy::{AccessLevel, Policy};
    use ppwf_model::fixtures;
    use ppwf_repo::principals::ViewRule;
    use ppwf_repo::repository::SpecId;

    fn engine() -> QueryEngine {
        let mut repo = Repository::new();
        let (spec, _) = fixtures::disease_susceptibility();
        repo.insert_spec(spec, Policy::public()).unwrap();
        let mut registry = PrincipalRegistry::new();
        registry.add_group("public", AccessLevel(0), ViewRule::RootOnly);
        registry.add_group("researchers", AccessLevel(3), ViewRule::Full);
        QueryEngine::new(repo, registry)
    }

    #[test]
    fn repeated_queries_hit_the_group_cache() {
        let e = engine();
        let a = e.search_as("researchers", "Database, Disorder Risks").unwrap();
        assert_eq!(a.len(), 1);
        let b = e.search_as("researchers", "Database, Disorder Risks").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same group must share the cached answer");
        let stats = e.stats();
        assert_eq!(stats.keyword.hits, 1);
        assert_eq!(stats.keyword.misses, 1);
    }

    #[test]
    fn groups_never_share_answers() {
        let e = engine();
        let fine = e.search_as("researchers", "database").unwrap();
        let coarse = e.search_as("public", "database").unwrap();
        assert_eq!(fine.len(), 1, "full access sees the M5 match");
        assert_eq!(coarse.len(), 0, "root-only access must not see it");
        assert_eq!(e.stats().keyword.hits, 0, "distinct groups cannot hit each other");
    }

    #[test]
    fn unknown_group_is_refused() {
        let e = engine();
        assert!(e.search_as("nobody", "database").is_none());
    }

    #[test]
    fn cold_queries_resolve_access_lazily() {
        let e = engine();
        // No candidate postings: no rule may resolve (the eager plan would
        // have walked the whole corpus here).
        e.search_as("researchers", "unobtainium").unwrap();
        assert_eq!(e.stats().access.misses, 0, "no candidates, no rule resolutions");
        // One candidate spec: exactly one rule resolution.
        e.search_as("researchers", "database").unwrap();
        assert_eq!(e.stats().access.misses, 1);
        // Another query over the same spec: the memo serves it.
        e.search_as("researchers", "risk").unwrap();
        assert_eq!(e.stats().access.misses, 1, "memo must absorb the second touch");
        assert!(e.stats().access.hits >= 1);
    }

    #[test]
    fn mutation_invalidates_cached_answers() {
        let mut e = engine();
        let before = e.search_as("researchers", "risk").unwrap();
        assert_eq!(before.len(), 1);
        let (spec, _) = fixtures::disease_susceptibility();
        let effect = e.mutate(Mutation::InsertSpec { spec, policy: Policy::public() }).unwrap();
        assert_eq!(effect.inserted_id(), Some(SpecId(1)));
        let after = e.search_as("researchers", "risk").unwrap();
        assert_eq!(after.len(), 2, "stale single-spec answer served after insert");
        assert!(e.stats().keyword.invalidations >= 1);
    }

    #[test]
    fn insert_appends_to_the_index_without_rebuilding() {
        let mut e = engine();
        assert_eq!(e.index().full_builds(), 1);
        let docs = e.index().docs_indexed();
        let (spec, _) = fixtures::disease_susceptibility();
        e.mutate(Mutation::InsertSpec { spec, policy: Policy::public() }).unwrap();
        assert_eq!(e.index().full_builds(), 1, "insert must append, not rebuild");
        assert_eq!(e.index().docs_indexed(), docs * 2, "only the new spec's modules indexed");
        assert_eq!(e.index().doc_count(), 30);
    }

    #[test]
    fn execution_appends_leave_results_warm_and_index_untouched() {
        let mut e = engine();
        let before = e.search_as("researchers", "risk").unwrap();
        let (full_builds, docs) = (e.index().full_builds(), e.index().docs_indexed());
        let exec = {
            let entry = e.repo().entry(SpecId(0)).unwrap();
            fixtures::disease_susceptibility_execution(&entry.spec)
        };
        let effect = e.mutate(Mutation::AddExecution { spec: SpecId(0), exec }).unwrap();
        assert!(!effect.changes_visible_state());
        assert_eq!(
            (e.index().full_builds(), e.index().docs_indexed()),
            (full_builds, docs),
            "provenance appends must cost zero index work"
        );
        let after = e.search_as("researchers", "risk").unwrap();
        assert!(Arc::ptr_eq(&before, &after), "the cached answer must survive the append");
        let stats = e.stats();
        assert_eq!(stats.keyword.invalidations, 0, "nothing was invalidated");
        assert_eq!(stats.access.misses, 1, "and the access memo was not re-resolved");
        // A *cold* query whose minimal view coincides reuses the carried-
        // forward view instead of rebuilding it at the new version.
        let view_misses = stats.views.misses;
        e.search_as("researchers", "database, pubmed").unwrap();
        let stats = e.stats();
        assert_eq!(stats.views.invalidations, 0, "appends must not stale any view");
        assert!(
            stats.views.hits > 0 || stats.views.misses > view_misses,
            "second query must consult the view cache"
        );
    }

    #[test]
    fn policy_swap_invalidates_results_and_only_the_touched_access_memo() {
        let mut e = engine();
        let (spec, _) = fixtures::disease_susceptibility();
        e.mutate(Mutation::InsertSpec { spec, policy: Policy::public() }).unwrap();
        // Warm: resolves both specs' rules (one candidate posting each).
        e.search_as("researchers", "database").unwrap();
        assert_eq!(e.stats().access.misses, 2);
        let (full_builds, docs) = (e.index().full_builds(), e.index().docs_indexed());

        e.mutate(Mutation::SetPolicy { spec: SpecId(0), policy: Policy::public() }).unwrap();
        assert_eq!(
            (e.index().full_builds(), e.index().docs_indexed()),
            (full_builds, docs),
            "policy swaps must cost zero index work"
        );
        // Results are stale (policies gate privacy-filtered answers)...
        e.search_as("researchers", "database").unwrap();
        assert!(e.stats().keyword.invalidations >= 1);
        // ...but only the swapped spec's access rule re-resolved.
        assert_eq!(e.stats().access.misses, 3, "exactly one re-resolution, not the corpus");
    }

    #[test]
    fn destructive_mutations_use_targeted_maintenance_and_invalidate() {
        use ppwf_repo::mutation::{ModuleTextEdit, SpecText};
        let mut e = engine();
        let (spec, m) = fixtures::disease_susceptibility();
        e.mutate(Mutation::InsertSpec { spec, policy: Policy::public() }).unwrap();
        assert_eq!(e.search_as("researchers", "database").unwrap().len(), 2);

        // Edit spec 1's M5 text: targeted re-index, no rebuild, cached
        // answers for the query drop.
        let effect = e
            .mutate(Mutation::EditSpec {
                spec: SpecId(1),
                text: SpecText {
                    edits: vec![ModuleTextEdit {
                        module: m.m5,
                        name: "Sanitized".into(),
                        keywords: vec!["redacted".into()],
                    }],
                },
            })
            .unwrap();
        assert!(effect.is_destructive());
        assert_eq!(e.index().full_builds(), 1, "edit must use the targeted path, not a rebuild");
        assert_eq!(e.search_as("researchers", "database").unwrap().len(), 1);
        assert_eq!(e.search_as("researchers", "redacted").unwrap().len(), 1);

        // Delete spec 0: its postings retract, the other spec's answers
        // survive, and the tombstone refuses further destructive writes.
        e.mutate(Mutation::DeleteSpec { spec: SpecId(0) }).unwrap();
        assert_eq!(e.index().full_builds(), 1, "delete must use the targeted path");
        assert!(e.index().docs_retracted() > 0);
        assert_eq!(e.search_as("researchers", "database").unwrap().len(), 0);
        assert_eq!(e.search_as("researchers", "redacted").unwrap().len(), 1);
        assert!(e.mutate(Mutation::DeleteSpec { spec: SpecId(0) }).is_err());

        // A later insert still rides the trusted append shortcut: the
        // targeted maintenance re-synced the structure epoch.
        let trusted = e.index().trusted_refreshes();
        let (spec, _) = fixtures::disease_susceptibility();
        e.mutate(Mutation::InsertSpec { spec, policy: Policy::public() }).unwrap();
        assert_eq!(e.index().trusted_refreshes(), trusted + 1);
        assert_eq!(e.index().full_builds(), 1);
    }

    #[test]
    fn private_plans_agree_through_the_engine() {
        let e = engine();
        let filter = e.private_search_as("public", "risk", Plan::FilterThenSearch).unwrap();
        let zoom = e.private_search_as("public", "risk", Plan::SearchThenZoomOut).unwrap();
        assert!(crate::privacy_exec::same_answers(&filter, &zoom));
        // Distinct plans are distinct cache keys.
        assert_eq!(e.stats().private.misses, 2);
    }

    #[test]
    fn ranked_answers_are_cached_and_ordered() {
        let e = engine();
        let (hits, ranked) =
            e.ranked_search_as("researchers", "query", RankingMode::ExactFull).unwrap();
        assert_eq!(ranked.order.len(), hits.len());
        assert_eq!(ranked.scores.len(), hits.len());
        let (_, again) =
            e.ranked_search_as("researchers", "query", RankingMode::ExactFull).unwrap();
        assert!(Arc::ptr_eq(&ranked, &again));
        assert!(e.stats().ranked.hits >= 1);
    }

    #[test]
    fn mode_churn_cannot_grow_the_ranked_map_unboundedly() {
        let e = engine();
        // A fresh NoisyFull seed per request mints a distinct ModeKey each
        // time — the map must evict old modes, not accumulate them.
        let mut last_lookups = 0u64;
        for seed in 0..3 * MAX_RANKED_MODES as u64 {
            e.ranked_search_as(
                "researchers",
                "query",
                RankingMode::NoisyFull { epsilon: 1.0, seed },
            )
            .unwrap();
            // Evictions must not erase history: the counters stay monotone.
            let ranked = e.stats().ranked;
            let lookups = ranked.hits + ranked.misses;
            assert!(lookups >= last_lookups, "ranked counters went backwards");
            last_lookups = lookups;
        }
        assert!(e.ranked_results.mode_count() <= MAX_RANKED_MODES);
        assert_eq!(
            last_lookups,
            3 * MAX_RANKED_MODES as u64,
            "every mode-churn lookup is still accounted for after evictions"
        );
        // A hot mode in steady use survives the churn's evictions.
        e.ranked_search_as("researchers", "query", RankingMode::ExactFull).unwrap();
        for seed in 100..100 + MAX_RANKED_MODES as u64 - 1 {
            e.ranked_search_as(
                "researchers",
                "query",
                RankingMode::NoisyFull { epsilon: 1.0, seed },
            )
            .unwrap();
            e.ranked_search_as("researchers", "query", RankingMode::ExactFull).unwrap();
        }
        assert!(
            e.ranked_results.has_mode(&RankingMode::ExactFull.cache_key()),
            "the constantly-touched mode must not be the eviction victim"
        );
    }

    #[test]
    fn view_cache_warms_across_queries() {
        let e = engine();
        e.search_as("researchers", "Database, Disorder Risks").unwrap();
        let cold_misses = e.stats().views.misses;
        // A different query whose minimal view coincides reuses the cached
        // view instead of rebuilding it.
        e.search_as("researchers", "database, pubmed").unwrap();
        let stats = e.stats();
        assert!(
            stats.views.hits > 0 || stats.views.misses > cold_misses,
            "second query must consult the view cache"
        );
    }

    #[test]
    fn registry_swap_clears_results() {
        let mut e = engine();
        assert_eq!(e.search_as("public", "database").unwrap().len(), 0);
        let mut registry = PrincipalRegistry::new();
        registry.add_group("public", AccessLevel(3), ViewRule::Full);
        e.set_registry(registry);
        assert_eq!(
            e.search_as("public", "database").unwrap().len(),
            1,
            "stale coarse answer served after privilege change"
        );
        let _ = e.repo().entry(SpecId(0)).unwrap();
    }
}
