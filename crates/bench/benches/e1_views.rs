//! E1 — view construction and execution collapse latency vs spec size and
//! hierarchy depth (Sec. 2: views are the access-control primitive, so the
//! paper's design needs them cheap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppwf_bench::{deep_spec, sized_spec, SIZES};
use ppwf_model::exec::{Executor, HashOracle};
use ppwf_model::expand::SpecView;
use ppwf_model::hierarchy::{ExpansionHierarchy, Prefix};
use ppwf_views::exec_view::ExecView;

fn bench_views(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_views");
    group.sample_size(20);
    for &n in &SIZES {
        let spec = sized_spec(11, n);
        let h = ExpansionHierarchy::of(&spec);
        let exec = Executor::new(&spec).run(&mut HashOracle).unwrap();
        group.bench_with_input(BenchmarkId::new("spec_view_full", n), &n, |b, _| {
            b.iter(|| SpecView::build(&spec, &h, &Prefix::full(&h)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("execute", n), &n, |b, _| {
            b.iter(|| Executor::new(&spec).run(&mut HashOracle).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("collapse_root", n), &n, |b, _| {
            b.iter(|| ExecView::build(&spec, &h, &exec, &Prefix::root_only(&h)).unwrap())
        });
    }
    for depth in [1u32, 2, 3, 4] {
        let spec = deep_spec(13, depth);
        let h = ExpansionHierarchy::of(&spec);
        group.bench_with_input(BenchmarkId::new("spec_view_by_depth", depth), &depth, |b, _| {
            b.iter(|| SpecView::build(&spec, &h, &Prefix::full(&h)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_views);
criterion_main!(benches);
