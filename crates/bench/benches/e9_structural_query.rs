//! E9 — structural pattern matching across view granularities (Sec. 4/5:
//! τ vs dataflow edges cannot be ignored).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppwf_bench::{sized_spec, SIZES};
use ppwf_model::expand::SpecView;
use ppwf_model::hierarchy::{ExpansionHierarchy, Prefix};
use ppwf_query::structural::{match_view, NodeMatcher, Pattern, PatternEdge};

fn bench_structural_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_structural_query");
    group.sample_size(10);
    for &n in &SIZES {
        let spec = sized_spec(91, n);
        let h = ExpansionHierarchy::of(&spec);
        let full = SpecView::build(&spec, &h, &Prefix::full(&h)).unwrap();
        let coarse = SpecView::build(&spec, &h, &Prefix::root_only(&h)).unwrap();
        let before = Pattern::before(NodeMatcher::Any, NodeMatcher::Any);
        let chain = Pattern {
            nodes: vec![NodeMatcher::Any, NodeMatcher::Any, NodeMatcher::Any],
            edges: vec![
                PatternEdge { from: 0, to: 1, transitive: false },
                PatternEdge { from: 1, to: 2, transitive: true },
            ],
        };
        group.bench_with_input(BenchmarkId::new("before_full", n), &n, |b, _| {
            b.iter(|| match_view(&spec, &full, &before))
        });
        group.bench_with_input(BenchmarkId::new("before_coarse", n), &n, |b, _| {
            b.iter(|| match_view(&spec, &coarse, &before))
        });
        group.bench_with_input(BenchmarkId::new("chain_full", n), &n, |b, _| {
            b.iter(|| match_view(&spec, &full, &chain))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_structural_query);
criterion_main!(benches);
