//! E10 — the query fast path: cached vs uncached serving (Sec. 4's
//! user-group caching design).
//!
//! Three plans over the same repository and query mix:
//!
//! * `uncached` — what a cacheless server does per request: resolve the
//!   group's access map, run the filtered search, build every answer view
//!   from scratch;
//! * `view_cache` — the same search with only the `(spec, prefix)` view
//!   memo warm (no result caching);
//! * `warm_engine` — the full engine with the group-keyed result cache
//!   warm: one hash probe plus an `Arc` clone per request.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppwf_bench::{populated_repo, query_engine, standard_registry, E10_GROUPS, E10_QUERIES};
use ppwf_query::keyword::{search_filtered, search_filtered_with_cache, KeywordQuery};
use ppwf_repo::keyword_index::KeywordIndex;
use ppwf_repo::view_cache::ViewCache;

fn bench_query_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_query_cache");
    group.sample_size(20);
    for &specs in &[8usize, 16, 32] {
        let repo = populated_repo(specs, 0, 91);
        let index = KeywordIndex::build(&repo);
        let registry = standard_registry();
        let queries: Vec<KeywordQuery> =
            E10_QUERIES.iter().map(|q| KeywordQuery::parse(q)).collect();

        group.bench_with_input(BenchmarkId::new("uncached", specs), &specs, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for g in E10_GROUPS {
                    let access = registry.access_map(&repo, g).unwrap();
                    for q in &queries {
                        hits += search_filtered(&repo, &index, q, &access).len();
                    }
                }
                hits
            })
        });

        let views = ViewCache::new(1024);
        group.bench_with_input(BenchmarkId::new("view_cache", specs), &specs, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for g in E10_GROUPS {
                    let access = registry.access_map(&repo, g).unwrap();
                    for q in &queries {
                        hits += search_filtered_with_cache(&repo, &index, q, &access, &views).len();
                    }
                }
                hits
            })
        });

        let engine = query_engine(specs, 0, 91);
        for g in E10_GROUPS {
            for q in E10_QUERIES {
                engine.search_as(g, q).unwrap();
            }
        }
        group.bench_with_input(BenchmarkId::new("warm_engine", specs), &specs, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for g in E10_GROUPS {
                    for q in E10_QUERIES {
                        hits += engine.search_as(g, q).unwrap().len();
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_cache);
criterion_main!(benches);
