//! E4 — unsound-view detection and repair scaling (Sec. 3, ref \[9\]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppwf_bench::parallel_chains;
use ppwf_views::repair::repair;
use ppwf_views::soundness::check_soundness;

fn bench_soundness(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_soundness");
    group.sample_size(10);
    for &n in &[20usize, 40, 80, 160] {
        let (g, clustering) = parallel_chains(41, 4, n / 4, 6);
        group.bench_with_input(BenchmarkId::new("check", n), &n, |b, _| {
            b.iter(|| check_soundness(&g, &clustering))
        });
        group.bench_with_input(BenchmarkId::new("repair", n), &n, |b, _| {
            b.iter(|| repair(&g, &clustering))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_soundness);
criterion_main!(benches);
