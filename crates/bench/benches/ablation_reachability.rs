//! Ablation — reachability representation (DESIGN.md §2 design choice):
//! the soundness checker and reachability index materialize bitset
//! transitive closures instead of answering pairwise queries with BFS.
//! This bench quantifies that choice: closure build cost vs per-query BFS
//! cost vs closure lookup, at the batch sizes the privacy algorithms use
//! (soundness checking asks O(k²) pairs per view).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppwf_bench::layered_dag;

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_reachability");
    group.sample_size(10);
    for &n in &[50usize, 100, 200] {
        let (g, _) = layered_dag(17, n, 8);
        group.bench_with_input(BenchmarkId::new("closure_build", n), &n, |b, _| {
            b.iter(|| g.transitive_closure())
        });
        // A soundness-check-like batch: all ordered pairs of 32 probes.
        let probes: Vec<u32> = (0..32.min(n as u32)).collect();
        group.bench_with_input(BenchmarkId::new("batch_bfs_32x32", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for &u in &probes {
                    let r = g.reachable_from(u);
                    for &v in &probes {
                        if r.contains(v as usize) {
                            hits += 1;
                        }
                    }
                }
                hits
            })
        });
        let tc = g.transitive_closure();
        group.bench_with_input(BenchmarkId::new("batch_closure_32x32", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for &u in &probes {
                    for &v in &probes {
                        if tc[u as usize].contains(v as usize) {
                            hits += 1;
                        }
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reachability);
criterion_main!(benches);
