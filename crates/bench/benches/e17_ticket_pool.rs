//! E17 — the warm-path ticket allocation kernel through criterion.
//!
//! A serving-front cache hit is a probe plus a completed ticket; the
//! ticket used to cost a fresh `Arc<State>` per hit. This harness pins
//! the kernel underneath: [`Ticket::ready`] (allocate every time)
//! against [`TicketPool::ready`] (recycle a consumed slot), in the two
//! shapes the front actually sees — strictly sequential consume-then-
//! reissue (every `ready` recycles) and a window of live tickets (the
//! pool must skip live slots before recycling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppwf_repo::ticket::{Ticket, TicketPool};

/// The serving front's warm-hit payload shape: a small value behind an
/// epoch, cheap to move, the allocation is the cost being measured.
type Payload = (u64, u64);

fn bench_ticket_ready(c: &mut Criterion) {
    let mut group = c.benchmark_group("ticket_ready");

    // Sequential: each ticket is consumed before the next is issued —
    // the pool's best case, every `ready` after the first recycles.
    group.bench_function("fresh_alloc_sequential", |b| {
        b.iter(|| {
            let t: Ticket<Payload> = Ticket::ready((1, 2));
            t.wait()
        })
    });
    group.bench_function("pooled_sequential", |b| {
        let pool: TicketPool<Payload> = TicketPool::new(64);
        b.iter(|| {
            let t = pool.ready((1, 2));
            t.wait()
        });
        assert!(pool.reused() > 0, "sequential reissue must recycle");
    });

    // Windowed: `live` tickets outstanding at once, so the pool scans
    // past live slots — the front under concurrent warm hits.
    for live in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("fresh_alloc_window", live), &live, |b, &live| {
            b.iter(|| {
                let window: Vec<Ticket<Payload>> =
                    (0..live).map(|i| Ticket::ready((i as u64, 0))).collect();
                window.into_iter().map(|t| t.wait().0).sum::<u64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("pooled_window", live), &live, |b, &live| {
            let pool = TicketPool::new(64);
            b.iter(|| {
                let window: Vec<Ticket<Payload>> =
                    (0..live).map(|i| pool.ready((i as u64, 0))).collect();
                window.into_iter().map(|t| t.wait().0).sum::<u64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ticket_ready);
criterion_main!(benches);
