//! E16 — the cold-path kernels through the criterion harness.
//!
//! The JSON emitter (`--bin e16_cold_kernels`) owns the acceptance run
//! (end-to-end search over a generated corpus, verified answers, gated
//! speedups). This harness isolates the two kernels underneath on
//! synthetic lists whose shapes are pinned by construction:
//!
//! * `intersect` — multi-term candidate-spec intersection:
//!   `delta_gallop` over two block-compressed sparse lists,
//!   `bitmap_and` over two dense bitmap-sealed lists, and
//!   `baseline_merge`, which derives spec sets from the flat sorted
//!   posting arrays the PR-6 index kept and merges them two-pointer
//!   style (spec sets never pre-existed in that representation);
//! * `score` — ranked scoring of many TF profiles: `batch` is the E16
//!   [`scores_for_profiles`] (flat staging, one pass), `per_profile`
//!   the pre-E16 per-hit [`score_with_idfs`] map. Both must agree to
//!   the bit — asserted here before timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppwf_model::ids::{ModuleId, WorkflowId};
use ppwf_query::ranking::{score_with_idfs, scores_for_profiles, RankingMode, TfProfile};
use ppwf_repo::postings::{intersect_term_specs, Posting, PostingList, PostingsShape, TermLists};
use ppwf_repo::repository::SpecId;

/// A synthetic list posting every `stride`-th spec id below `span`.
/// `stride ≤ 4` seals to a bitmap (density ≥ 1/4 with ≥ 64 distinct
/// specs), larger strides to uvarint delta blocks.
fn strided_list(stride: u32, span: u32) -> PostingList {
    let postings: Vec<Posting> = (0..span)
        .step_by(stride as usize)
        .map(|s| Posting { spec: SpecId(s), module: ModuleId(0), workflow: WorkflowId(0), tf: 1 })
        .collect();
    let list = PostingList::from_postings(postings);
    let mut specs = Vec::new();
    list.specs_into(&mut specs); // seal once, outside timing
    list
}

/// The PR-6 shape of the same question: spec sets don't pre-exist — they
/// are derived from the flat sorted posting arrays (the only
/// representation that index kept), then merged two-pointer style.
fn merge_intersect(
    a: &[Posting],
    b: &[Posting],
    sa: &mut Vec<u32>,
    sb: &mut Vec<u32>,
    out: &mut Vec<u32>,
) {
    sa.clear();
    sa.extend(a.iter().map(|p| p.spec.0));
    sa.dedup();
    sb.clear();
    sb.extend(b.iter().map(|p| p.spec.0));
    sb.dedup();
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < sa.len() && j < sb.len() {
        match sa[i].cmp(&sb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(sa[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

fn bench_intersect(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_intersect");
    const SPAN: u32 = 32_768;

    // Sparse × sparse: strides 16 and 24 → delta blocks with skips; the
    // intersection (every 48th spec) is ~683 of 2048/1366 candidates.
    let sparse_a = strided_list(16, SPAN);
    let sparse_b = strided_list(24, SPAN);
    assert!(matches!(sparse_a.shape(), PostingsShape::Delta { .. }), "stride 16 must delta-seal");
    assert!(matches!(sparse_b.shape(), PostingsShape::Delta { .. }), "stride 24 must delta-seal");

    // Dense × dense: strides 2 and 3 → bitmap words, AND-able wordwise.
    let dense_a = strided_list(2, SPAN);
    let dense_b = strided_list(3, SPAN);
    assert!(matches!(dense_a.shape(), PostingsShape::Bitmap { .. }), "stride 2 must bitmap-seal");
    assert!(matches!(dense_b.shape(), PostingsShape::Bitmap { .. }), "stride 3 must bitmap-seal");

    for (label, a, b) in
        [("sparse_delta", &sparse_a, &sparse_b), ("dense_bitmap", &dense_a, &dense_b)]
    {
        let groups = [
            TermLists { primary: Some(a), seed: None },
            TermLists { primary: Some(b), seed: None },
        ];
        let (pa, pb) = (a.to_vec(), b.to_vec());
        let (mut sa, mut sb) = (Vec::new(), Vec::new());
        let mut expect = Vec::new();
        merge_intersect(&pa, &pb, &mut sa, &mut sb, &mut expect);
        let (mut tmp, mut out) = (Vec::new(), Vec::new());
        intersect_term_specs(&groups, &mut tmp, &mut out);
        assert_eq!(out, expect, "kernel and merge must agree on {label}");

        group.bench_with_input(BenchmarkId::new("kernel", label), &SPAN, |bch, _| {
            bch.iter(|| {
                intersect_term_specs(&groups, &mut tmp, &mut out);
                out.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("baseline_merge", label), &SPAN, |bch, _| {
            bch.iter(|| {
                merge_intersect(&pa, &pb, &mut sa, &mut sb, &mut out);
                out.len()
            })
        });
    }
    group.finish();
}

fn bench_score(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_score");
    const PROFILES: usize = 512;
    const TERMS: usize = 3;

    let idfs: Vec<f64> = (0..TERMS).map(|t| 1.5 + t as f64 * 0.37).collect();
    let profiles: Vec<TfProfile> = (0..PROFILES)
        .map(|p| {
            let visible: Vec<u64> = (0..TERMS).map(|t| ((p * 7 + t * 3) % 5) as u64).collect();
            let hidden: Vec<u64> = (0..TERMS).map(|t| ((p * 11 + t * 5) % 4) as u64).collect();
            TfProfile { visible, hidden }
        })
        .collect();

    for mode in [RankingMode::ExactFull, RankingMode::VisibleOnly] {
        let label = match mode {
            RankingMode::ExactFull => "exact_full",
            _ => "visible_only",
        };
        let batch = scores_for_profiles(&idfs, &profiles, mode);
        for (s, p) in batch.iter().zip(&profiles) {
            assert_eq!(
                s.to_bits(),
                score_with_idfs(&idfs, p, mode).to_bits(),
                "batch and per-profile scores must be bit-identical"
            );
        }

        group.bench_with_input(BenchmarkId::new("batch", label), &PROFILES, |bch, _| {
            bch.iter(|| scores_for_profiles(&idfs, &profiles, mode).len())
        });
        group.bench_with_input(BenchmarkId::new("per_profile", label), &PROFILES, |bch, _| {
            bch.iter(|| {
                profiles.iter().map(|p| score_with_idfs(&idfs, p, mode)).collect::<Vec<_>>().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intersect, bench_score);
criterion_main!(benches);
