//! E5 — keyword search plans: full scan vs privacy-classified index vs
//! per-group cache (Sec. 4: one index for many privilege levels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppwf_bench::populated_repo;
use ppwf_model::hierarchy::Prefix;
use ppwf_query::keyword::{search, search_filtered, search_scan, KeywordQuery};
use ppwf_query::privacy_exec::AccessMap;
use ppwf_repo::cache::GroupCache;
use ppwf_repo::keyword_index::KeywordIndex;

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_search");
    group.sample_size(10);
    for &specs in &[8usize, 16, 32, 64] {
        let repo = populated_repo(specs, 0, 51);
        let index = KeywordIndex::build(&repo);
        let q = KeywordQuery::parse("kw0, kw1");
        let access: AccessMap =
            repo.entries().map(|(sid, e)| (sid, Prefix::full(&e.hierarchy))).collect();
        group.bench_with_input(BenchmarkId::new("scan", specs), &specs, |b, _| {
            b.iter(|| search_scan(&repo, &q))
        });
        group.bench_with_input(BenchmarkId::new("index", specs), &specs, |b, _| {
            b.iter(|| search(&repo, &index, &q))
        });
        group.bench_with_input(BenchmarkId::new("index_filtered", specs), &specs, |b, _| {
            b.iter(|| search_filtered(&repo, &index, &q, &access))
        });
        let cache: GroupCache<usize> = GroupCache::new(8);
        let version = repo.version();
        cache.get_or_compute("g", "q", version, || search(&repo, &index, &q).len());
        group.bench_with_input(BenchmarkId::new("cached", specs), &specs, |b, _| {
            b.iter(|| cache.get_or_compute("g", "q", version, || unreachable!()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
