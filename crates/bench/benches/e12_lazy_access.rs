//! E12 — lazy vs eager access-view resolution on the cold filtered-search
//! path.
//!
//! Three plans per corpus size, all serving the same selective query mix
//! over the same large registry:
//!
//! * `eager` — materialize the group's whole-corpus access map per
//!   request (the pre-E12 cold path: O(corpus) rule resolutions);
//! * `lazy_cold` — a fresh `AccessCache` per request: only candidate
//!   specs resolve, no memo warmth (the first-query-per-version cost);
//! * `lazy_memoized` — one surviving `AccessCache` (production shape):
//!   resolution amortizes to memo probes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppwf_bench::{e11_corpus, e11_query_log, e11_repo, e12_registry, E10_GROUPS};
use ppwf_query::keyword::{search_filtered_with_cache, KeywordQuery};
use ppwf_repo::keyword_index::KeywordIndex;
use ppwf_repo::principals::AccessCache;
use ppwf_repo::view_cache::ViewCache;

fn bench_lazy_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_lazy_access");
    group.sample_size(15);
    for &specs in &[128usize, 512] {
        let corpus = e11_corpus(specs, 17);
        let repo = e11_repo(&corpus);
        let index = KeywordIndex::build(&repo);
        let (registry, _) = e12_registry(8, specs);
        let queries: Vec<KeywordQuery> =
            e11_query_log(&corpus, 20, 0x5EED).iter().map(|q| KeywordQuery::parse(q)).collect();
        let views = ViewCache::new(4096);
        // Warm the view cache so both plans measure access resolution +
        // search, not first-touch view construction.
        for g in E10_GROUPS {
            let access = registry.access_map(&repo, g).unwrap();
            for q in &queries {
                search_filtered_with_cache(&repo, &index, q, &access, &views);
            }
        }

        // Eager resolves the whole-corpus map **per request** — exactly
        // what the pre-E12 engine did on every cold query.
        group.bench_with_input(BenchmarkId::new("eager", specs), &specs, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for g in E10_GROUPS {
                    for q in &queries {
                        let access = registry.access_map(&repo, g).unwrap();
                        hits += search_filtered_with_cache(&repo, &index, q, &access, &views).len();
                    }
                }
                hits
            })
        });

        // Lazy with a cache that starts cold each iteration: the
        // first-query-per-version cost, resolver handle per request as in
        // the engine.
        group.bench_with_input(BenchmarkId::new("lazy_cold", specs), &specs, |b, _| {
            b.iter(|| {
                let cache = AccessCache::new();
                let mut hits = 0usize;
                for g in E10_GROUPS {
                    for q in &queries {
                        let resolver = cache.resolver(&registry, &repo, g).unwrap();
                        hits +=
                            search_filtered_with_cache(&repo, &index, q, &resolver, &views).len();
                    }
                }
                hits
            })
        });

        // Lazy with the surviving memo (production steady state).
        let memo = AccessCache::new();
        group.bench_with_input(BenchmarkId::new("lazy_memoized", specs), &specs, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for g in E10_GROUPS {
                    for q in &queries {
                        let resolver = memo.resolver(&registry, &repo, g).unwrap();
                        hits +=
                            search_filtered_with_cache(&repo, &index, q, &resolver, &views).len();
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lazy_access);
criterion_main!(benches);
