//! E7 — ranking modes: scoring cost of exact / bucketized / noisy /
//! visible-only TF-IDF (Sec. 4's privacy-aware ranking challenge).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppwf_bench::populated_repo;
use ppwf_model::hierarchy::Prefix;
use ppwf_query::ranking::{evaluate_ranking, tf_profile, RankingMode};
use ppwf_repo::keyword_index::KeywordIndex;

fn bench_ranking(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_ranking");
    group.sample_size(10);
    let repo = populated_repo(40, 0, 71);
    let index = KeywordIndex::build(&repo);
    let terms = vec!["kw0".to_string(), "kw1".to_string()];
    let profiles: Vec<_> = repo
        .entries()
        .map(|(sid, e)| tf_profile(&repo, sid, &Prefix::root_only(&e.hierarchy), &terms))
        .collect();
    for (name, mode) in [
        ("exact", RankingMode::ExactFull),
        ("visible_only", RankingMode::VisibleOnly),
        ("bucketized", RankingMode::BucketizedFull { base: 4.0 }),
        ("noisy", RankingMode::NoisyFull { epsilon: 1.0, seed: 3 }),
    ] {
        group.bench_with_input(BenchmarkId::new("evaluate", name), name, |b, _| {
            b.iter(|| evaluate_ranking(&index, &terms, &profiles, mode))
        });
    }
    group.bench_function("tf_profiles_40_specs", |b| {
        b.iter(|| {
            let mut profiles = 0usize;
            for (sid, e) in repo.entries() {
                std::hint::black_box(tf_profile(
                    &repo,
                    sid,
                    &Prefix::root_only(&e.hierarchy),
                    &terms,
                ));
                profiles += 1;
            }
            profiles
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ranking);
criterion_main!(benches);
