//! E6 — privacy-evaluation strategies: filter-then-search vs the paper's
//! expensive search-then-zoom-out loop (Sec. 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppwf_bench::populated_repo;
use ppwf_model::hierarchy::Prefix;
use ppwf_query::keyword::KeywordQuery;
use ppwf_query::privacy_exec::{filter_then_search, search_then_zoom_out, AccessMap};
use ppwf_repo::keyword_index::KeywordIndex;

fn bench_zoomout(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_zoomout");
    group.sample_size(10);
    let repo = populated_repo(32, 0, 61);
    let index = KeywordIndex::build(&repo);
    let q = KeywordQuery::parse("kw0, kw1");
    for (name, coarse) in [("full_access", false), ("root_access", true)] {
        let access: AccessMap = repo
            .entries()
            .map(|(sid, e)| {
                let p = if coarse {
                    Prefix::root_only(&e.hierarchy)
                } else {
                    Prefix::full(&e.hierarchy)
                };
                (sid, p)
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("filter_then_search", name), name, |b, _| {
            b.iter(|| filter_then_search(&repo, &index, &q, &access))
        });
        group.bench_with_input(BenchmarkId::new("search_then_zoom_out", name), name, |b, _| {
            b.iter(|| search_then_zoom_out(&repo, &index, &q, &access))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_zoomout);
criterion_main!(benches);
