//! E3 — structural privacy mechanisms: min-cut edge deletion vs clustering
//! (plus privacy-preserving repair) on the same hide requests (Sec. 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppwf_bench::{layered_dag, reachable_pair};
use ppwf_core::structural::{
    hide_by_clustering, hide_by_clustering_repaired, hide_by_deletion, HideRequest,
};

fn bench_structural(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_structural");
    group.sample_size(10);
    for &n in &[20usize, 40, 80] {
        let (g, w) = layered_dag(31, n, 12);
        let (u, v) = reachable_pair(&g).expect("pair");
        let req = HideRequest::pair(u, v);
        group.bench_with_input(BenchmarkId::new("deletion", n), &n, |b, _| {
            b.iter(|| hide_by_deletion(&g, &w, &req))
        });
        group.bench_with_input(BenchmarkId::new("clustering", n), &n, |b, _| {
            b.iter(|| hide_by_clustering(&g, &req))
        });
        group.bench_with_input(BenchmarkId::new("clustering_repaired", n), &n, |b, _| {
            b.iter(|| hide_by_clustering_repaired(&g, &req))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_structural);
criterion_main!(benches);
