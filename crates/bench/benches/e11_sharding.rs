//! E11 — sharded serving through the criterion harness.
//!
//! The JSON emitter (`--bin e11_sharding`) owns the cold-path acceptance
//! run (a cold pass is one-shot per engine, which criterion's repeated
//! iteration model cannot express). This harness times what *can* iterate:
//!
//! * `warm_serving` — the steady-state request path per configuration:
//!   single engine (one cache probe) vs clusters (shard cache probes plus
//!   gather/merge), making the cluster's warm-path overhead visible;
//! * `pool_scatter` — the worker pool's scatter/gather round-trip cost at
//!   several fan-outs, the fixed overhead every multi-shard query pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppwf_bench::{e11_corpus, e11_query_log, e11_repo, standard_registry, E10_GROUPS};
use ppwf_query::cluster::EngineCluster;
use ppwf_query::engine::QueryEngine;
use ppwf_repo::pool::WorkerPool;

fn bench_sharded_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_sharding");
    group.sample_size(20);

    let specs = 128;
    let corpus = e11_corpus(specs, 17);
    let log = e11_query_log(&corpus, 100, 17 ^ 0x5EED);

    let single = QueryEngine::new(e11_repo(&corpus), standard_registry());
    for (i, q) in log.iter().enumerate() {
        single.search_as(E10_GROUPS[i % E10_GROUPS.len()], q).unwrap();
    }
    group.bench_with_input(BenchmarkId::new("warm_serving", "single"), &specs, |b, _| {
        b.iter(|| {
            let mut hits = 0usize;
            for (i, q) in log.iter().enumerate() {
                hits += single.search_as(E10_GROUPS[i % E10_GROUPS.len()], q).unwrap().len();
            }
            hits
        })
    });

    for shards in [2usize, 4] {
        let cluster = EngineCluster::new(e11_repo(&corpus), standard_registry(), shards);
        for (i, q) in log.iter().enumerate() {
            cluster.search_as(E10_GROUPS[i % E10_GROUPS.len()], q).unwrap();
        }
        group.bench_with_input(BenchmarkId::new("warm_serving", shards), &shards, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for (i, q) in log.iter().enumerate() {
                    hits += cluster.search_as(E10_GROUPS[i % E10_GROUPS.len()], q).unwrap().len();
                }
                hits
            })
        });
    }

    for fanout in [2usize, 4, 8] {
        let pool = WorkerPool::new(fanout.min(4));
        group.bench_with_input(BenchmarkId::new("pool_scatter", fanout), &fanout, |b, &n| {
            b.iter(|| {
                let tasks: Vec<_> = (0..n as u64).map(|i| move || i * i).collect();
                pool.run(tasks).iter().sum::<u64>()
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_sharded_serving);
criterion_main!(benches);
