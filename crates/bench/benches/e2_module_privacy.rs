//! E2 — min-cost Γ-private hiding: greedy vs exhaustive runtime as the
//! attribute count grows (Sec. 3's "interesting optimization problem").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppwf_core::module_privacy::{exhaustive_min_hiding, greedy_min_hiding};
use ppwf_workloads::genmodule::{relation, weights, Family};

fn bench_hiding(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_module_privacy");
    group.sample_size(10);
    for attrs in [4usize, 6, 8] {
        let (ina, outa) = (attrs / 2, attrs / 2);
        let rel = relation(21, Family::Random, ina, outa, 2);
        let w = weights(22, rel.attr_count(), 9);
        group.bench_with_input(BenchmarkId::new("greedy", attrs), &attrs, |b, _| {
            b.iter(|| greedy_min_hiding(&rel, &w, 4).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("exhaustive", attrs), &attrs, |b, _| {
            b.iter(|| exhaustive_min_hiding(&rel, &w, 4).unwrap())
        });
    }
    // Γ sweep at fixed size.
    let rel = relation(23, Family::Random, 3, 3, 2);
    let w = weights(24, rel.attr_count(), 9);
    for gamma in [2u64, 4, 8] {
        group.bench_with_input(BenchmarkId::new("greedy_by_gamma", gamma), &gamma, |b, &g| {
            b.iter(|| greedy_min_hiding(&rel, &w, g).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hiding);
criterion_main!(benches);
