//! E14 — async serving through the criterion harness.
//!
//! The JSON emitter (`--bin e14_async_serving`) owns the acceptance run
//! (whole-stream throughput at fixed concurrency, which criterion's
//! per-op iteration model cannot express). This harness times the
//! per-request *dispatch kernels* the throughput gap is made of:
//!
//! * `warm_request` — one warm request per iteration: `submit_inline` is
//!   the async front's warm path (front probe + ready ticket),
//!   `blocking_call` the bare blocking cluster probe it wraps — their
//!   difference is the front's bookkeeping overhead;
//! * `dispatch` — one *cold-start shaped* request per iteration:
//!   `thread_spawn` prices the blocking per-thread model's spawn+join,
//!   `async_submit` the front's queue+fan-out+ticket-wait round trip on
//!   the pool. The spawn-vs-queue gap is the E14 lever; both serve the
//!   same warm query so only dispatch cost differs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppwf_bench::{e11_corpus, e11_query_log, e11_repo, standard_registry};
use ppwf_query::cluster::EngineCluster;
use ppwf_query::route::ShardStrategy;
use ppwf_query::serve::{ServeFront, ServeRequest};
use ppwf_repo::pool::WorkerPool;
use std::sync::Arc;

fn bench_async_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_async_serving");
    group.sample_size(10);

    let specs = 256;
    let corpus = e11_corpus(specs, 17);
    let log = e11_query_log(&corpus, 32, 17 ^ 0x5EED);
    let query = log[0].clone();

    let blocking = Arc::new(EngineCluster::with_config(
        e11_repo(&corpus),
        standard_registry(),
        4,
        ShardStrategy::RoundRobin,
        Arc::new(WorkerPool::new(2)),
    ));
    let front = ServeFront::new(EngineCluster::with_config(
        e11_repo(&corpus),
        standard_registry(),
        4,
        ShardStrategy::RoundRobin,
        Arc::new(WorkerPool::new(2)),
    ));
    // Warm both serving stacks on the probe query.
    blocking.search_as("researchers", &query).unwrap();
    front
        .submit(ServeRequest::Keyword { group: "researchers".into(), query: query.clone() })
        .wait();

    group.bench_with_input(BenchmarkId::new("warm_request", "blocking_call"), &specs, |b, _| {
        b.iter(|| blocking.search_as("researchers", &query).unwrap().len())
    });
    group.bench_with_input(BenchmarkId::new("warm_request", "submit_inline"), &specs, |b, _| {
        b.iter(|| {
            let ticket = front.submit(ServeRequest::Keyword {
                group: "researchers".into(),
                query: query.clone(),
            });
            match ticket.wait().answer {
                ppwf_query::serve::QueryAnswer::Keyword(Some(h)) => h.len(),
                _ => unreachable!("warm keyword answer"),
            }
        })
    });

    group.bench_with_input(BenchmarkId::new("dispatch", "thread_spawn"), &specs, |b, _| {
        b.iter(|| {
            let cluster = Arc::clone(&blocking);
            let q = query.clone();
            std::thread::spawn(move || cluster.search_as("researchers", &q).unwrap().len())
                .join()
                .unwrap()
        })
    });
    let pool = Arc::new(WorkerPool::new(2));
    group.bench_with_input(BenchmarkId::new("dispatch", "pool_submit"), &specs, |b, _| {
        b.iter(|| {
            let cluster = Arc::clone(&blocking);
            let q = query.clone();
            pool.submit(move || cluster.search_as("researchers", &q).unwrap().len()).wait()
        })
    });

    group.finish();
    front.quiesce();
}

criterion_group!(benches, bench_async_serving);
criterion_main!(benches);
