//! E13 — the incremental write pipeline through the criterion harness.
//!
//! The JSON emitter (`--bin e13_incremental_writes`) owns the acceptance
//! run over a full mixed write stream (streams are one-shot per repo copy,
//! which criterion's repeated iteration model cannot express). This
//! harness times the two steady-state kernels that *can* iterate:
//!
//! * `maintenance` — the per-write index cost after an execution append
//!   (the dominant provenance write): `full_rebuild` re-tokenizes the
//!   whole corpus as the pre-E13 engine did, `incremental_refresh`
//!   verifies fingerprints and re-tags — the E13 lever, measured at the
//!   same corpus size;
//! * `typed_write` — the whole engine pipeline (`QueryEngine::mutate`)
//!   absorbing one execution append, including effect dispatch, index
//!   refresh and access-memo advance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppwf_bench::{e11_corpus, e11_repo, standard_registry};
use ppwf_query::engine::QueryEngine;
use ppwf_repo::keyword_index::KeywordIndex;
use ppwf_repo::mutation::Mutation;
use ppwf_repo::repository::SpecId;
use ppwf_workloads::genexec::generate_executions;

fn bench_incremental_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_incremental_writes");
    group.sample_size(10);

    let specs = 256;
    let corpus = e11_corpus(specs, 17);
    let exec = generate_executions(&corpus[0], 1, 17).pop().expect("one execution");

    {
        let mut repo = e11_repo(&corpus);
        group.bench_with_input(BenchmarkId::new("maintenance", "full_rebuild"), &specs, |b, _| {
            b.iter(|| {
                repo.add_execution(SpecId(0), exec.clone()).unwrap();
                KeywordIndex::build(&repo).doc_count()
            })
        });
    }

    {
        let mut repo = e11_repo(&corpus);
        let mut index = KeywordIndex::build(&repo);
        group.bench_with_input(
            BenchmarkId::new("maintenance", "incremental_refresh"),
            &specs,
            |b, _| {
                b.iter(|| {
                    repo.add_execution(SpecId(0), exec.clone()).unwrap();
                    index.refresh(&repo);
                    index.doc_count()
                })
            },
        );
        assert_eq!(index.full_builds(), 1, "refresh must never fully rebuild here");
    }

    {
        let mut engine = QueryEngine::new(e11_repo(&corpus), standard_registry());
        group.bench_with_input(BenchmarkId::new("typed_write", "exec_append"), &specs, |b, _| {
            b.iter(|| {
                engine
                    .mutate(Mutation::AddExecution { spec: SpecId(0), exec: exec.clone() })
                    .unwrap()
                    .changes_visible_state()
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_incremental_writes);
criterion_main!(benches);
