//! E8 — the Laplace mechanism on provenance counting queries (Sec. 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppwf_core::dp::{evaluate_mechanism, LaplaceMechanism};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_dp");
    group.sample_size(20);
    let counts: Vec<u64> = (1..=50).collect();
    for eps in [0.1f64, 1.0, 8.0] {
        let mech = LaplaceMechanism::counting(eps);
        group.bench_with_input(
            BenchmarkId::new("evaluate_400_trials", format!("{eps}")),
            &eps,
            |b, _| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(81);
                    evaluate_mechanism(&mech, &counts, 400, &mut rng)
                })
            },
        );
    }
    group.bench_function("single_release", |b| {
        let mech = LaplaceMechanism::counting(1.0);
        let mut rng = StdRng::seed_from_u64(82);
        b.iter(|| mech.noisy_count(42, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_dp);
criterion_main!(benches);
