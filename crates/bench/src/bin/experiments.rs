//! Regenerates every experiment table (E1–E9) of EXPERIMENTS.md in one run:
//!
//! ```bash
//! cargo run --release -p ppwf-bench --bin experiments
//! ```
//!
//! Criterion provides rigorous timing for the hot kernels (`cargo bench`);
//! this binary prints the *shape* results — quality metrics, counts,
//! trade-off frontiers and coarse timings — that correspond to what the
//! paper argues qualitatively. Each section header names the experiment id
//! from DESIGN.md §3.

use ppwf_bench::{
    deep_spec, layered_dag, parallel_chains, populated_repo, query_engine, reachable_pair,
    sized_spec, standard_registry, E10_GROUPS, E10_QUERIES, SIZES,
};
use ppwf_core::dp::{evaluate_mechanism, LaplaceMechanism};
use ppwf_core::module_privacy::{exhaustive_min_hiding, greedy_min_hiding};
use ppwf_core::structural::{compare_mechanisms, HideRequest};
use ppwf_model::exec::{Executor, HashOracle};
use ppwf_model::expand::SpecView;
use ppwf_model::hierarchy::{ExpansionHierarchy, Prefix};
use ppwf_query::keyword::{search, search_scan, KeywordQuery};
use ppwf_query::privacy_exec::{filter_then_search, search_then_zoom_out, AccessMap};
use ppwf_query::ranking::{evaluate_ranking, tf_profile, RankingMode};
use ppwf_query::structural::{match_view, NodeMatcher, Pattern};
use ppwf_repo::cache::GroupCache;
use ppwf_repo::keyword_index::KeywordIndex;
use ppwf_views::exec_view::ExecView;
use ppwf_views::repair::repair;
use ppwf_views::soundness::check_soundness;
use ppwf_workloads::genmodule::{relation, weights, Family};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn us(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e6
}

fn main() {
    e1_views();
    e2_module_privacy();
    e3_structural();
    e4_soundness();
    e5_search();
    e6_zoomout();
    e7_ranking();
    e8_dp();
    e9_structural_query();
    e10_query_cache();
    e11_sharding();
}

/// E1 — view construction & execution collapse vs size and depth.
fn e1_views() {
    println!("== E1: view machinery cost (Sec. 2 — views as access control) ==");
    println!(
        "{:>8} {:>8} {:>8} {:>14} {:>14} {:>14}",
        "modules", "edges", "depth", "spec-view µs", "exec µs", "collapse µs"
    );
    for &n in &SIZES {
        let spec = sized_spec(11, n);
        let h = ExpansionHierarchy::of(&spec);
        let t0 = Instant::now();
        let _view = SpecView::build(&spec, &h, &Prefix::full(&h)).unwrap();
        let t_view = us(t0);
        let t1 = Instant::now();
        let exec = Executor::new(&spec).run(&mut HashOracle).unwrap();
        let t_exec = us(t1);
        let t2 = Instant::now();
        let _ev = ExecView::build(&spec, &h, &exec, &Prefix::root_only(&h)).unwrap();
        let t_collapse = us(t2);
        println!(
            "{:>8} {:>8} {:>8} {:>14.1} {:>14.1} {:>14.1}",
            spec.module_count(),
            spec.edge_count(),
            h.max_depth(),
            t_view,
            t_exec,
            t_collapse
        );
    }
    println!("(depth sweep)");
    for depth in 1..=4u32 {
        let spec = deep_spec(13, depth);
        let h = ExpansionHierarchy::of(&spec);
        let t0 = Instant::now();
        let _ = SpecView::build(&spec, &h, &Prefix::full(&h)).unwrap();
        println!(
            "  depth {depth}: {} workflows, full view in {:.1} µs",
            spec.workflow_count(),
            us(t0)
        );
    }
    println!();
}

/// E2 — min-cost Γ-private hiding: greedy vs exact.
fn e2_module_privacy() {
    println!("== E2: module privacy optimization (Sec. 3, ref [4]) ==");
    println!(
        "{:>11} {:>5} {:>4} {:>11} {:>11} {:>7} {:>11} {:>11}",
        "family", "attrs", "Γ", "greedy", "optimal", "ratio", "greedy µs", "exact µs"
    );
    for family in [Family::Random, Family::Projection, Family::Xor] {
        for (ina, outa) in [(2usize, 2usize), (3, 3), (4, 4)] {
            let rel = relation(21, family, ina, outa, 2);
            let w = weights(22, rel.attr_count(), 9);
            for gamma in [2u64, 4] {
                let t0 = Instant::now();
                let g = greedy_min_hiding(&rel, &w, gamma);
                let tg = us(t0);
                let t1 = Instant::now();
                let e = exhaustive_min_hiding(&rel, &w, gamma);
                let te = us(t1);
                if let (Some(g), Some(e)) = (g, e) {
                    println!(
                        "{:>11} {:>5} {:>4} {:>11} {:>11} {:>7.2} {:>11.1} {:>11.1}",
                        format!("{family:?}"),
                        rel.attr_count(),
                        gamma,
                        g.cost,
                        e.cost,
                        if e.cost == 0 { 1.0 } else { g.cost as f64 / e.cost as f64 },
                        tg,
                        te
                    );
                }
            }
        }
    }
    println!();
}

/// E3 — edge deletion vs clustering on the same hide requests.
fn e3_structural() {
    println!("== E3: structural privacy mechanisms (Sec. 3) ==");
    println!(
        "{:>6} {:>7} {:>11} {:>11} {:>12} {:>12} {:>10}",
        "nodes", "pairs", "del-excess", "clu-false", "del-U(1,1)", "clu-U(1,1)", "rep-sound"
    );
    for &n in &[20usize, 40, 80] {
        let (g, w) = layered_dag(31, n, 12);
        let Some((u, v)) = reachable_pair(&g) else { continue };
        let req = HideRequest::pair(u, v);
        let cmp = compare_mechanisms(&g, &w, &req);
        println!(
            "{:>6} {:>7} {:>11} {:>11} {:>12.0} {:>12.0} {:>10}",
            n,
            cmp.deletion.pairs_before,
            cmp.deletion.excess_hidden_pairs(1),
            cmp.clustering.report.false_pairs,
            cmp.deletion.utility(1.0, 1.0),
            cmp.clustering.utility(1.0, 1.0),
            cmp.repaired.report.sound
        );
        assert!(cmp.deletion.hidden_ok && cmp.clustering.hidden_ok && cmp.repaired.hidden_ok);
    }
    println!();
}

/// E4 — soundness checking and repair scaling.
fn e4_soundness() {
    println!("== E4: unsound-view detection & repair (Sec. 3, ref [9]) ==");
    println!(
        "{:>6} {:>8} {:>10} {:>8} {:>10} {:>10}",
        "nodes", "groups", "check µs", "sound", "splits", "repair µs"
    );
    for &n in &[20usize, 40, 80, 160] {
        // Stage clustering over parallel pipelines: the canonical unsound
        // view (the paper's {M11, M13} example, generalized).
        let (g, c) = parallel_chains(41, 4, n / 4, 6);
        let t0 = Instant::now();
        let report = check_soundness(&g, &c);
        let t_check = us(t0);
        let t1 = Instant::now();
        let out = repair(&g, &c);
        let t_rep = us(t1);
        println!(
            "{:>6} {:>8} {:>10.1} {:>8} {:>10} {:>10.1}",
            n,
            c.group_count(),
            t_check,
            report.sound,
            out.splits,
            t_rep
        );
    }
    println!();
}

/// E5 — keyword search: scan vs index vs cache.
fn e5_search() {
    println!("== E5: search plans (Sec. 4 — indexes across privilege levels) ==");
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>10} {:>9}",
        "specs", "modules", "scan µs", "index µs", "cache µs", "hits"
    );
    for &specs in &[8usize, 16, 32, 64] {
        let repo = populated_repo(specs, 0, 51);
        let index = KeywordIndex::build(&repo);
        let q = KeywordQuery::parse("kw0, kw1");
        let t0 = Instant::now();
        let scan_hits = search_scan(&repo, &q);
        let t_scan = us(t0);
        let t1 = Instant::now();
        let idx_hits = search(&repo, &index, &q);
        let t_index = us(t1);
        assert_eq!(scan_hits.len(), idx_hits.len());
        let cache: GroupCache<usize> = GroupCache::new(8);
        cache.get_or_compute("g", "q", repo.version(), || idx_hits.len());
        let t2 = Instant::now();
        let cached = *cache.get_or_compute("g", "q", repo.version(), || unreachable!("must hit"));
        let t_cache = us(t2);
        println!(
            "{:>6} {:>8} {:>10.1} {:>10.1} {:>10.2} {:>9}",
            specs,
            index.doc_count(),
            t_scan,
            t_index,
            t_cache,
            cached
        );
    }
    println!();
}

/// E6 — filter-then-search vs search-then-zoom-out.
fn e6_zoomout() {
    println!("== E6: privacy-evaluation strategies (Sec. 4 — zoom-out cost) ==");
    println!(
        "{:>10} {:>10} {:>10} {:>11} {:>11} {:>10} {:>10}",
        "access", "filter µs", "zoom µs", "flt-views", "zoom-views", "zoom-steps", "discarded"
    );
    let repo = populated_repo(32, 0, 61);
    let index = KeywordIndex::build(&repo);
    let q = KeywordQuery::parse("kw0, kw1");
    for (name, coarse) in [("full", false), ("root-only", true)] {
        let access: AccessMap = repo
            .entries()
            .map(|(sid, e)| {
                let p = if coarse {
                    Prefix::root_only(&e.hierarchy)
                } else {
                    Prefix::full(&e.hierarchy)
                };
                (sid, p)
            })
            .collect();
        let t0 = Instant::now();
        let a = filter_then_search(&repo, &index, &q, &access);
        let t_f = us(t0);
        let t1 = Instant::now();
        let b = search_then_zoom_out(&repo, &index, &q, &access);
        let t_z = us(t1);
        println!(
            "{:>10} {:>10.1} {:>10.1} {:>11} {:>11} {:>10} {:>10}",
            name, t_f, t_z, a.views_built, b.views_built, b.zoom_steps, b.discarded
        );
    }
    println!();
}

/// E7 — ranking leakage vs utility.
fn e7_ranking() {
    println!("== E7: privacy-aware ranking (Sec. 4 — TF/IDF leakage) ==");
    let repo = populated_repo(40, 0, 71);
    let index = KeywordIndex::build(&repo);
    let terms = vec!["kw0".to_string(), "kw1".to_string()];
    let profiles: Vec<_> = repo
        .entries()
        .map(|(sid, e)| tf_profile(&repo, sid, &Prefix::root_only(&e.hierarchy), &terms))
        .collect();
    println!("{:>18} {:>10} {:>10}", "mode", "utility τ", "leakage");
    for (name, mode) in [
        ("exact-full", RankingMode::ExactFull),
        ("bucketized(2)", RankingMode::BucketizedFull { base: 2.0 }),
        ("bucketized(4)", RankingMode::BucketizedFull { base: 4.0 }),
        ("bucketized(8)", RankingMode::BucketizedFull { base: 8.0 }),
        ("noisy(ε=2)", RankingMode::NoisyFull { epsilon: 2.0, seed: 3 }),
        ("noisy(ε=0.2)", RankingMode::NoisyFull { epsilon: 0.2, seed: 3 }),
        ("visible-only", RankingMode::VisibleOnly),
    ] {
        let e = evaluate_ranking(&index, &terms, &profiles, mode);
        println!("{:>18} {:>10.3} {:>10.3}", name, e.utility, e.leakage);
    }
    println!();
}

/// E8 — differential privacy on provenance counts.
fn e8_dp() {
    println!("== E8: DP noise vs provenance utility (Sec. 5) ==");
    println!("{:>8} {:>12} {:>14} {:>14}", "ε", "rel. error", "failure rate", "theory");
    let counts: Vec<u64> = (1..=50).collect();
    let mut rng = StdRng::seed_from_u64(81);
    for eps in [0.05f64, 0.1, 0.5, 1.0, 2.0, 8.0] {
        let mech = LaplaceMechanism::counting(eps);
        let acc = evaluate_mechanism(&mech, &counts, 400, &mut rng);
        println!(
            "{:>8} {:>12.3} {:>14.3} {:>14.3}",
            eps,
            acc.mean_relative_error,
            acc.failure_rate,
            ppwf_core::dp::theoretical_failure_rate(eps)
        );
    }
    println!();
}

/// E9 — structural pattern matching across view granularities.
fn e9_structural_query() {
    println!("== E9: structural queries (Sec. 4/5 — τ vs dataflow edges) ==");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10}",
        "modules", "pattern", "full µs", "coarse µs", "matches"
    );
    for &n in &SIZES {
        let spec = sized_spec(91, n);
        let h = ExpansionHierarchy::of(&spec);
        let full = SpecView::build(&spec, &h, &Prefix::full(&h)).unwrap();
        let coarse = SpecView::build(&spec, &h, &Prefix::root_only(&h)).unwrap();
        for (pname, pattern) in [
            ("before", Pattern::before(NodeMatcher::Any, NodeMatcher::Any)),
            (
                "3-chain",
                Pattern {
                    nodes: vec![NodeMatcher::Any, NodeMatcher::Any, NodeMatcher::Any],
                    edges: vec![
                        ppwf_query::structural::PatternEdge { from: 0, to: 1, transitive: false },
                        ppwf_query::structural::PatternEdge { from: 1, to: 2, transitive: true },
                    ],
                },
            ),
        ] {
            let t0 = Instant::now();
            let m_full = match_view(&spec, &full, &pattern);
            let t_full = us(t0);
            let t1 = Instant::now();
            let m_coarse = match_view(&spec, &coarse, &pattern);
            let t_coarse = us(t1);
            println!(
                "{:>8} {:>10} {:>12.1} {:>12.1} {:>10}",
                spec.module_count(),
                pname,
                t_full,
                t_coarse,
                format!("{}/{}", m_full.len(), m_coarse.len())
            );
        }
    }
    println!();
}

/// E10 — the query fast path: per-group result cache + view cache vs the
/// uncached path (Sec. 4's user-group caching direction made concrete).
/// `cargo run --release -p ppwf-bench --bin e10_query_cache` emits the
/// machine-readable baseline; this table is the human-readable shape.
fn e10_query_cache() {
    use ppwf_query::keyword::search_filtered;

    println!("== E10: query cache fast path (Sec. 4 — user-group caching) ==");
    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>10} {:>10}",
        "specs", "uncached µs/q", "warm µs/q", "speedup", "kw hit%", "view hit%"
    );
    for &specs in &[8usize, 16, 32] {
        let repo = populated_repo(specs, 0, 91);
        let index = KeywordIndex::build(&repo);
        let registry = standard_registry();
        let queries: Vec<KeywordQuery> =
            E10_QUERIES.iter().map(|q| KeywordQuery::parse(q)).collect();
        let reps = 20usize;
        let requests = reps * E10_GROUPS.len() * queries.len();

        let t0 = Instant::now();
        for _ in 0..reps {
            for g in E10_GROUPS {
                let access = registry.access_map(&repo, g).unwrap();
                for q in &queries {
                    std::hint::black_box(search_filtered(&repo, &index, q, &access));
                }
            }
        }
        let uncached = us(t0) / requests as f64;

        let engine = query_engine(specs, 0, 91);
        for g in E10_GROUPS {
            for q in E10_QUERIES {
                engine.search_as(g, q).unwrap();
            }
        }
        let t1 = Instant::now();
        for _ in 0..reps {
            for g in E10_GROUPS {
                for q in E10_QUERIES {
                    std::hint::black_box(engine.search_as(g, q).unwrap());
                }
            }
        }
        let warm = us(t1) / requests as f64;
        let stats = engine.stats();
        println!(
            "{:>8} {:>14.2} {:>14.2} {:>9.0}x {:>9.1}% {:>9.1}%",
            specs,
            uncached,
            warm,
            uncached / warm,
            stats.keyword.hit_rate() * 100.0,
            stats.views.hit_rate() * 100.0
        );
    }
    println!();
}

/// E11 — sharded serving: EngineCluster scatter/gather vs a single engine
/// over the same corpus and query log. `--bin e11_sharding` emits the
/// machine-readable baseline with the ≥2× cold-path acceptance gate; this
/// table is the human-readable shape at a smaller corpus.
fn e11_sharding() {
    use ppwf_bench::{e11_corpus, e11_query_log, e11_repo};
    use ppwf_query::cluster::EngineCluster;
    use ppwf_query::engine::QueryEngine;

    println!("== E11: sharded serving (scatter/gather over the worker pool) ==");
    let specs = 256usize;
    let corpus = e11_corpus(specs, 17);
    let log = e11_query_log(&corpus, 200, 17 ^ 0x5EED);
    let serve = |f: &mut dyn FnMut(&str, &str) -> usize| {
        let t = Instant::now();
        let mut hits = 0usize;
        for (i, q) in log.iter().enumerate() {
            hits += f(E10_GROUPS[i % E10_GROUPS.len()], q);
        }
        (us(t) / log.len() as f64, hits)
    };

    println!(
        "{:>7} {:>12} {:>12} {:>9} {:>12} {:>7}",
        "shards", "cold µs/q", "warm µs/q", "cold ×", "avg targets", "hits"
    );
    let single = QueryEngine::new(e11_repo(&corpus), standard_registry());
    let (single_cold, hits) =
        serve(&mut |g, q| single.search_as(g, q).map(|h| h.len()).unwrap_or(0));
    let (single_warm, _) = serve(&mut |g, q| single.search_as(g, q).map(|h| h.len()).unwrap_or(0));
    println!(
        "{:>7} {:>12.1} {:>12.2} {:>9} {:>12} {:>7}",
        "single", single_cold, single_warm, "1.0x", specs, hits
    );
    for shards in [2usize, 4] {
        let cluster = EngineCluster::new(e11_repo(&corpus), standard_registry(), shards);
        let (cold, chits) =
            serve(&mut |g, q| cluster.search_as(g, q).map(|h| h.len()).unwrap_or(0));
        let (warm, _) = serve(&mut |g, q| cluster.search_as(g, q).map(|h| h.len()).unwrap_or(0));
        assert_eq!(chits, hits, "sharding changed answers");
        let avg_targets: f64 =
            log.iter().map(|q| cluster.probe_target_count(q) as f64).sum::<f64>()
                / log.len() as f64;
        println!(
            "{:>7} {:>12.1} {:>12.2} {:>8.1}x {:>12.2} {:>7}",
            shards,
            cold,
            warm,
            single_cold / cold,
            avg_targets,
            chits
        );
    }
    println!();
}
