//! E19 baseline emitter: destructive writes end to end — per-write
//! `DeleteSpec`/`EditSpec` index maintenance vs full rebuilds, the read
//! path over a tombstoned corpus, and the durable group-committed
//! pipeline with crash-free recovery.
//!
//! ```bash
//! cargo run --release -p ppwf-bench --bin e19_destructive_writes -- \
//!     [--out BENCH_e19_destructive_writes.json] [--specs 1024] \
//!     [--writes 128] [--reads 200] [--shards 3] [--seed 19] \
//!     [--delete-pct 35] [--edit-pct 35] [--batch 16] \
//!     [--min-speedup 5.0] [--max-read-regression 1.2]
//! ```
//!
//! One E11-shaped corpus, one destructive-heavy typed write stream (the
//! **mix knob**: `--delete-pct` spec deletes, `--edit-pct` in-place text
//! edits, the rest fresh inserts; destructive targets track the live
//! slots the stream itself leaves). Three measured sections:
//!
//! * **Per-write index maintenance.** The stream drives two repository
//!   copies; after every write one side rebuilds its [`KeywordIndex`]
//!   from scratch, the other dispatches on the typed effect —
//!   `SpecDeleted` → targeted retraction, `SpecEdited` → retract +
//!   re-index, anything else → the append-only refresh. Before any
//!   number is reported the maintained index is checked bit-identical
//!   (postings, df, idf bits) to a fresh build of the final tombstoned
//!   corpus, with zero mid-stream full rebuilds and retraction counters
//!   that actually moved.
//! * **Read no-regression.** An engine *grown* through the destructive
//!   stream serves a read log against an engine built fresh over the
//!   identical final corpus — identical answers required, cold and warm
//!   passes within `--max-read-regression`.
//! * **Durable pipeline + recovery.** A sharded durable cluster applies
//!   the same stream through group-committed `mutate_batch` runs (the
//!   destructive-overlay flush path is live here), then a second cluster
//!   recovers from that storage — snapshot with tombstoned COW chunks
//!   plus WAL suffix — and must answer the whole log bit-identically to
//!   the grown single engine.
//!
//! **Honest boundary.** Targeted maintenance is *not* O(1): a delete
//! retracts the spec's postings term by term and then re-verifies the
//! append-only tail, so its cost scales with the victim's vocabulary
//! plus the corpus tail scan — far below re-tokenizing the corpus, but
//! linear all the same. An effect naming a spec the index never saw
//! (replay onto a stale image) falls back to the verifying refresh, and
//! a verified structural mismatch forces a full rebuild by design.
//! Destructive-heavy batches also amortize fewer fsyncs: a run flushes
//! early whenever a later mutation references a spec the pending run
//! deleted or edited, so group-commit batches shrink as the conflict
//! rate rises. The binary exits non-zero when any acceptance gate fails.

use ppwf_bench::{
    e11_corpus, e11_query_log, e11_repo, e19_write_stream, standard_registry, E10_GROUPS,
};
use ppwf_query::cluster::EngineCluster;
use ppwf_query::engine::QueryEngine;
use ppwf_query::keyword::KeywordQuery;
use ppwf_query::route::ShardStrategy;
use ppwf_repo::keyword_index::KeywordIndex;
use ppwf_repo::mutation::{Mutation, MutationEffect};
use ppwf_repo::pool::WorkerPool;
use ppwf_repo::repository::Repository;
use ppwf_repo::storage::{MemStorage, StorageBackend};
use ppwf_repo::wal::{DurabilityPolicy, GroupCommit};
use std::sync::Arc;
use std::time::Instant;

struct Config {
    out: String,
    specs: usize,
    writes: usize,
    reads: usize,
    shards: usize,
    seed: u64,
    delete_pct: u32,
    edit_pct: u32,
    batch: usize,
    min_speedup: f64,
    max_read_regression: f64,
}

fn parse_args() -> Config {
    let mut config = Config {
        out: "BENCH_e19_destructive_writes.json".to_string(),
        specs: 1024,
        writes: 128,
        reads: 200,
        shards: 3,
        seed: 19,
        delete_pct: 35,
        edit_pct: 35,
        batch: 16,
        min_speedup: 5.0,
        max_read_regression: 1.2,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need =
            |n: usize| args.get(n).unwrap_or_else(|| panic!("{} needs a value", args[n - 1]));
        match args[i].as_str() {
            "--out" => config.out = need(i + 1).clone(),
            "--specs" => config.specs = need(i + 1).parse().expect("bad spec count"),
            "--writes" => config.writes = need(i + 1).parse().expect("bad write count"),
            "--reads" => config.reads = need(i + 1).parse().expect("bad read count"),
            "--shards" => config.shards = need(i + 1).parse().expect("bad shard count"),
            "--seed" => config.seed = need(i + 1).parse().expect("bad seed"),
            "--delete-pct" => config.delete_pct = need(i + 1).parse().expect("bad delete pct"),
            "--edit-pct" => config.edit_pct = need(i + 1).parse().expect("bad edit pct"),
            "--batch" => config.batch = need(i + 1).parse().expect("bad batch size"),
            "--min-speedup" => config.min_speedup = need(i + 1).parse().expect("bad threshold"),
            "--max-read-regression" => {
                config.max_read_regression = need(i + 1).parse().expect("bad ratio")
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 2;
    }
    config
}

/// Serve the whole read log once; returns (elapsed µs, hits served).
fn serve_pass(mut serve: impl FnMut(&str, &str) -> usize, log: &[String]) -> (f64, usize) {
    let t = Instant::now();
    let mut hits = 0usize;
    for (i, q) in log.iter().enumerate() {
        hits += serve(E10_GROUPS[i % E10_GROUPS.len()], q);
    }
    (t.elapsed().as_secs_f64() * 1e6, hits)
}

/// Best of `reps` passes — the standard noise-floor estimate.
fn best_pass(
    reps: usize,
    mut serve: impl FnMut(&str, &str) -> usize,
    log: &[String],
) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut hits = 0usize;
    for _ in 0..reps.max(1) {
        let (us, h) = serve_pass(&mut serve, log);
        best = best.min(us);
        hits = h;
    }
    (best, hits)
}

/// Assert the maintained index answers exactly like a fresh full build of
/// the (tombstoned) final corpus.
fn assert_index_equivalent(maintained: &KeywordIndex, repo: &Repository, log: &[String]) {
    let fresh = KeywordIndex::build(repo);
    assert_eq!(maintained.doc_count(), fresh.doc_count(), "doc_count diverged");
    assert_eq!(maintained.term_count(), fresh.term_count(), "term_count diverged");
    for q in log {
        for term in &KeywordQuery::parse(q).terms {
            assert_eq!(
                maintained.lookup_query_term(term),
                fresh.lookup_query_term(term),
                "postings diverged on {term:?}"
            );
            assert_eq!(maintained.df_cached(term), fresh.df(term), "df diverged on {term:?}");
            assert_eq!(
                maintained.idf_cached(term).to_bits(),
                fresh.idf_cached(term).to_bits(),
                "idf diverged on {term:?}"
            );
        }
    }
}

fn main() {
    let config = parse_args();
    println!("== E19: destructive writes — targeted delete/edit maintenance vs full rebuilds ==");
    let insert_pct = 100 - config.delete_pct - config.edit_pct;
    println!(
        "corpus: {} specs · {} writes ({}% deletes, {}% edits, {insert_pct}% inserts) · {} reads · seed {}",
        config.specs, config.writes, config.delete_pct, config.edit_pct, config.reads, config.seed
    );

    let corpus = e11_corpus(config.specs, config.seed);
    let mut log = e11_query_log(&corpus, config.reads, config.seed ^ 0x5EED);
    assert!(log.len() >= config.reads * 9 / 10, "read log came up short");
    // Edits splice in the generator's replacement vocabulary — the log
    // must probe it, or edit retraction errors would be invisible.
    log.push("edited".to_string());
    log.push("kw0, edited".to_string());
    let stream = e19_write_stream(
        &corpus,
        config.writes,
        config.delete_pct,
        config.edit_pct,
        config.seed ^ 0xE19,
    );
    let deletes = stream.iter().filter(|m| matches!(m, Mutation::DeleteSpec { .. })).count();
    let edits = stream.iter().filter(|m| matches!(m, Mutation::EditSpec { .. })).count();
    assert!(deletes > 0 && edits > 0, "the stream must exercise both destructive kinds");

    // -- section A: per-write index maintenance -----------------------------
    // Baseline: rebuild the whole index after every destructive write.
    let mut repo_full = e11_repo(&corpus);
    let mut index_full = KeywordIndex::build(&repo_full);
    let mut full_us = 0.0f64;
    for m in stream.iter().cloned() {
        repo_full.apply(m).expect("write stream valid");
        let t = Instant::now();
        index_full = KeywordIndex::build(&repo_full);
        full_us += t.elapsed().as_secs_f64() * 1e6;
    }
    drop(index_full);

    // Targeted: dispatch on the typed effect, retraction for deletes,
    // retract + re-index for edits, append-only refresh otherwise.
    let mut repo_incr = e11_repo(&corpus);
    let mut index_incr = KeywordIndex::build(&repo_incr);
    let mut incr_us = 0.0f64;
    for m in stream.iter().cloned() {
        let effect = repo_incr.apply(m).expect("write stream valid");
        let t = Instant::now();
        match effect {
            MutationEffect::SpecDeleted { spec } => index_incr.delete_spec(&repo_incr, spec),
            MutationEffect::SpecEdited { spec } => index_incr.edit_spec(&repo_incr, spec),
            _ => index_incr.refresh(&repo_incr),
        }
        incr_us += t.elapsed().as_secs_f64() * 1e6;
    }
    assert_eq!(index_incr.full_builds(), 1, "maintenance must never fall back to a full rebuild");
    assert!(index_incr.docs_retracted() > 0, "deletes and edits must retract postings");
    assert_index_equivalent(&index_incr, &repo_incr, &log);
    let maintenance_speedup = full_us / incr_us;

    let per_write = |us: f64| us / config.writes.max(1) as f64;
    println!("\n-- per-write index maintenance ({} writes) --", config.writes);
    println!("{:>22} {:>14} {:>12}", "path", "µs/write", "speedup");
    println!("{:>22} {:>14.1} {:>12}", "full rebuild", per_write(full_us), "1.0x");
    println!(
        "{:>22} {:>14.1} {:>11.1}x",
        "targeted maintenance",
        per_write(incr_us),
        maintenance_speedup
    );
    println!(
        "index work: {} docs retracted over {} deletes + {} edits; live {}/{} slots",
        index_incr.docs_retracted(),
        deletes,
        edits,
        repo_incr.live_count(),
        repo_incr.len(),
    );

    // -- section B: read no-regression over the tombstoned corpus ----------
    let mut engine_grown = QueryEngine::new(e11_repo(&corpus), standard_registry());
    let t = Instant::now();
    for m in stream.iter().cloned() {
        engine_grown.mutate(m).expect("write stream valid");
    }
    let pipeline_us = t.elapsed().as_secs_f64() * 1e6;
    let mut repo_replay = e11_repo(&corpus);
    for m in stream.iter().cloned() {
        repo_replay.apply(m).expect("write stream valid");
    }
    let engine_fresh = QueryEngine::new(repo_replay, standard_registry());
    for (i, q) in log.iter().enumerate() {
        let g = E10_GROUPS[i % E10_GROUPS.len()];
        let a = engine_grown.search_as(g, q).unwrap();
        let b = engine_fresh.search_as(g, q).unwrap();
        assert_eq!(
            a.iter().map(|h| h.spec.0).collect::<Vec<_>>(),
            b.iter().map(|h| h.spec.0).collect::<Vec<_>>(),
            "grown vs fresh diverged on {q:?}"
        );
    }
    const COLD_REPS: usize = 3;
    const WARM_REPS: usize = 9;
    let (mut fresh_cold_us, mut grown_cold_us) = (f64::INFINITY, f64::INFINITY);
    let mut fresh_hits = 0usize;
    for rep in 0..COLD_REPS {
        let mut grown_rep = QueryEngine::new(e11_repo(&corpus), standard_registry());
        for m in stream.iter().cloned() {
            grown_rep.mutate(m).expect("write stream valid");
        }
        let mut replay_rep = e11_repo(&corpus);
        for m in stream.iter().cloned() {
            replay_rep.apply(m).expect("write stream valid");
        }
        let fresh_rep = QueryEngine::new(replay_rep, standard_registry());
        let serve_fresh =
            |g: &str, q: &str| -> usize { fresh_rep.search_as(g, q).map(|h| h.len()).unwrap_or(0) };
        let serve_grown =
            |g: &str, q: &str| -> usize { grown_rep.search_as(g, q).map(|h| h.len()).unwrap_or(0) };
        let ((fresh_us, fh), (grown_us, gh)) = if rep % 2 == 0 {
            let f = serve_pass(serve_fresh, &log);
            let g = serve_pass(serve_grown, &log);
            (f, g)
        } else {
            let g = serve_pass(serve_grown, &log);
            let f = serve_pass(serve_fresh, &log);
            (f, g)
        };
        assert_eq!(gh, fh, "the grown engine serves different hit totals");
        fresh_cold_us = fresh_cold_us.min(fresh_us);
        grown_cold_us = grown_cold_us.min(grown_us);
        fresh_hits = fh;
    }
    let (fresh_warm_us, _) = best_pass(
        WARM_REPS,
        |g, q| engine_fresh.search_as(g, q).map(|h| h.len()).unwrap_or(0),
        &log,
    );
    let (grown_warm_us, _) = best_pass(
        WARM_REPS,
        |g, q| engine_grown.search_as(g, q).map(|h| h.len()).unwrap_or(0),
        &log,
    );
    let cold_ratio = grown_cold_us / fresh_cold_us;
    let warm_ratio = grown_warm_us / fresh_warm_us;

    let per_q = |us: f64| us / log.len() as f64;
    println!("\n-- read path after {} destructive writes ({} reads) --", config.writes, log.len());
    println!("{:>22} {:>12} {:>12}", "engine", "cold µs/q", "warm µs/q");
    println!("{:>22} {:>12.1} {:>12.3}", "fresh build", per_q(fresh_cold_us), per_q(fresh_warm_us));
    println!(
        "{:>22} {:>12.1} {:>12.3}",
        "grown destructively",
        per_q(grown_cold_us),
        per_q(grown_warm_us)
    );
    println!(
        "cold ratio {cold_ratio:.3}, warm ratio {warm_ratio:.3} (gate ≤{:.1})",
        config.max_read_regression
    );

    // -- section C: durable group-committed pipeline + recovery -------------
    let policy = DurabilityPolicy {
        fsync_each: true,
        snapshot_every: 50,
        segment_bytes: 1 << 20,
        group_commit: Some(GroupCommit { max_batch: config.batch, max_delay_us: 0 }),
        ..DurabilityPolicy::default()
    };
    let storage = Arc::new(MemStorage::new());
    let pool = Arc::new(WorkerPool::new(2));
    let (mut durable, _) = EngineCluster::open_durable(
        Arc::clone(&storage) as Arc<dyn StorageBackend>,
        policy,
        standard_registry(),
        config.shards,
        ShardStrategy::RoundRobin,
        Arc::clone(&pool),
    )
    .expect("open durable cluster");
    for spec in &corpus {
        durable
            .mutate(Mutation::InsertSpec {
                spec: spec.clone(),
                policy: ppwf_core::policy::Policy::public(),
            })
            .expect("corpus loads");
    }
    let t = Instant::now();
    for chunk in stream.chunks(config.batch.max(1)) {
        for (outcome, _) in durable.mutate_batch(chunk.to_vec()) {
            outcome.expect("destructive stream applies durably");
        }
    }
    let durable_us = t.elapsed().as_secs_f64() * 1e6;
    let fsyncs = durable.durability_stats().expect("log attached").syncs;

    let t = Instant::now();
    let (recovered, recovery_stats) = EngineCluster::open_durable(
        Arc::clone(&storage) as Arc<dyn StorageBackend>,
        policy,
        standard_registry(),
        config.shards,
        ShardStrategy::RoundRobin,
        Arc::clone(&pool),
    )
    .expect("recover durable cluster");
    let recovery_us = t.elapsed().as_secs_f64() * 1e6;
    let (_, recovered_hits) =
        serve_pass(|g, q| recovered.search_as(g, q).map(|h| h.len()).unwrap_or(0), &log);
    assert_eq!(recovered_hits, fresh_hits, "recovery changed total hits");
    for (i, q) in log.iter().enumerate() {
        let g = E10_GROUPS[i % E10_GROUPS.len()];
        let a = recovered.search_as(g, q).unwrap();
        let b = engine_grown.search_as(g, q).unwrap();
        assert_eq!(
            a.iter().map(|h| h.spec.0).collect::<Vec<_>>(),
            b.iter().map(|h| h.spec.0).collect::<Vec<_>>(),
            "recovered cluster diverged on {q:?}"
        );
    }
    let assembled = recovered.assemble_repository().expect("consistent recovery");
    assert_eq!(assembled.len(), repo_incr.len(), "recovered id space diverged");
    assert_eq!(assembled.live_count(), repo_incr.live_count(), "recovered live count diverged");

    println!("\n-- durable pipeline ({} shards, batch {}) --", config.shards, config.batch);
    println!(
        "durable destructive writes: {:.1} µs/write, {} fsyncs",
        per_write(durable_us),
        fsyncs
    );
    println!(
        "recovery: {} records replayed in {:.1} ms; {} live / {} slots, answers bit-identical",
        recovery_stats.replayed,
        recovery_us / 1e3,
        assembled.live_count(),
        assembled.len(),
    );

    let json = format!(
        r#"{{
  "experiment": "E19",
  "title": "Destructive writes: targeted DeleteSpec/EditSpec index maintenance, tombstoned read path, durable group-committed pipeline with recovery",
  "seed": {seed},
  "corpus_specs": {specs},
  "writes": {writes},
  "write_mix": {{ "delete_pct": {dp}, "edit_pct": {ep}, "insert_pct": {ip}, "deletes": {dn}, "edits": {en} }},
  "reads": {reads},
  "shards": {shards},
  "index_maintenance": {{
    "full_rebuild_us_per_write": {fu:.3},
    "targeted_us_per_write": {iu:.3},
    "speedup_targeted_vs_full": {sp:.3},
    "full_builds_during_stream": 0,
    "docs_retracted": {dr},
    "live_slots": {live},
    "total_slots": {slots},
    "typed_pipeline_us_per_write": {tp:.3}
  }},
  "read_path": {{
    "fresh_cold_us_per_query": {fc:.3},
    "grown_cold_us_per_query": {gc:.3},
    "cold_ratio_grown_vs_fresh": {cr:.3},
    "fresh_warm_us_per_query": {fw:.4},
    "grown_warm_us_per_query": {gw:.4},
    "warm_ratio_grown_vs_fresh": {wr:.3}
  }},
  "durable_pipeline": {{
    "batch": {batch},
    "durable_us_per_write": {du:.3},
    "fsyncs": {fs},
    "recovery_records_replayed": {rr},
    "recovery_ms": {rm:.3},
    "recovered_bit_identical": true
  }},
  "acceptance": {{
    "threshold_maintenance_speedup": {thr:.1},
    "max_read_regression": {mrr:.2},
    "index_bit_identical_to_full_build": true,
    "retraction_counters_moved": true
  }},
  "note": "targeted delete/edit maintenance retracts the victim's postings term by term and re-verifies the append-only tail, so per-write cost is O(victim vocabulary + corpus tail scan), not O(1); effects naming a spec the index never saw fall back to the verifying refresh, and destructive conflicts inside a group-commit run flush it early, shrinking the amortized batch"
}}
"#,
        seed = config.seed,
        specs = config.specs,
        writes = stream.len(),
        dp = config.delete_pct,
        ep = config.edit_pct,
        ip = insert_pct,
        dn = deletes,
        en = edits,
        reads = log.len(),
        shards = config.shards,
        fu = per_write(full_us),
        iu = per_write(incr_us),
        sp = maintenance_speedup,
        dr = index_incr.docs_retracted(),
        live = repo_incr.live_count(),
        slots = repo_incr.len(),
        tp = per_write(pipeline_us),
        fc = per_q(fresh_cold_us),
        gc = per_q(grown_cold_us),
        cr = cold_ratio,
        fw = per_q(fresh_warm_us),
        gw = per_q(grown_warm_us),
        wr = warm_ratio,
        batch = config.batch,
        du = per_write(durable_us),
        fs = fsyncs,
        rr = recovery_stats.replayed,
        rm = recovery_us / 1e3,
        thr = config.min_speedup,
        mrr = config.max_read_regression,
    );
    std::fs::write(&config.out, &json).expect("write baseline JSON");
    println!("\nbaseline written to {}", config.out);

    println!(
        "per-write maintenance speedup: {maintenance_speedup:.2}x (threshold {:.1}x)",
        config.min_speedup
    );
    assert!(
        maintenance_speedup >= config.min_speedup,
        "E19 acceptance: targeted destructive maintenance must be ≥{:.1}x full rebuild per write (got {maintenance_speedup:.2}x)",
        config.min_speedup
    );
    assert!(
        cold_ratio <= config.max_read_regression && warm_ratio <= config.max_read_regression,
        "E19 acceptance: the destructively grown engine regressed reads (cold {cold_ratio:.2}x, warm {warm_ratio:.2}x, gate {:.2}x)",
        config.max_read_regression
    );
}
