//! E13 baseline emitter: the incremental write pipeline vs full per-write
//! index rebuilds, plus the cluster-front result cache's warm path.
//!
//! ```bash
//! cargo run --release -p ppwf-bench --bin e13_incremental_writes -- \
//!     [--out BENCH_e13_incremental_writes.json] [--specs 1024] \
//!     [--writes 128] [--reads 300] [--shards 4] [--seed 17] \
//!     [--exec-pct 60] [--policy-pct 20] [--min-speedup 5.0] \
//!     [--max-read-regression 1.2] [--max-warm-ratio 1.2]
//! ```
//!
//! One E11-shaped corpus, one distinct read log, one mixed typed-write
//! stream (the **workload-mix knob**: `--exec-pct` execution appends —
//! the paper's dominant write, provenance accruing over repeated
//! executions — `--policy-pct` policy swaps, the rest spec inserts).
//! Three measured sections:
//!
//! * **Per-write index maintenance.** The same stream drives two
//!   repository copies; after every write one side rebuilds its
//!   [`KeywordIndex`] from scratch (the pre-E13 engine behavior), the
//!   other calls `refresh` (append-only, fingerprint-verified). Before
//!   any number is reported the refreshed index is checked bit-identical
//!   to a fresh build of the final corpus, and its counters must show
//!   zero full rebuilds and zero index work for execution appends and
//!   policy swaps.
//! * **Read no-regression.** An engine that *grew* through the typed
//!   write pipeline serves the read log against an engine constructed
//!   fresh over the identical final corpus — cold and warm. The
//!   incremental index must serve reads no slower (within
//!   `--max-read-regression`), and both engines must return identical
//!   spec ids.
//! * **Cluster-front warm path.** A sharded cluster serves the same log
//!   through its version-vectored front cache; its warm pass must land
//!   within `--max-warm-ratio` of the single engine's warm pass (E11's
//!   former warm-path gap). A mid-stream execution append then proves the
//!   front cache *survives* the dominant write: the follow-up warm pass
//!   still hits the front, with answers unchanged.
//!
//! **Honest boundary.** The refresh fast path verifies per-spec text
//! fingerprints across the corpus before trusting its append-only
//! invariant, so per-write maintenance is O(corpus-text-scan), not O(1) —
//! vastly cheaper than re-tokenizing and re-sorting postings, but still
//! linear; and any verified structural mismatch (a mutated existing spec,
//! a shrunken corpus — no current mutation can cause either) forces a
//! full rebuild by design. The binary exits non-zero when any acceptance
//! gate fails.

use ppwf_bench::{
    e11_corpus, e11_query_log, e11_repo, e13_write_stream, standard_registry, E10_GROUPS,
};
use ppwf_query::cluster::EngineCluster;
use ppwf_query::engine::QueryEngine;
use ppwf_query::keyword::KeywordQuery;
use ppwf_repo::keyword_index::KeywordIndex;
use ppwf_repo::mutation::Mutation;
use ppwf_repo::repository::Repository;
use std::time::Instant;

struct Config {
    out: String,
    specs: usize,
    writes: usize,
    reads: usize,
    shards: usize,
    seed: u64,
    exec_pct: u32,
    policy_pct: u32,
    min_speedup: f64,
    max_read_regression: f64,
    max_warm_ratio: f64,
}

fn parse_args() -> Config {
    let mut config = Config {
        out: "BENCH_e13_incremental_writes.json".to_string(),
        specs: 1024,
        writes: 128,
        reads: 300,
        shards: 4,
        seed: 17,
        exec_pct: 60,
        policy_pct: 20,
        min_speedup: 5.0,
        max_read_regression: 1.2,
        max_warm_ratio: 1.2,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need =
            |n: usize| args.get(n).unwrap_or_else(|| panic!("{} needs a value", args[n - 1]));
        match args[i].as_str() {
            "--out" => config.out = need(i + 1).clone(),
            "--specs" => config.specs = need(i + 1).parse().expect("bad spec count"),
            "--writes" => config.writes = need(i + 1).parse().expect("bad write count"),
            "--reads" => config.reads = need(i + 1).parse().expect("bad read count"),
            "--shards" => config.shards = need(i + 1).parse().expect("bad shard count"),
            "--seed" => config.seed = need(i + 1).parse().expect("bad seed"),
            "--exec-pct" => config.exec_pct = need(i + 1).parse().expect("bad exec pct"),
            "--policy-pct" => config.policy_pct = need(i + 1).parse().expect("bad policy pct"),
            "--min-speedup" => config.min_speedup = need(i + 1).parse().expect("bad threshold"),
            "--max-read-regression" => {
                config.max_read_regression = need(i + 1).parse().expect("bad ratio")
            }
            "--max-warm-ratio" => config.max_warm_ratio = need(i + 1).parse().expect("bad ratio"),
            other => panic!("unknown argument {other:?}"),
        }
        i += 2;
    }
    config
}

/// Serve the whole read log once; returns (elapsed µs, hits served).
fn serve_pass(mut serve: impl FnMut(&str, &str) -> usize, log: &[String]) -> (f64, usize) {
    let t = Instant::now();
    let mut hits = 0usize;
    for (i, q) in log.iter().enumerate() {
        hits += serve(E10_GROUPS[i % E10_GROUPS.len()], q);
    }
    (t.elapsed().as_secs_f64() * 1e6, hits)
}

/// Best of `reps` serve passes — warm passes finish in tens of
/// microseconds, where a single scheduler interrupt dwarfs the signal;
/// the minimum is the standard noise floor estimate.
fn best_pass(
    reps: usize,
    mut serve: impl FnMut(&str, &str) -> usize,
    log: &[String],
) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut hits = 0usize;
    for _ in 0..reps.max(1) {
        let (us, h) = serve_pass(&mut serve, log);
        best = best.min(us);
        hits = h;
    }
    (best, hits)
}

/// Assert the maintained index answers exactly like a fresh full build.
fn assert_index_equivalent(maintained: &KeywordIndex, repo: &Repository, log: &[String]) {
    let fresh = KeywordIndex::build(repo);
    assert_eq!(maintained.doc_count(), fresh.doc_count(), "doc_count diverged");
    assert_eq!(maintained.term_count(), fresh.term_count(), "term_count diverged");
    for q in log {
        for term in &KeywordQuery::parse(q).terms {
            assert_eq!(
                maintained.lookup_query_term(term),
                fresh.lookup_query_term(term),
                "postings diverged on {term:?}"
            );
            assert_eq!(maintained.df_cached(term), fresh.df(term), "df diverged on {term:?}");
            assert_eq!(
                maintained.idf_cached(term).to_bits(),
                fresh.idf_cached(term).to_bits(),
                "idf diverged on {term:?}"
            );
        }
    }
}

fn main() {
    let config = parse_args();
    println!("== E13: incremental write pipeline vs full per-write index rebuilds ==");
    let insert_pct = 100 - config.exec_pct - config.policy_pct;
    println!(
        "corpus: {} specs · {} writes ({}% exec appends, {}% policy swaps, {insert_pct}% inserts) · {} reads · seed {}",
        config.specs, config.writes, config.exec_pct, config.policy_pct, config.reads, config.seed
    );

    let corpus = e11_corpus(config.specs, config.seed);
    let log = e11_query_log(&corpus, config.reads, config.seed ^ 0x5EED);
    assert!(log.len() >= config.reads * 9 / 10, "read log came up short");
    let stream = e13_write_stream(
        &corpus,
        config.writes,
        config.exec_pct,
        config.policy_pct,
        config.seed ^ 0xE13,
    );
    let structure_free = stream
        .iter()
        .filter(|m| matches!(m, Mutation::AddExecution { .. } | Mutation::SetPolicy { .. }))
        .count();

    // -- section A: per-write index maintenance -----------------------------
    // Baseline: the pre-E13 engine rebuilt the whole index on every write.
    let mut repo_full = e11_repo(&corpus);
    let mut index_full = KeywordIndex::build(&repo_full);
    let mut full_us = 0.0f64;
    for m in stream.iter().cloned() {
        repo_full.apply(m).expect("write stream valid");
        let t = Instant::now();
        index_full = KeywordIndex::build(&repo_full);
        full_us += t.elapsed().as_secs_f64() * 1e6;
    }
    drop(index_full);

    // Incremental: append-only refresh keyed on the typed effect.
    let mut repo_incr = e11_repo(&corpus);
    let mut index_incr = KeywordIndex::build(&repo_incr);
    let docs_at_start = index_incr.docs_indexed();
    let mut incr_us = 0.0f64;
    for m in stream.iter().cloned() {
        repo_incr.apply(m).expect("write stream valid");
        let t = Instant::now();
        index_incr.refresh(&repo_incr);
        incr_us += t.elapsed().as_secs_f64() * 1e6;
    }
    assert_eq!(index_incr.full_builds(), 1, "refresh must never fall back to a full rebuild");
    assert!(
        index_incr.docs_indexed() > docs_at_start || structure_free == stream.len(),
        "inserts must append postings"
    );
    assert_index_equivalent(&index_incr, &repo_incr, &log);
    let maintenance_speedup = full_us / incr_us;

    let per_write = |us: f64| us / config.writes.max(1) as f64;
    println!("\n-- per-write index maintenance ({} writes) --", config.writes);
    println!("{:>22} {:>14} {:>12}", "path", "µs/write", "speedup");
    println!("{:>22} {:>14.1} {:>12}", "full rebuild", per_write(full_us), "1.0x");
    println!(
        "{:>22} {:>14.1} {:>11.1}x",
        "incremental refresh",
        per_write(incr_us),
        maintenance_speedup
    );
    println!(
        "index work: {} docs appended over {} writes ({} structure-free writes did zero)",
        index_incr.docs_indexed() - docs_at_start,
        stream.len(),
        structure_free
    );

    // -- section B: read no-regression --------------------------------------
    // Grow an engine through the typed pipeline; build its twin fresh over
    // the identical final corpus. A cold pass is one-shot per engine and
    // totals only a few ms, where one scheduler interrupt on a shared host
    // swamps the signal — so measure COLD_REPS independent engine pairs
    // (order alternated to cancel measurement-order bias) and compare the
    // per-side minima, the same noise-floor estimate the warm passes use.
    const COLD_REPS: usize = 3;
    let mut pipeline_us = 0.0f64;
    let (mut fresh_cold_us, mut grown_cold_us) = (f64::INFINITY, f64::INFINITY);
    let mut fresh_hits = 0usize;
    let mut pair: Option<(QueryEngine, QueryEngine)> = None;
    {
        // Warm the allocator/page cache outside timing.
        let warmup = QueryEngine::new(e11_repo(&corpus), standard_registry());
        let _ = serve_pass(|g, q| warmup.search_as(g, q).map(|h| h.len()).unwrap_or(0), &log);
    }
    for rep in 0..COLD_REPS {
        let mut engine_grown = QueryEngine::new(e11_repo(&corpus), standard_registry());
        let t = Instant::now();
        for m in stream.iter().cloned() {
            engine_grown.mutate(m).expect("write stream valid");
        }
        pipeline_us = t.elapsed().as_secs_f64() * 1e6;
        let mut repo_replay = e11_repo(&corpus);
        for m in stream.iter().cloned() {
            repo_replay.apply(m).expect("write stream valid");
        }
        let engine_fresh = QueryEngine::new(repo_replay, standard_registry());

        let serve_fresh = |g: &str, q: &str| -> usize {
            engine_fresh.search_as(g, q).map(|h| h.len()).unwrap_or(0)
        };
        let serve_grown = |g: &str, q: &str| -> usize {
            engine_grown.search_as(g, q).map(|h| h.len()).unwrap_or(0)
        };
        let ((fresh_us, fh), (grown_us, gh)) = if rep % 2 == 0 {
            let f = serve_pass(serve_fresh, &log);
            let g = serve_pass(serve_grown, &log);
            (f, g)
        } else {
            let g = serve_pass(serve_grown, &log);
            let f = serve_pass(serve_fresh, &log);
            (f, g)
        };
        assert_eq!(gh, fh, "the grown engine serves different answers");
        fresh_cold_us = fresh_cold_us.min(fresh_us);
        grown_cold_us = grown_cold_us.min(grown_us);
        fresh_hits = fh;
        pair = Some((engine_grown, engine_fresh));
    }
    let (engine_grown, engine_fresh) = pair.expect("at least one rep");
    for (i, q) in log.iter().enumerate() {
        let g = E10_GROUPS[i % E10_GROUPS.len()];
        let a = engine_grown.search_as(g, q).unwrap();
        let b = engine_fresh.search_as(g, q).unwrap();
        assert_eq!(
            a.iter().map(|h| h.spec.0).collect::<Vec<_>>(),
            b.iter().map(|h| h.spec.0).collect::<Vec<_>>(),
            "grown vs fresh diverged on {q:?}"
        );
    }
    const WARM_REPS: usize = 9;
    let (fresh_warm_us, _) = best_pass(
        WARM_REPS,
        |g, q| engine_fresh.search_as(g, q).map(|h| h.len()).unwrap_or(0),
        &log,
    );
    let (grown_warm_us, _) = best_pass(
        WARM_REPS,
        |g, q| engine_grown.search_as(g, q).map(|h| h.len()).unwrap_or(0),
        &log,
    );
    let cold_ratio = grown_cold_us / fresh_cold_us;
    let warm_ratio = grown_warm_us / fresh_warm_us;

    let per_q = |us: f64| us / log.len() as f64;
    println!("\n-- read path after {} writes ({} reads) --", config.writes, log.len());
    println!("{:>22} {:>12} {:>12}", "engine", "cold µs/q", "warm µs/q");
    println!("{:>22} {:>12.1} {:>12.3}", "fresh build", per_q(fresh_cold_us), per_q(fresh_warm_us));
    println!(
        "{:>22} {:>12.1} {:>12.3}",
        "grown incrementally",
        per_q(grown_cold_us),
        per_q(grown_warm_us)
    );
    println!(
        "cold ratio {cold_ratio:.3}, warm ratio {warm_ratio:.3} (gate ≤{:.1})",
        config.max_read_regression
    );

    // -- section C: cluster-front warm path ---------------------------------
    let mut repo_replay2 = e11_repo(&corpus);
    for m in stream.iter().cloned() {
        repo_replay2.apply(m).expect("write stream valid");
    }
    let mut cluster = EngineCluster::new(repo_replay2, standard_registry(), config.shards);
    let (cluster_cold_us, cluster_cold_hits) =
        serve_pass(|g, q| cluster.search_as(g, q).map(|h| h.len()).unwrap_or(0), &log);
    assert_eq!(cluster_cold_hits, fresh_hits, "cluster changed total hits");
    let (cluster_warm_us, _) =
        best_pass(WARM_REPS, |g, q| cluster.search_as(g, q).map(|h| h.len()).unwrap_or(0), &log);
    let warm_vs_single = cluster_warm_us / fresh_warm_us;
    let front_before = cluster.stats().front;

    // The dominant write must leave the front cache warm: append one
    // execution, then re-serve the whole log and require front hits only.
    let exec_write =
        stream.iter().find(|m| matches!(m, Mutation::AddExecution { .. })).cloned().unwrap_or_else(
            || e13_write_stream(&corpus, 8, 100, 0, config.seed ^ 0xFE).swap_remove(0),
        );
    cluster.mutate(exec_write).expect("append valid");
    let (cluster_after_us, cluster_after_hits) =
        serve_pass(|g, q| cluster.search_as(g, q).map(|h| h.len()).unwrap_or(0), &log);
    assert_eq!(cluster_after_hits, cluster_cold_hits, "append changed keyword answers");
    let front_after = cluster.stats().front;
    assert_eq!(
        front_after.hits,
        front_before.hits + log.len() as u64,
        "an execution append must not evict a single front-cache entry"
    );

    println!("\n-- cluster-front warm path ({} shards) --", config.shards);
    println!("{:>26} {:>12}", "pass", "µs/q");
    println!("{:>26} {:>12.3}", "single engine warm", per_q(fresh_warm_us));
    println!("{:>26} {:>12.3}", "cluster cold (scatter)", per_q(cluster_cold_us));
    println!("{:>26} {:>12.3}", "cluster warm (front)", per_q(cluster_warm_us));
    println!("{:>26} {:>12.3}", "cluster warm post-append", per_q(cluster_after_us));
    println!(
        "cluster warm / single warm = {warm_vs_single:.3} (gate ≤{:.1}); front hit rate {:.4}",
        config.max_warm_ratio,
        front_after.hits as f64 / (front_after.hits + front_after.misses) as f64
    );

    let json = format!(
        r#"{{
  "experiment": "E13",
  "title": "Incremental write pipeline: typed mutations, append-only KeywordIndex refresh, cluster-front result cache",
  "seed": {seed},
  "corpus_specs": {specs},
  "writes": {writes},
  "write_mix": {{ "exec_append_pct": {ep}, "policy_swap_pct": {pp}, "insert_pct": {ip} }},
  "reads": {reads},
  "shards": {shards},
  "index_maintenance": {{
    "full_rebuild_us_per_write": {fu:.3},
    "incremental_refresh_us_per_write": {iu:.3},
    "speedup_incremental_vs_full": {sp:.3},
    "full_builds_during_stream": 0,
    "docs_appended": {docs},
    "structure_free_writes": {sf},
    "typed_pipeline_us_per_write": {tp:.3}
  }},
  "read_path": {{
    "fresh_cold_us_per_query": {fc:.3},
    "grown_cold_us_per_query": {gc:.3},
    "cold_ratio_grown_vs_fresh": {cr:.3},
    "fresh_warm_us_per_query": {fw:.4},
    "grown_warm_us_per_query": {gw:.4},
    "warm_ratio_grown_vs_fresh": {wr:.3}
  }},
  "cluster_front": {{
    "cluster_cold_us_per_query": {cc:.3},
    "cluster_warm_us_per_query": {cw:.4},
    "warm_ratio_cluster_vs_single": {ws:.3},
    "front_survives_execution_append": true,
    "post_append_warm_us_per_query": {ca:.4}
  }},
  "acceptance": {{
    "threshold_maintenance_speedup": {thr:.1},
    "max_read_regression": {mrr:.2},
    "max_warm_ratio": {mwr:.2},
    "index_bit_identical_to_full_build": true,
    "zero_index_work_for_structure_free_writes": true
  }},
  "note": "refresh verifies per-spec text fingerprints before trusting its append-only invariant, so maintenance is O(corpus text scan) per write, not O(1); a verified structural mismatch (impossible under current typed mutations) forces a full rebuild by design"
}}
"#,
        seed = config.seed,
        specs = config.specs,
        writes = stream.len(),
        ep = config.exec_pct,
        pp = config.policy_pct,
        ip = insert_pct,
        reads = log.len(),
        shards = config.shards,
        fu = per_write(full_us),
        iu = per_write(incr_us),
        sp = maintenance_speedup,
        docs = index_incr.docs_indexed() - docs_at_start,
        sf = structure_free,
        tp = per_write(pipeline_us),
        fc = per_q(fresh_cold_us),
        gc = per_q(grown_cold_us),
        cr = cold_ratio,
        fw = per_q(fresh_warm_us),
        gw = per_q(grown_warm_us),
        wr = warm_ratio,
        cc = per_q(cluster_cold_us),
        cw = per_q(cluster_warm_us),
        ws = warm_vs_single,
        ca = per_q(cluster_after_us),
        thr = config.min_speedup,
        mrr = config.max_read_regression,
        mwr = config.max_warm_ratio,
    );
    std::fs::write(&config.out, &json).expect("write baseline JSON");
    println!("\nbaseline written to {}", config.out);

    println!(
        "per-write maintenance speedup: {maintenance_speedup:.2}x (threshold {:.1}x)",
        config.min_speedup
    );
    assert!(
        maintenance_speedup >= config.min_speedup,
        "E13 acceptance: incremental refresh must be ≥{:.1}x full rebuild per write (got {maintenance_speedup:.2}x)",
        config.min_speedup
    );
    assert!(
        cold_ratio <= config.max_read_regression && warm_ratio <= config.max_read_regression,
        "E13 acceptance: the incrementally grown engine regressed reads (cold {cold_ratio:.2}x, warm {warm_ratio:.2}x, gate {:.2}x)",
        config.max_read_regression
    );
    assert!(
        warm_vs_single <= config.max_warm_ratio,
        "E13 acceptance: cluster warm path must stay within {:.1}x of the single engine (got {warm_vs_single:.2}x)",
        config.max_warm_ratio
    );
}
