//! E14 baseline emitter: the async serving front (`ServeFront`) vs
//! blocking per-thread serving, at fixed concurrency on a small fixed
//! worker pool.
//!
//! ```bash
//! cargo run --release -p ppwf-bench --bin e14_async_serving -- \
//!     [--out BENCH_e14_async_serving.json] [--specs 512] [--shards 4] \
//!     [--pool-threads 2] [--concurrency 8] [--requests 4000] \
//!     [--distinct 96] [--write-every 25] [--seed 17] [--min-speedup 2.0]
//! ```
//!
//! One E11-shaped corpus, one warm-heavy request stream (`--distinct`
//! distinct queries cycled over `--requests` slots — production serving
//! repeats itself; the distinct pool sizes the cold fraction). Three
//! serving modes run the identical stream at the same concurrency, each
//! over a freshly built cluster on its own `--pool-threads` worker pool:
//!
//! * **`thread_per_request`** — the blocking model the motivation names:
//!   every request occupies one OS thread for its full duration (spawned
//!   per request, at most `--concurrency` alive). The per-request spawn,
//!   stack and context-switch cost is the price of holding N queries in
//!   flight with blocking calls.
//! * **`blocking_pool`** — the *well-tuned* blocking alternative:
//!   `--concurrency` pre-spawned serving threads in a closed loop over a
//!   shared cluster. No spawn cost, but N in flight still needs N OS
//!   threads. Reported for honesty, not gated: on warm CPU-bound traffic
//!   it approaches the async front (see the boundary note below).
//! * **`async_front`** — one submitting thread, a sliding window of
//!   `--concurrency` in-flight tickets over `ServeFront`: warm hits
//!   complete inline, cold queries fan out as per-shard pool jobs.
//!
//! A fourth section drives a mixed read/write stream (`--write-every`)
//! through the front to price the write fence, and the cold burst is
//! re-run un-windowed to read the in-flight high-water mark (the
//! multiplexing instrument: N in flight on one submitting thread).
//!
//! **Honest boundary.** The async win is a *dispatch-overhead* win: it
//! exists because per-request cost (warm probes, selective cold queries)
//! is small next to a thread spawn. As query cost grows — large corpora,
//! cold-dominated mixes — every mode converges to the pool's CPU
//! throughput and the gap narrows toward 1× (the `blocking_pool` column
//! shows that limit today). The ≥2× gate is against `thread_per_request`
//! at `--concurrency ≥ 8`; the binary exits non-zero when it fails, or
//! when any answer diverges from the blocking reference.

use ppwf_bench::{
    e11_corpus, e11_repo, e13_write_stream, e14_schedule, standard_registry, E10_GROUPS,
};
use ppwf_query::cluster::EngineCluster;
use ppwf_query::route::ShardStrategy;
use ppwf_query::serve::{QueryAnswer, ServeFront, ServeRequest};
use ppwf_repo::pool::WorkerPool;
use ppwf_workloads::ScheduledRequest;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct Config {
    out: String,
    specs: usize,
    shards: usize,
    pool_threads: usize,
    concurrency: usize,
    requests: usize,
    distinct: usize,
    write_every: usize,
    seed: u64,
    min_speedup: f64,
}

fn parse_args() -> Config {
    let mut config = Config {
        out: "BENCH_e14_async_serving.json".to_string(),
        specs: 512,
        shards: 4,
        pool_threads: 2,
        concurrency: 8,
        requests: 4000,
        distinct: 96,
        write_every: 25,
        seed: 17,
        min_speedup: 2.0,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need =
            |n: usize| args.get(n).unwrap_or_else(|| panic!("{} needs a value", args[n - 1]));
        match args[i].as_str() {
            "--out" => config.out = need(i + 1).clone(),
            "--specs" => config.specs = need(i + 1).parse().expect("bad spec count"),
            "--shards" => config.shards = need(i + 1).parse().expect("bad shard count"),
            "--pool-threads" => config.pool_threads = need(i + 1).parse().expect("bad pool size"),
            "--concurrency" => config.concurrency = need(i + 1).parse().expect("bad concurrency"),
            "--requests" => config.requests = need(i + 1).parse().expect("bad request count"),
            "--distinct" => config.distinct = need(i + 1).parse().expect("bad distinct count"),
            "--write-every" => config.write_every = need(i + 1).parse().expect("bad write spacing"),
            "--seed" => config.seed = need(i + 1).parse().expect("bad seed"),
            "--min-speedup" => config.min_speedup = need(i + 1).parse().expect("bad threshold"),
            other => panic!("unknown argument {other:?}"),
        }
        i += 2;
    }
    config
}

fn build_cluster(corpus: &[ppwf_model::spec::Specification], config: &Config) -> EngineCluster {
    EngineCluster::with_config(
        e11_repo(corpus),
        standard_registry(),
        config.shards,
        ShardStrategy::RoundRobin,
        Arc::new(WorkerPool::new(config.pool_threads)),
    )
}

fn group_of(r: &ScheduledRequest) -> &'static str {
    E10_GROUPS[r.group % E10_GROUPS.len()]
}

/// Blocking model 1: one OS thread per request, at most `concurrency`
/// alive (sliding window — join the oldest before spawning past the
/// window). Returns (elapsed seconds, total hits).
fn serve_thread_per_request(
    cluster: &Arc<EngineCluster>,
    stream: &[ScheduledRequest],
    concurrency: usize,
) -> (f64, usize) {
    let t = Instant::now();
    let mut window: VecDeque<std::thread::JoinHandle<usize>> = VecDeque::new();
    let mut hits = 0usize;
    for r in stream {
        if window.len() >= concurrency {
            hits += window.pop_front().expect("window nonempty").join().expect("serving thread");
        }
        let cluster = Arc::clone(cluster);
        let group = group_of(r);
        let query = r.query.clone().expect("read-only stream");
        window.push_back(std::thread::spawn(move || {
            cluster.search_as(group, &query).map(|h| h.len()).unwrap_or(0)
        }));
    }
    for h in window {
        hits += h.join().expect("serving thread");
    }
    (t.elapsed().as_secs_f64(), hits)
}

/// Blocking model 2: `concurrency` pre-spawned serving threads in a
/// closed loop over a shared request cursor.
fn serve_blocking_pool(
    cluster: &Arc<EngineCluster>,
    stream: &[ScheduledRequest],
    concurrency: usize,
) -> (f64, usize) {
    let t = Instant::now();
    let cursor = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..concurrency {
            let cluster = Arc::clone(cluster);
            let (cursor, hits, stream) = (&cursor, &hits, stream);
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(r) = stream.get(i) else { break };
                let query = r.query.as_deref().expect("read-only stream");
                let served = cluster.search_as(group_of(r), query).map(|h| h.len()).unwrap_or(0);
                hits.fetch_add(served, Ordering::Relaxed);
            });
        }
    });
    (t.elapsed().as_secs_f64(), hits.into_inner())
}

/// The async front: one submitting thread, a sliding window of
/// `concurrency` in-flight tickets.
fn serve_async_front(
    front: &ServeFront,
    stream: &[ScheduledRequest],
    concurrency: usize,
) -> (f64, usize) {
    let t = Instant::now();
    let mut window = VecDeque::new();
    let mut hits = 0usize;
    let take = |response: ppwf_query::serve::ServeResponse| match response.answer {
        QueryAnswer::Keyword(Some(h)) => h.len(),
        QueryAnswer::Keyword(None) => 0,
        other => panic!("unexpected answer {other:?}"),
    };
    for r in stream {
        if window.len() >= concurrency {
            let ticket: ppwf_repo::ticket::Ticket<_> = window.pop_front().expect("window");
            hits += take(ticket.wait());
        }
        let query = r.query.clone().expect("read-only stream");
        window.push_back(front.submit(ServeRequest::Keyword { group: group_of(r).into(), query }));
    }
    for ticket in window {
        hits += take(ticket.wait());
    }
    (t.elapsed().as_secs_f64(), hits)
}

/// Best-of-`reps` wall time for one serving mode, hits checked constant.
fn best_of(reps: usize, mut run: impl FnMut() -> (f64, usize)) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut hits = 0usize;
    for rep in 0..reps.max(1) {
        let (secs, h) = run();
        if rep > 0 {
            assert_eq!(h, hits, "serving mode changed its answers between reps");
        }
        hits = h;
        best = best.min(secs);
    }
    (best, hits)
}

fn main() {
    let config = parse_args();
    println!("== E14: async serving front vs blocking per-thread serving ==");
    println!(
        "corpus: {} specs · {} shards · pool {} threads · concurrency {} · {} requests over {} distinct queries · seed {}",
        config.specs,
        config.shards,
        config.pool_threads,
        config.concurrency,
        config.requests,
        config.distinct,
        config.seed
    );

    let corpus = e11_corpus(config.specs, config.seed);
    let reads =
        e14_schedule(&corpus, config.requests, config.distinct, config.concurrency, 0, config.seed);
    assert!(reads.iter().all(|r| r.query.is_some()));

    const REPS: usize = 3;
    // -- mode 1: thread per request ------------------------------------------
    let cluster_tpr = Arc::new(build_cluster(&corpus, &config));
    let (tpr_secs, tpr_hits) =
        best_of(REPS, || serve_thread_per_request(&cluster_tpr, &reads, config.concurrency));

    // -- mode 2: pre-spawned blocking serving pool ---------------------------
    let cluster_pool = Arc::new(build_cluster(&corpus, &config));
    let (pool_secs, pool_hits) =
        best_of(REPS, || serve_blocking_pool(&cluster_pool, &reads, config.concurrency));

    // -- mode 3: async front -------------------------------------------------
    let front = ServeFront::new(build_cluster(&corpus, &config));
    let (async_secs, async_hits) =
        best_of(REPS, || serve_async_front(&front, &reads, config.concurrency));
    front.quiesce();

    assert_eq!(async_hits, tpr_hits, "async front diverged from blocking serving");
    assert_eq!(pool_hits, tpr_hits, "blocking modes diverged from each other");
    // Bitwise spot check against a fresh blocking reference.
    {
        let reference = build_cluster(&corpus, &config);
        front.with_cluster(|served| {
            for r in reads.iter().take(64) {
                let q = r.query.as_deref().unwrap();
                let a = served.search_as(group_of(r), q).unwrap();
                let b = reference.search_as(group_of(r), q).unwrap();
                assert_eq!(a.len(), b.len(), "hit count diverged on {q:?}");
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.spec, y.spec, "spec ids diverged on {q:?}");
                    assert_eq!(x.prefix, y.prefix, "prefixes diverged on {q:?}");
                }
            }
        });
    }

    let throughput = |secs: f64| config.requests as f64 / secs;
    let speedup_vs_tpr = tpr_secs / async_secs;
    let speedup_vs_pool = pool_secs / async_secs;
    println!(
        "\n-- read throughput ({} requests, concurrency {}) --",
        config.requests, config.concurrency
    );
    println!("{:>24} {:>12} {:>12} {:>10}", "mode", "total s", "req/s", "speedup");
    println!(
        "{:>24} {:>12.4} {:>12.0} {:>10}",
        "thread_per_request",
        tpr_secs,
        throughput(tpr_secs),
        "1.0x"
    );
    println!(
        "{:>24} {:>12.4} {:>12.0} {:>9.2}x",
        "blocking_pool",
        pool_secs,
        throughput(pool_secs),
        tpr_secs / pool_secs
    );
    println!(
        "{:>24} {:>12.4} {:>12.0} {:>9.2}x",
        "async_front",
        async_secs,
        throughput(async_secs),
        speedup_vs_tpr
    );

    // -- multiplexing instrument: un-windowed cold burst ---------------------
    // A fresh front, every distinct query submitted before any wait. The
    // pool's workers are plugged during submission (released after), so
    // the measurement is deterministic: the in-flight high-water mark is
    // how many queries one submitting thread held open at once — the
    // capacity blocking per-thread serving buys only with OS threads.
    let burst_pool = Arc::new(WorkerPool::new(config.pool_threads));
    let burst_front = ServeFront::with_pool(
        EngineCluster::with_config(
            e11_repo(&corpus),
            standard_registry(),
            config.shards,
            ShardStrategy::RoundRobin,
            Arc::clone(&burst_pool),
        ),
        Arc::clone(&burst_pool),
    );
    let burst: Vec<&ScheduledRequest> = {
        let mut seen = std::collections::HashSet::new();
        reads.iter().filter(|r| seen.insert((r.group, r.query.clone()))).collect()
    };
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let gate = Arc::new(std::sync::Mutex::new(release_rx));
    for _ in 0..config.pool_threads {
        let gate = Arc::clone(&gate);
        burst_pool.exec(move || {
            let _ = gate.lock().unwrap().recv();
        });
    }
    let tickets: Vec<_> = burst
        .iter()
        .map(|r| {
            burst_front.submit(ServeRequest::Keyword {
                group: group_of(r).into(),
                query: r.query.clone().unwrap(),
            })
        })
        .collect();
    let burst_stats = burst_front.stats();
    for _ in 0..config.pool_threads {
        release_tx.send(()).expect("release plugged worker");
    }
    for t in tickets {
        t.wait();
    }
    burst_front.quiesce();
    println!(
        "cold burst: {} distinct requests, in-flight high water {} (blocking per-thread serving would need {} OS threads)",
        burst.len(),
        burst_stats.in_flight_high_water,
        burst_stats.in_flight_high_water
    );

    // -- fenced mixed read/write stream --------------------------------------
    let mixed = e14_schedule(
        &corpus,
        config.requests / 4,
        config.distinct,
        config.concurrency,
        config.write_every,
        config.seed,
    );
    let writes_needed = mixed.iter().filter(|r| r.query.is_none()).count();
    let mutations = e13_write_stream(&corpus, writes_needed, 70, 20, config.seed ^ 0xE14);
    let mixed_front = ServeFront::new(build_cluster(&corpus, &config));
    let t = Instant::now();
    {
        let mut window = VecDeque::new();
        let mut next_write = 0usize;
        for r in &mixed {
            if window.len() >= config.concurrency {
                let _ = window.pop_front().map(|t: ppwf_repo::ticket::Ticket<_>| t.wait());
            }
            let request = match &r.query {
                Some(q) => ServeRequest::Keyword { group: group_of(r).into(), query: q.clone() },
                None => {
                    let m = mutations[next_write % mutations.len()].clone();
                    next_write += 1;
                    ServeRequest::mutate(m)
                }
            };
            window.push_back(mixed_front.submit(request));
        }
        for t in window {
            t.wait();
        }
    }
    let mixed_secs = t.elapsed().as_secs_f64();
    mixed_front.quiesce();
    let mixed_stats = mixed_front.stats();
    assert_eq!(mixed_stats.completed, mixed_stats.submitted, "front lost requests");
    assert_eq!(mixed_stats.mutations as usize, writes_needed, "every mutation must apply");
    println!(
        "mixed stream: {} requests ({} writes) in {:.4}s — {:.0} req/s, {} fence waits, warm inline {}",
        mixed.len(),
        writes_needed,
        mixed_secs,
        mixed.len() as f64 / mixed_secs,
        mixed_stats.fence_waits,
        mixed_stats.warm_inline
    );

    let stats = front.stats();
    let latency_buckets: Vec<String> = stats.latency_counts.iter().map(|c| c.to_string()).collect();
    let json = format!(
        r#"{{
  "experiment": "E14",
  "title": "Async serving front: multiplexed in-flight cluster queries on the worker pool",
  "seed": {seed},
  "corpus_specs": {specs},
  "shards": {shards},
  "pool_threads": {pool_threads},
  "concurrency": {concurrency},
  "requests": {requests},
  "distinct_queries": {distinct},
  "read_throughput": {{
    "thread_per_request_req_per_s": {tpr:.0},
    "blocking_pool_req_per_s": {bp:.0},
    "async_front_req_per_s": {af:.0},
    "speedup_async_vs_thread_per_request": {sp:.3},
    "speedup_async_vs_blocking_pool": {spp:.3}
  }},
  "multiplexing": {{
    "cold_burst_requests": {burst_n},
    "in_flight_high_water": {hw},
    "submitting_threads": 1,
    "warm_inline_completions": {warm},
    "latency_bucket_bounds_us": [4, 16, 64, 256, 1024, 4096, 16384],
    "latency_bucket_counts": [{latency}]
  }},
  "mixed_stream": {{
    "requests": {mixed_n},
    "writes": {mixed_w},
    "req_per_s": {mixed_rps:.0},
    "fence_waits": {fences},
    "mutations_applied": {muts}
  }},
  "acceptance": {{
    "threshold_speedup_vs_thread_per_request": {thr:.1},
    "answers_bit_identical_to_blocking_cluster": true,
    "no_requests_lost": true
  }},
  "note": "the async win is a dispatch-overhead win (warm probes and selective cold queries are small next to a per-request thread spawn); as query cost grows every mode converges to the pool's CPU throughput — the blocking_pool column shows that limit. Single-core host: multiplexing buys capacity (N in flight per submitting thread), not extra parallelism"
}}
"#,
        seed = config.seed,
        specs = config.specs,
        shards = config.shards,
        pool_threads = config.pool_threads,
        concurrency = config.concurrency,
        requests = config.requests,
        distinct = config.distinct,
        tpr = throughput(tpr_secs),
        bp = throughput(pool_secs),
        af = throughput(async_secs),
        sp = speedup_vs_tpr,
        spp = speedup_vs_pool,
        burst_n = burst.len(),
        hw = burst_stats.in_flight_high_water,
        warm = stats.warm_inline,
        latency = latency_buckets.join(", "),
        mixed_n = mixed.len(),
        mixed_w = writes_needed,
        mixed_rps = mixed.len() as f64 / mixed_secs,
        fences = mixed_stats.fence_waits,
        muts = mixed_stats.mutations,
        thr = config.min_speedup,
    );
    std::fs::write(&config.out, &json).expect("write baseline JSON");
    println!("\nbaseline written to {}", config.out);

    println!(
        "async vs thread-per-request speedup: {speedup_vs_tpr:.2}x (threshold {:.1}x)",
        config.min_speedup
    );
    assert!(
        speedup_vs_tpr >= config.min_speedup,
        "E14 acceptance: async front must be ≥{:.1}x blocking thread-per-request serving at concurrency {} (got {speedup_vs_tpr:.2}x)",
        config.min_speedup,
        config.concurrency
    );
    assert!(
        burst_stats.in_flight_high_water as usize >= config.concurrency.min(burst.len()) / 2,
        "E14 acceptance: the front must actually multiplex (high water {}, concurrency {})",
        burst_stats.in_flight_high_water,
        config.concurrency
    );
}
