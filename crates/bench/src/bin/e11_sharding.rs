//! E11 baseline emitter: sharded vs single-engine query serving.
//!
//! ```bash
//! cargo run --release -p ppwf-bench --bin e11_sharding -- \
//!     [--out BENCH_e11_sharding.json] [--specs 1024] [--shards 1,2,4,8] \
//!     [--queries 400] [--seed 17] [--min-speedup 0.7]
//! ```
//!
//! One corpus (many small specs, large Zipf keyword vocabulary), one
//! distinct-query log (mixed arity, co-occurring and cross term pairs,
//! corpus-Zipf popularity), one rotating group stream. The single
//! [`QueryEngine`] serves the stream as the baseline; then an
//! [`EngineCluster`] per shard count serves the *same* stream:
//!
//! * `cold` — first pass, every request a result-cache miss: the uncached
//!   serving path. The index-gated scatter touches only shards whose
//!   indexes can satisfy every query term, and surviving shard tasks run
//!   in parallel on the worker pool on multi-core hosts.
//! * `warm` — second pass over the same stream. Since E13 this is served
//!   from the cluster-front result cache (one probe per request, tagged
//!   by the shard version vector); the shards' `(group, query)` caches
//!   sit behind it for front misses after answer-changing writes.
//!
//! **Post-E12 note.** When this gate was introduced, a cold request
//! resolved the principal group's access views across its engine's whole
//! corpus slice, so pruning the scatter pruned the dominant cost and a
//! single pinned core measured ≥2× at 4 shards. E12's lazy resolver gave
//! the *single engine* the same per-candidate saving, so on one core the
//! cluster now runs at rough parity cold (the pruned work no longer
//! dominates); sharding's remaining levers are pool parallelism,
//! write isolation and per-shard cache capacity. The acceptance gate is
//! therefore a **no-regression floor** (default ≥0.7× — sharding must not
//! make cold serving pathologically slower on one core), not a speedup
//! claim; raise `--min-speedup` on multi-core hosts where parallel
//! scatter pays.
//!
//! Before any number is reported, a verification pass asserts every
//! cluster answer lists exactly the single engine's global spec ids. The
//! binary exits non-zero if the 4-shard cold-path throughput ratio is
//! below the acceptance threshold.

use ppwf_bench::{e11_corpus, e11_query_log, e11_repo, standard_registry, E10_GROUPS};
use ppwf_query::cluster::EngineCluster;
use ppwf_query::engine::QueryEngine;
use std::time::Instant;

struct Config {
    out: String,
    specs: usize,
    shards: Vec<usize>,
    queries: usize,
    seed: u64,
    min_speedup: f64,
}

fn parse_args() -> Config {
    let mut config = Config {
        out: "BENCH_e11_sharding.json".to_string(),
        specs: 1024,
        shards: vec![1, 2, 4, 8],
        queries: 400,
        seed: 17,
        min_speedup: 0.7,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need =
            |n: usize| args.get(n).unwrap_or_else(|| panic!("{} needs a value", args[n - 1]));
        match args[i].as_str() {
            "--out" => config.out = need(i + 1).clone(),
            "--specs" => config.specs = need(i + 1).parse().expect("bad spec count"),
            "--shards" => {
                config.shards = need(i + 1)
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad shard count"))
                    .collect()
            }
            "--queries" => config.queries = need(i + 1).parse().expect("bad query count"),
            "--seed" => config.seed = need(i + 1).parse().expect("bad seed"),
            "--min-speedup" => config.min_speedup = need(i + 1).parse().expect("bad threshold"),
            other => panic!("unknown argument {other:?}"),
        }
        i += 2;
    }
    config
}

/// Serve the whole stream once; returns (elapsed µs, hits served).
fn serve_pass(mut serve: impl FnMut(&str, &str) -> usize, log: &[String]) -> (f64, usize) {
    let t = Instant::now();
    let mut hits = 0usize;
    for (i, q) in log.iter().enumerate() {
        hits += serve(E10_GROUPS[i % E10_GROUPS.len()], q);
    }
    (t.elapsed().as_secs_f64() * 1e6, hits)
}

fn qps(total_us: f64, requests: usize) -> f64 {
    requests as f64 / (total_us / 1e6)
}

fn main() {
    let config = parse_args();
    println!("== E11: sharded vs single-engine serving (scatter/gather over the worker pool) ==");
    println!(
        "corpus: {} specs, {} distinct queries, groups {:?}, seed {}",
        config.specs, config.queries, E10_GROUPS, config.seed
    );

    let corpus = e11_corpus(config.specs, config.seed);
    let log = e11_query_log(&corpus, config.queries, config.seed ^ 0x5EED);
    assert!(log.len() >= config.queries * 9 / 10, "query log came up short: {}", log.len());

    // Construct every measured configuration *before* any timing: engine
    // construction churns the allocator and page cache, and a process's
    // first heavy pass pays one-time costs (heap growth, cold branch
    // predictors) — interleaving construction with measurement would bias
    // whichever configuration ran first.
    let single = QueryEngine::new(e11_repo(&corpus), standard_registry());
    let clusters: Vec<EngineCluster> = config
        .shards
        .iter()
        .map(|&s| EngineCluster::new(e11_repo(&corpus), standard_registry(), s))
        .collect();
    {
        let warmup = QueryEngine::new(e11_repo(&corpus), standard_registry());
        let _ = serve_pass(|g, q| warmup.search_as(g, q).map(|h| h.len()).unwrap_or(0), &log);
    }

    // -- single-engine baseline ---------------------------------------------
    let (single_cold_us, single_cold_hits) =
        serve_pass(|g, q| single.search_as(g, q).map(|h| h.len()).unwrap_or(0), &log);
    // Reference answers (now warm) for the equivalence check.
    let reference: Vec<Vec<u32>> = log
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let hits = single.search_as(E10_GROUPS[i % E10_GROUPS.len()], q).unwrap();
            hits.iter().map(|h| h.spec.0).collect()
        })
        .collect();
    let (single_warm_us, single_warm_hits) =
        serve_pass(|g, q| single.search_as(g, q).map(|h| h.len()).unwrap_or(0), &log);
    assert_eq!(single_cold_hits, single_warm_hits, "warm pass changed answers");

    println!(
        "\n{:>7} {:>12} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "shards", "cold q/s", "cold µs/q", "warm q/s", "cold ×", "avg targets", "hits"
    );
    println!(
        "{:>7} {:>12.0} {:>12.1} {:>12.0} {:>10} {:>12} {:>10}",
        "single",
        qps(single_cold_us, log.len()),
        single_cold_us / log.len() as f64,
        qps(single_warm_us, log.len()),
        "1.0x",
        config.specs,
        single_cold_hits
    );

    // -- cluster sweep ------------------------------------------------------
    let mut sections = Vec::new();
    let mut speedup_at_4: Option<f64> = None;
    for (&shards, cluster) in config.shards.iter().zip(&clusters) {
        let (cold_us, cold_hits) =
            serve_pass(|g, q| cluster.search_as(g, q).map(|h| h.len()).unwrap_or(0), &log);
        // Equivalence: every answer lists exactly the single engine's
        // global spec ids (cluster caches are warm now; answers must not
        // depend on that).
        for (i, q) in log.iter().enumerate() {
            let hits = cluster.search_as(E10_GROUPS[i % E10_GROUPS.len()], q).unwrap();
            let ids: Vec<u32> = hits.iter().map(|h| h.spec.0).collect();
            assert_eq!(ids, reference[i], "cluster({shards}) diverged on query {q:?}");
        }
        let (warm_us, warm_hits) =
            serve_pass(|g, q| cluster.search_as(g, q).map(|h| h.len()).unwrap_or(0), &log);
        assert_eq!(cold_hits, single_cold_hits, "cluster({shards}) changed total hits");
        assert_eq!(warm_hits, cold_hits);

        let avg_targets: f64 =
            log.iter().map(|q| cluster.probe_target_count(q) as f64).sum::<f64>()
                / log.len() as f64;
        let cold_speedup = single_cold_us / cold_us;
        if shards == 4 {
            speedup_at_4 = Some(cold_speedup);
        }
        let stats = cluster.stats();
        println!(
            "{:>7} {:>12.0} {:>12.1} {:>12.0} {:>9.1}x {:>12.2} {:>10}",
            shards,
            qps(cold_us, log.len()),
            cold_us / log.len() as f64,
            qps(warm_us, log.len()),
            cold_speedup,
            avg_targets,
            cold_hits
        );

        sections.push(format!(
            r#"    {{
      "shards": {shards},
      "cold_qps": {cq:.1},
      "cold_us_per_query": {cu:.3},
      "warm_qps": {wq:.1},
      "warm_us_per_query": {wu:.3},
      "cold_speedup_vs_single": {cs:.3},
      "warm_speedup_vs_single": {ws:.3},
      "avg_target_shards_per_query": {at:.3},
      "hits_served_per_pass": {hits},
      "aggregate_keyword_hit_rate": {khr:.4}
    }}"#,
            shards = shards,
            cq = qps(cold_us, log.len()),
            cu = cold_us / log.len() as f64,
            wq = qps(warm_us, log.len()),
            wu = warm_us / log.len() as f64,
            cs = cold_speedup,
            ws = single_warm_us / warm_us,
            at = avg_targets,
            hits = cold_hits,
            khr = stats.aggregate_keyword_hit_rate(),
        ));
    }

    let json = format!(
        r#"{{
  "experiment": "E11",
  "title": "Sharded query serving: EngineCluster scatter/gather vs a single QueryEngine",
  "seed": {seed},
  "corpus_specs": {specs},
  "distinct_queries": {queries},
  "groups": [{groups}],
  "single_engine": {{
    "cold_qps": {scq:.1},
    "cold_us_per_query": {scu:.3},
    "warm_qps": {swq:.1},
    "hits_served_per_pass": {shits}
  }},
  "cluster_configs": [
{sections}
  ],
  "aggregate": {{
    "cold_speedup_at_4_shards": {s4},
    "acceptance_threshold_speedup": {thr:.1},
    "note": "post-E12 the single engine resolves access views lazily too, so one-core cold serving sits near parity and the gate is a no-regression floor; index-gated scatter pruning still bounds per-shard work and multi-core pool parallelism is where sharding wins cold"
  }}
}}
"#,
        seed = config.seed,
        specs = config.specs,
        queries = log.len(),
        groups = E10_GROUPS.iter().map(|g| format!("{g:?}")).collect::<Vec<_>>().join(", "),
        scq = qps(single_cold_us, log.len()),
        scu = single_cold_us / log.len() as f64,
        swq = qps(single_warm_us, log.len()),
        shits = single_cold_hits,
        sections = sections.join(",\n"),
        s4 = speedup_at_4.map(|s| format!("{s:.3}")).unwrap_or_else(|| "null".to_string()),
        thr = config.min_speedup,
    );
    std::fs::write(&config.out, &json).expect("write baseline JSON");
    println!("\nbaseline written to {}", config.out);

    if let Some(s4) = speedup_at_4 {
        println!("cold-path speedup at 4 shards: {s4:.2}x (threshold {:.1}x)", config.min_speedup);
        assert!(
            s4 >= config.min_speedup,
            "E11 acceptance: 4-shard cold serving must stay ≥{:.1}x the single engine (got {s4:.2}x)",
            config.min_speedup
        );
    }
}
