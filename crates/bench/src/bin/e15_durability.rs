//! E15 baseline emitter: the durability subsystem — WAL append
//! throughput, crash-recovery time vs log length, the trusted-epoch
//! index refresh, and the durable engine's read no-regression.
//!
//! ```bash
//! cargo run --release -p ppwf-bench --bin e15_durability -- \
//!     [--out BENCH_e15_durability.json] [--specs 1024] [--writes 256] \
//!     [--reads 200] [--seed 17] [--refresh-writes 64] \
//!     [--min-trusted-speedup 5.0] [--max-read-regression 1.2]
//! ```
//!
//! Four measured sections:
//!
//! * **Append throughput.** The same typed write stream is appended to a
//!   [`DurableLog`] over three backends: in-memory (the fault-injection
//!   backend with no faults — the framing/checksum cost floor), real
//!   files without per-record fsync, and real files with
//!   durable-on-acknowledge fsync. The spread *is* the durability bill;
//!   nothing here is gated, it is reported honestly.
//! * **Recovery time vs log length.** Logs of growing record counts are
//!   recovered with snapshots disabled (replay grows linearly) and with
//!   the snapshot cadence on (replay is capped by the cadence, at the
//!   price of loading the snapshot image — which can dominate when the
//!   image outweighs the replayed suffix). Every recovery is asserted
//!   byte-identical to a sequential reference replay before its time is
//!   reported.
//! * **Trusted-epoch refresh.** At `--specs` corpus size, per-write index
//!   maintenance under the dominant write (execution appends) is measured
//!   for the verifying `refresh` — which re-checks per-spec text
//!   fingerprints across the corpus, O(corpus) per write — against
//!   `refresh_trusted`, which trusts the typed-mutation epoch and does
//!   structure work only, O(new specs). Gate: ≥ `--min-trusted-speedup`,
//!   with the two indexes asserted bit-identical first. This closes the
//!   "O(1) structure-free refresh" item the E13 boundary documented.
//! * **Read no-regression.** An engine grown through the durable write
//!   path (WAL attached, fsync on) serves the read log against a fresh
//!   engine over the identical corpus: cold and warm ratios gated at
//!   `--max-read-regression` — durability must cost the read path
//!   nothing, because reads never touch the log.
//!
//! **Honest boundaries.** Per-record fsync dominates real-file appends
//! (that is the point of durable-on-acknowledge — the number is reported,
//! not hidden); a snapshot serializes the whole repository while the
//! write path waits, so the snapshot cadence trades recovery replay
//! length against a periodic write-path pause; and `refresh_trusted` is
//! sound only because every durable write is a typed [`Mutation`] — the
//! bench asserts bit-identity against the verifying path rather than
//! assuming it. The binary exits non-zero when any acceptance gate fails.

use ppwf_bench::{
    e11_corpus, e11_query_log, e11_repo, e13_write_stream, standard_registry, E10_GROUPS,
};
use ppwf_query::engine::QueryEngine;
use ppwf_repo::keyword_index::KeywordIndex;
use ppwf_repo::mutation::Mutation;
use ppwf_repo::repository::Repository;
use ppwf_repo::storage::{FsStorage, MemStorage, StorageBackend};
use ppwf_repo::wal::{DurabilityPolicy, DurableLog};
use std::sync::Arc;
use std::time::Instant;

struct Config {
    out: String,
    specs: usize,
    writes: usize,
    reads: usize,
    seed: u64,
    refresh_writes: usize,
    min_trusted_speedup: f64,
    max_read_regression: f64,
}

fn parse_args() -> Config {
    let mut config = Config {
        out: "BENCH_e15_durability.json".to_string(),
        specs: 1024,
        writes: 256,
        reads: 200,
        seed: 17,
        refresh_writes: 64,
        min_trusted_speedup: 5.0,
        max_read_regression: 1.2,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need =
            |n: usize| args.get(n).unwrap_or_else(|| panic!("{} needs a value", args[n - 1]));
        match args[i].as_str() {
            "--out" => config.out = need(i + 1).clone(),
            "--specs" => config.specs = need(i + 1).parse().expect("bad spec count"),
            "--writes" => config.writes = need(i + 1).parse().expect("bad write count"),
            "--reads" => config.reads = need(i + 1).parse().expect("bad read count"),
            "--seed" => config.seed = need(i + 1).parse().expect("bad seed"),
            "--refresh-writes" => {
                config.refresh_writes = need(i + 1).parse().expect("bad refresh write count")
            }
            "--min-trusted-speedup" => {
                config.min_trusted_speedup = need(i + 1).parse().expect("bad threshold")
            }
            "--max-read-regression" => {
                config.max_read_regression = need(i + 1).parse().expect("bad ratio")
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 2;
    }
    config
}

/// A deterministic mutation stream valid from an empty repository: a
/// 1:2:1 cycle of spec inserts, execution appends (the dominant write),
/// and policy swaps, each built against the evolving state.
fn standalone_stream(writes: usize, seed: u64) -> Vec<Mutation> {
    use ppwf_core::policy::Policy;
    use ppwf_model::exec::{Executor, HashOracle};
    use ppwf_repo::repository::SpecId;
    use ppwf_workloads::genspec::{generate_spec, SpecParams};
    let mut repo = Repository::new();
    let mut out = Vec::with_capacity(writes);
    for i in 0..writes as u64 {
        let kind = if repo.is_empty() || i % 4 == 0 {
            0
        } else if i % 4 == 3 {
            2
        } else {
            1
        };
        let mutation = match kind {
            0 => Mutation::InsertSpec {
                spec: generate_spec(&SpecParams { seed: seed ^ (i << 8), ..SpecParams::default() }),
                policy: Policy::public(),
            },
            1 => {
                let target = SpecId(((seed ^ i) % repo.len() as u64) as u32);
                let exec = Executor::new(&repo.entry(target).unwrap().spec)
                    .run(&mut HashOracle)
                    .expect("stored specs execute");
                Mutation::AddExecution { spec: target, exec }
            }
            _ => Mutation::SetPolicy {
                spec: SpecId(((seed ^ i) % repo.len() as u64) as u32),
                policy: Policy::public(),
            },
        };
        repo.apply(mutation.clone()).expect("generated mutation applies");
        out.push(mutation);
    }
    out
}

/// Append the whole stream through a fresh log over `backend`; returns
/// (append+fsync µs total, bytes appended). Snapshots are disabled so
/// the number is the pure append/sync path.
fn append_pass(
    backend: Arc<dyn StorageBackend>,
    stream: &[Mutation],
    fsync_each: bool,
) -> (f64, u64) {
    let policy = DurabilityPolicy {
        fsync_each,
        snapshot_every: 0,
        segment_bytes: 1 << 20,
        ..DurabilityPolicy::default()
    };
    let opened = DurableLog::open(backend, policy).expect("open fresh log");
    let mut log = opened.log;
    let mut repo = opened.repository;
    let mut us = 0.0f64;
    for mutation in stream {
        repo.check(mutation).expect("write stream valid");
        let t = Instant::now();
        log.append(mutation).expect("append on healthy backend");
        us += t.elapsed().as_secs_f64() * 1e6;
        repo.apply(mutation.clone()).expect("checked mutation applies");
    }
    (us, log.stats().bytes_appended)
}

/// Build a durable log holding `base` as a baseline snapshot plus the
/// first `n` stream records, then time `Repository::recover` (best of
/// `reps`), asserting byte-identity to the live repository every rep.
fn recovery_time_us(
    base: &Repository,
    stream: &[Mutation],
    n: usize,
    snapshot_every: u64,
    reps: usize,
) -> f64 {
    let storage = Arc::new(MemStorage::new());
    let policy = DurabilityPolicy {
        fsync_each: false,
        snapshot_every,
        segment_bytes: 1 << 18,
        ..DurabilityPolicy::default()
    };
    let opened =
        DurableLog::open(Arc::clone(&storage) as Arc<dyn StorageBackend>, policy).expect("open");
    let mut log = opened.log;
    let mut repo = Repository::load(&base.save()).expect("repository round-trips");
    log.snapshot_now(&repo).expect("baseline snapshot");
    // The stream's spec ids are positions in its own (empty-start) repo;
    // shift them past the baseline corpus.
    let shift = base.len() as u32;
    for mutation in &stream[..n] {
        let mutation = match mutation.clone() {
            Mutation::InsertSpec { spec, policy } => Mutation::InsertSpec { spec, policy },
            Mutation::AddExecution { spec, exec } => {
                Mutation::AddExecution { spec: ppwf_repo::repository::SpecId(spec.0 + shift), exec }
            }
            Mutation::SetPolicy { spec, policy } => {
                Mutation::SetPolicy { spec: ppwf_repo::repository::SpecId(spec.0 + shift), policy }
            }
            Mutation::DeleteSpec { spec } => {
                Mutation::DeleteSpec { spec: ppwf_repo::repository::SpecId(spec.0 + shift) }
            }
            Mutation::EditSpec { spec, text } => {
                Mutation::EditSpec { spec: ppwf_repo::repository::SpecId(spec.0 + shift), text }
            }
        };
        repo.check(&mutation).expect("write stream valid");
        log.append(&mutation).expect("append on healthy backend");
        repo.apply(mutation).expect("checked mutation applies");
        log.snapshot_if_due(&repo);
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let (recovered, stats) = Repository::recover(storage.as_ref()).expect("recovery");
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(stats.last_seq, n as u64, "recovery missed records");
        assert_eq!(
            recovered.save(),
            repo.save(),
            "recovered image diverges from the live repository at {n} records"
        );
    }
    best
}

/// Serve the whole read log once; returns (elapsed µs, hits served).
fn serve_pass(mut serve: impl FnMut(&str, &str) -> usize, log: &[String]) -> (f64, usize) {
    let t = Instant::now();
    let mut hits = 0usize;
    for (i, q) in log.iter().enumerate() {
        hits += serve(E10_GROUPS[i % E10_GROUPS.len()], q);
    }
    (t.elapsed().as_secs_f64() * 1e6, hits)
}

fn main() {
    let config = parse_args();
    println!("== E15: durable mutation WAL, snapshots, crash recovery ==");
    println!(
        "corpus: {} specs · {} writes · {} reads · {} refresh writes · seed {}",
        config.specs, config.writes, config.reads, config.refresh_writes, config.seed
    );

    let corpus = e11_corpus(config.specs, config.seed);
    let read_log = e11_query_log(&corpus, config.reads, config.seed ^ 0x5EED);
    let stream = e13_write_stream(&corpus, config.writes, 60, 20, config.seed ^ 0xE15);
    // The append/recovery sections replay standalone (no base corpus), so
    // they need a stream valid from an empty repository: a 1:2:1 cycle of
    // inserts, execution appends, and policy swaps built against the
    // evolving state.
    let standalone = standalone_stream(config.writes, config.seed ^ 0xB);

    // -- section A: append throughput ---------------------------------------
    let fs_root = std::env::temp_dir().join(format!("ppwf-e15-{}", std::process::id()));
    let (mem_us, bytes) = append_pass(Arc::new(MemStorage::new()), &standalone, true);
    let fs_nosync = FsStorage::open(fs_root.join("nosync")).expect("temp storage root");
    let (fs_nosync_us, _) = append_pass(Arc::new(fs_nosync), &standalone, false);
    let fs_sync = FsStorage::open(fs_root.join("sync")).expect("temp storage root");
    let (fs_sync_us, _) = append_pass(Arc::new(fs_sync), &standalone, true);
    let _ = std::fs::remove_dir_all(&fs_root);

    let appends = standalone.len() as f64;
    let mb = bytes as f64 / (1024.0 * 1024.0);
    println!("\n-- append throughput ({} records, {:.2} MiB framed) --", standalone.len(), mb);
    println!("{:>28} {:>14} {:>12}", "backend", "µs/append", "MiB/s");
    for (label, us) in [
        ("memory (cost floor)", mem_us),
        ("fs, no fsync", fs_nosync_us),
        ("fs, fsync each (durable)", fs_sync_us),
    ] {
        println!("{:>28} {:>14.2} {:>12.1}", label, us / appends, mb / (us / 1e6));
    }
    let fsync_multiplier = fs_sync_us / fs_nosync_us;
    println!("per-record fsync costs {fsync_multiplier:.1}x the unsynced fs append — the durability bill");

    // -- section B: recovery time vs log length -----------------------------
    let recovery_base = e11_repo(&e11_corpus(128, config.seed ^ 0xBA5E));
    let ladder: Vec<usize> =
        [4usize, 2, 1].iter().map(|d| standalone.len() / d).filter(|&n| n > 0).collect();
    const RECOVERY_REPS: usize = 3;
    let mut recovery_rows = Vec::new();
    println!("\n-- recovery time vs log length (base snapshot + N records) --");
    println!("{:>10} {:>22} {:>22}", "records", "no snapshots µs", "cadence-64 µs");
    for &n in &ladder {
        let replay_us = recovery_time_us(&recovery_base, &standalone, n, 0, RECOVERY_REPS);
        let snap_us = recovery_time_us(&recovery_base, &standalone, n, 64, RECOVERY_REPS);
        println!("{n:>10} {replay_us:>22.1} {snap_us:>22.1}");
        recovery_rows.push((n, replay_us, snap_us));
    }

    // -- section C: trusted-epoch refresh -----------------------------------
    // The dominant write (execution appends) at full corpus size: the
    // verifying refresh re-fingerprints the corpus per write, the trusted
    // refresh does structure work only.
    let exec_stream = e13_write_stream(&corpus, config.refresh_writes, 100, 0, config.seed ^ 0xC);
    let mut repo_verify = e11_repo(&corpus);
    let mut idx_verify = KeywordIndex::build(&repo_verify);
    let mut verify_us = 0.0f64;
    for mutation in exec_stream.iter().cloned() {
        repo_verify.apply(mutation).expect("write stream valid");
        let t = Instant::now();
        idx_verify.refresh(&repo_verify);
        verify_us += t.elapsed().as_secs_f64() * 1e6;
    }
    let mut repo_trusted = e11_repo(&corpus);
    let mut idx_trusted = KeywordIndex::build(&repo_trusted);
    let mut trusted_us = 0.0f64;
    for mutation in exec_stream.iter().cloned() {
        repo_trusted.apply(mutation).expect("write stream valid");
        let t = Instant::now();
        idx_trusted.refresh_trusted(&repo_trusted);
        trusted_us += t.elapsed().as_secs_f64() * 1e6;
    }
    assert_eq!(
        idx_trusted.trusted_refreshes(),
        exec_stream.len(),
        "every structure-free write must take the trusted path"
    );
    assert_eq!(idx_trusted.full_builds(), 1, "trusted refresh must never rebuild");
    // Bit-identity before any number is believed.
    assert_eq!(idx_trusted.doc_count(), idx_verify.doc_count());
    assert_eq!(idx_trusted.term_count(), idx_verify.term_count());
    for q in &read_log {
        for term in q.split(',').map(str::trim) {
            assert_eq!(
                idx_trusted.lookup_query_term(term),
                idx_verify.lookup_query_term(term),
                "trusted vs verifying postings diverged on {term:?}"
            );
            assert_eq!(
                idx_trusted.idf_cached(term).to_bits(),
                idx_verify.idf_cached(term).to_bits(),
                "trusted vs verifying idf bits diverged on {term:?}"
            );
        }
    }
    let trusted_speedup = verify_us / trusted_us;
    let per_refresh = |us: f64| us / exec_stream.len().max(1) as f64;
    println!(
        "\n-- index refresh under execution appends ({} writes, {} specs) --",
        exec_stream.len(),
        config.specs
    );
    println!("{:>26} {:>14} {:>12}", "path", "µs/write", "speedup");
    println!("{:>26} {:>14.2} {:>12}", "verifying refresh", per_refresh(verify_us), "1.0x");
    println!(
        "{:>26} {:>14.2} {:>11.1}x",
        "trusted-epoch refresh",
        per_refresh(trusted_us),
        trusted_speedup
    );

    // -- section D: read no-regression under durability ---------------------
    // A cold pass is one-shot per engine and totals a few ms, where one
    // scheduler interrupt swamps the signal — measure COLD_REPS
    // independent engine pairs (order alternated to cancel
    // measurement-order bias) and compare per-side minima.
    const COLD_REPS: usize = 3;
    let wal_policy = DurabilityPolicy {
        fsync_each: true,
        snapshot_every: 64,
        segment_bytes: 1 << 18,
        ..DurabilityPolicy::default()
    };
    let mut durable_write_us = 0.0f64;
    let mut wal_appends = 0u64;
    let (mut fresh_cold_us, mut durable_cold_us) = (f64::INFINITY, f64::INFINITY);
    let mut pair: Option<(QueryEngine, QueryEngine)> = None;
    {
        // Warm the allocator/page cache outside timing.
        let warmup = QueryEngine::new(e11_repo(&corpus), standard_registry());
        let _ = serve_pass(|g, q| warmup.search_as(g, q).map(|h| h.len()).unwrap_or(0), &read_log);
    }
    for rep in 0..COLD_REPS {
        let mut engine_durable = QueryEngine::new(e11_repo(&corpus), standard_registry());
        let opened =
            DurableLog::open(Arc::new(MemStorage::new()) as Arc<dyn StorageBackend>, wal_policy)
                .expect("open durable log");
        engine_durable.attach_durability(opened.log).expect("attach durability");
        let t = Instant::now();
        for mutation in stream.iter().cloned() {
            engine_durable.mutate(mutation).expect("write stream valid");
        }
        durable_write_us = t.elapsed().as_secs_f64() * 1e6;
        wal_appends =
            engine_durable.durability_stats().expect("durable engine reports stats").appends;

        let mut repo_replay = e11_repo(&corpus);
        for mutation in stream.iter().cloned() {
            repo_replay.apply(mutation).expect("write stream valid");
        }
        let engine_fresh = QueryEngine::new(repo_replay, standard_registry());

        let serve_fresh =
            |g: &str, q: &str| engine_fresh.search_as(g, q).map(|h| h.len()).unwrap_or(0);
        let serve_durable =
            |g: &str, q: &str| engine_durable.search_as(g, q).map(|h| h.len()).unwrap_or(0);
        let ((fresh_us, fh), (durable_us, dh)) = if rep % 2 == 0 {
            let f = serve_pass(serve_fresh, &read_log);
            let d = serve_pass(serve_durable, &read_log);
            (f, d)
        } else {
            let d = serve_pass(serve_durable, &read_log);
            let f = serve_pass(serve_fresh, &read_log);
            (f, d)
        };
        assert_eq!(dh, fh, "the durable engine serves different answers");
        fresh_cold_us = fresh_cold_us.min(fresh_us);
        durable_cold_us = durable_cold_us.min(durable_us);
        pair = Some((engine_durable, engine_fresh));
    }
    let (engine_durable, engine_fresh) = pair.expect("at least one rep");
    assert_eq!(wal_appends, stream.len() as u64, "every mutate must append");

    // Warm passes finish in tens of µs; interleave the two engines'
    // passes (alternating order) and compare per-side minima so neither
    // side pays for running second.
    const WARM_REPS: usize = 15;
    let (mut fresh_warm_us, mut durable_warm_us) = (f64::INFINITY, f64::INFINITY);
    for rep in 0..WARM_REPS {
        let serve_fresh =
            |g: &str, q: &str| engine_fresh.search_as(g, q).map(|h| h.len()).unwrap_or(0);
        let serve_durable =
            |g: &str, q: &str| engine_durable.search_as(g, q).map(|h| h.len()).unwrap_or(0);
        let (f_us, d_us) = if rep % 2 == 0 {
            let (f, _) = serve_pass(serve_fresh, &read_log);
            let (d, _) = serve_pass(serve_durable, &read_log);
            (f, d)
        } else {
            let (d, _) = serve_pass(serve_durable, &read_log);
            let (f, _) = serve_pass(serve_fresh, &read_log);
            (f, d)
        };
        fresh_warm_us = fresh_warm_us.min(f_us);
        durable_warm_us = durable_warm_us.min(d_us);
    }
    let cold_ratio = durable_cold_us / fresh_cold_us;
    let warm_ratio = durable_warm_us / fresh_warm_us;
    let per_q = |us: f64| us / read_log.len() as f64;
    println!("\n-- read path: durable engine vs fresh build ({} reads) --", read_log.len());
    println!("{:>22} {:>12} {:>12}", "engine", "cold µs/q", "warm µs/q");
    println!("{:>22} {:>12.1} {:>12.3}", "fresh build", per_q(fresh_cold_us), per_q(fresh_warm_us));
    println!(
        "{:>22} {:>12.1} {:>12.3}",
        "durable (WAL attached)",
        per_q(durable_cold_us),
        per_q(durable_warm_us)
    );
    println!(
        "cold ratio {cold_ratio:.3}, warm ratio {warm_ratio:.3} (gate ≤{:.1}); durable write path {:.1} µs/write incl. fsync+snapshots",
        config.max_read_regression,
        durable_write_us / stream.len() as f64
    );

    let recovery_json = recovery_rows
        .iter()
        .map(|(n, replay, snap)| {
            format!(
                "{{ \"records\": {n}, \"replay_only_us\": {replay:.1}, \"with_snapshot_cadence_us\": {snap:.1} }}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let json = format!(
        r#"{{
  "experiment": "E15",
  "title": "Durable mutation WAL + snapshots: crash recovery, trusted-epoch refresh, read no-regression",
  "seed": {seed},
  "corpus_specs": {specs},
  "writes": {writes},
  "reads": {reads},
  "append_throughput": {{
    "records": {records},
    "framed_mib": {mib:.3},
    "memory_us_per_append": {mem:.3},
    "fs_nosync_us_per_append": {fsn:.3},
    "fs_fsync_us_per_append": {fss:.3},
    "fsync_multiplier_vs_nosync_fs": {fsm:.2}
  }},
  "recovery": [
    {recovery}
  ],
  "trusted_refresh": {{
    "exec_append_writes": {rw},
    "verifying_us_per_write": {vu:.3},
    "trusted_us_per_write": {tu:.3},
    "speedup_trusted_vs_verifying": {ts:.3},
    "trusted_refreshes": {tr},
    "full_builds": 1,
    "bit_identical_to_verifying": true
  }},
  "read_path": {{
    "fresh_cold_us_per_query": {fc:.3},
    "durable_cold_us_per_query": {dc:.3},
    "cold_ratio_durable_vs_fresh": {cr:.3},
    "fresh_warm_us_per_query": {fw:.4},
    "durable_warm_us_per_query": {dw:.4},
    "warm_ratio_durable_vs_fresh": {wr:.3},
    "durable_write_us_per_write": {dwu:.3}
  }},
  "acceptance": {{
    "min_trusted_speedup": {mts:.1},
    "max_read_regression": {mrr:.2},
    "recovery_bit_identical_at_every_ladder_point": true,
    "every_mutate_appended_before_apply": true
  }},
  "note": "per-record fsync dominates real-file appends (durable-on-acknowledge is priced, not hidden); a snapshot serializes the whole repository while the write path waits, trading recovery replay length against a periodic pause; refresh_trusted is sound only under typed mutations and is asserted bit-identical to the verifying path here"
}}
"#,
        seed = config.seed,
        specs = config.specs,
        writes = stream.len(),
        reads = read_log.len(),
        records = standalone.len(),
        mib = mb,
        mem = mem_us / appends,
        fsn = fs_nosync_us / appends,
        fss = fs_sync_us / appends,
        fsm = fsync_multiplier,
        recovery = recovery_json,
        rw = exec_stream.len(),
        vu = per_refresh(verify_us),
        tu = per_refresh(trusted_us),
        ts = trusted_speedup,
        tr = idx_trusted.trusted_refreshes(),
        fc = per_q(fresh_cold_us),
        dc = per_q(durable_cold_us),
        cr = cold_ratio,
        fw = per_q(fresh_warm_us),
        dw = per_q(durable_warm_us),
        wr = warm_ratio,
        dwu = durable_write_us / stream.len() as f64,
        mts = config.min_trusted_speedup,
        mrr = config.max_read_regression,
    );
    std::fs::write(&config.out, &json).expect("write baseline JSON");
    println!("\nbaseline written to {}", config.out);

    println!(
        "trusted refresh speedup: {trusted_speedup:.2}x (threshold {:.1}x)",
        config.min_trusted_speedup
    );
    assert!(
        trusted_speedup >= config.min_trusted_speedup,
        "E15 acceptance: trusted-epoch refresh must be ≥{:.1}x the verifying refresh at {} specs (got {trusted_speedup:.2}x)",
        config.min_trusted_speedup,
        config.specs
    );
    assert!(
        cold_ratio <= config.max_read_regression && warm_ratio <= config.max_read_regression,
        "E15 acceptance: the durable engine regressed reads (cold {cold_ratio:.2}x, warm {warm_ratio:.2}x, gate {:.2}x)",
        config.max_read_regression
    );
}
