//! E16 baseline emitter: cold-path query kernels — block-compressed
//! postings with galloping/bitmap intersection and restricted gather —
//! versus a faithful replica of the PR-6 flat-`Vec` dataflow.
//!
//! ```bash
//! cargo run --release -p ppwf-bench --bin e16_cold_kernels -- \
//!     [--out BENCH_e16_cold_kernels.json] [--specs 2048] [--queries 400] \
//!     [--writes 96] [--seed 17] [--min-cold-speedup 3.0] \
//!     [--max-warm-ratio 1.1] [--max-write-ratio 1.2] [--pool-widths 1,2,4]
//! ```
//!
//! One E11-shaped corpus, one distinct multi-term-only query log (every
//! query is an AND of two terms — the selective shape whose answer is the
//! *intersection* of the terms' candidate specs). Five sections:
//!
//! * **Cold selective search.** The in-repo [`BaselineIndex`] replicates
//!   the PR-6 index byte for byte — `HashMap<String, Vec<Posting>>`
//!   lists, clone-on-lookup, per-posting `HashMap<SpecId, _>` assembly —
//!   and `baseline_search` replays the PR-6 `search_with_index` dataflow
//!   against it, reusing the *same* public [`filter_postings`] and
//!   [`ViewCache`] so privilege filtering and view materialization cost
//!   identically on both sides. Before any number is reported every
//!   `(group, query)` answer is checked equal — spec, prefix and matched
//!   modules — between the replica and the kernel path. Gate:
//!   kernel ≥ `--min-cold-speedup` × baseline.
//! * **Warm no-regression.** The warm path is a `(group, query)` result
//!   probe that E16 does not touch; both sides' answers are loaded into
//!   structurally identical probe maps and served best-of-9. Gate:
//!   kernel-side probe ≤ `--max-warm-ratio` × baseline-side probe. A
//!   real [`QueryEngine`] warm pass is measured too, with its cache
//!   counters asserted hit-only (the warm path never re-enters the
//!   kernel pipeline).
//! * **Write no-regression.** A typed write stream drives per-write
//!   `refresh` on the block-compressed index versus the PR-6 refresh
//!   replica (same fingerprint verification scan, `Vec` append tail).
//!   Gate: kernel refresh ≤ `--max-write-ratio` × baseline refresh; the
//!   maintained index must answer the log identically to a fresh build.
//! * **Seal boundary (honest cost).** Lists compress on *first* lookup;
//!   a freshly built index pays that once per touched term. Reported as
//!   first-pass vs sealed-pass lookup time — not gated, but committed.
//! * **Pool-width sweep.** Cold scatter over a 4-shard cluster at worker
//!   pool widths `--pool-widths`. On a single-core host this measures
//!   dispatch overhead, not parallelism — reported, not gated.
//!
//! The binary exits non-zero when any acceptance gate fails.

use ppwf_bench::{e11_corpus, e11_repo, e13_write_stream, e16_query_log, standard_registry};
use ppwf_model::expand::SpecView;
use ppwf_model::hierarchy::Prefix;
use ppwf_model::ids::{ModuleId, WorkflowId};
use ppwf_query::cluster::EngineCluster;
use ppwf_query::engine::QueryEngine;
use ppwf_query::keyword::{search_filtered_with_cache, KeywordHit, KeywordQuery};
use ppwf_query::ShardStrategy;
use ppwf_repo::keyword_index::{filter_postings, tokenize, KeywordIndex, Posting};
use ppwf_repo::repository::{Repository, SpecEntry, SpecId};
use ppwf_repo::view_cache::ViewCache;
use ppwf_repo::WorkerPool;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

struct Config {
    out: String,
    specs: usize,
    queries: usize,
    writes: usize,
    seed: u64,
    min_cold_speedup: f64,
    max_warm_ratio: f64,
    max_write_ratio: f64,
    pool_widths: Vec<usize>,
}

fn parse_args() -> Config {
    let mut config = Config {
        out: "BENCH_e16_cold_kernels.json".to_string(),
        specs: 2048,
        queries: 400,
        writes: 96,
        seed: 17,
        min_cold_speedup: 3.0,
        max_warm_ratio: 1.1,
        max_write_ratio: 1.2,
        pool_widths: vec![1, 2, 4],
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need =
            |n: usize| args.get(n).unwrap_or_else(|| panic!("{} needs a value", args[n - 1]));
        match args[i].as_str() {
            "--out" => config.out = need(i + 1).clone(),
            "--specs" => config.specs = need(i + 1).parse().expect("bad spec count"),
            "--queries" => config.queries = need(i + 1).parse().expect("bad query count"),
            "--writes" => config.writes = need(i + 1).parse().expect("bad write count"),
            "--seed" => config.seed = need(i + 1).parse().expect("bad seed"),
            "--min-cold-speedup" => {
                config.min_cold_speedup = need(i + 1).parse().expect("bad threshold")
            }
            "--max-warm-ratio" => config.max_warm_ratio = need(i + 1).parse().expect("bad ratio"),
            "--max-write-ratio" => config.max_write_ratio = need(i + 1).parse().expect("bad ratio"),
            "--pool-widths" => {
                config.pool_widths = need(i + 1)
                    .split(',')
                    .map(|w| w.trim().parse().expect("bad pool width"))
                    .collect()
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 2;
    }
    assert!(!config.pool_widths.is_empty(), "need at least one pool width");
    config
}

// ---------------------------------------------------------------------------
// The PR-6 replica: flat-Vec postings, clone-on-lookup, HashMap assembly.
// Kept deliberately faithful to the pre-E16 `KeywordIndex` — including the
// FNV-1a text fingerprints its refresh scan verified — so the measured
// delta is the kernel work E16 changed, nothing else.
// ---------------------------------------------------------------------------

/// FNV-1a, as the pre-E16 fingerprint hashed indexed text.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
    fn mix_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
        // Length separator, so concatenated fields cannot alias.
        self.mix_u64_raw(bytes.len() as u64);
    }
    fn mix_u64(&mut self, v: u64) {
        self.mix_u64_raw(v);
    }
    fn mix_u64_raw(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[derive(PartialEq, Eq, Clone, Copy)]
struct BaseFingerprint {
    modules: usize,
    text: u64,
}

impl BaseFingerprint {
    fn of(entry: &SpecEntry) -> Self {
        let mut h = Fnv1a::new();
        let mut modules = 0usize;
        for module in entry.spec.modules() {
            if module.kind.is_distinguished() {
                continue;
            }
            modules += 1;
            h.mix_u64(module.id.0 as u64);
            h.mix_u64(module.workflow.index() as u64);
            h.mix_bytes(module.name.as_bytes());
            for tag in &module.keywords {
                h.mix_bytes(tag.as_bytes());
            }
        }
        BaseFingerprint { modules, text: h.finish() }
    }
}

/// The PR-6 index shape: one sorted `Vec<Posting>` per term / phrase tag.
#[derive(Default)]
struct BaselineIndex {
    terms: HashMap<String, Vec<Posting>>,
    phrases: HashMap<String, Vec<Posting>>,
    module_tokens: HashMap<(SpecId, ModuleId), Vec<String>>,
    fingerprints: Vec<BaseFingerprint>,
    doc_count: usize,
}

fn base_index_entry(
    sid: SpecId,
    entry: &SpecEntry,
    terms: &mut HashMap<String, Vec<Posting>>,
    phrases: &mut HashMap<String, Vec<Posting>>,
    module_tokens: &mut HashMap<(SpecId, ModuleId), Vec<String>>,
) -> usize {
    let mut docs = 0usize;
    for module in entry.spec.modules() {
        if module.kind.is_distinguished() {
            continue;
        }
        docs += 1;
        let name_tokens = tokenize(&module.name);
        let mut tf: HashMap<String, u32> = HashMap::new();
        for t in &name_tokens {
            *tf.entry(t.clone()).or_insert(0) += 1;
        }
        for tag in &module.keywords {
            let tag_tokens = tokenize(tag);
            let norm = tag_tokens.join(" ");
            for t in tag_tokens {
                *tf.entry(t).or_insert(0) += 1;
            }
            if !norm.is_empty() {
                phrases.entry(norm).or_default().push(Posting {
                    spec: sid,
                    module: module.id,
                    workflow: module.workflow,
                    tf: 1,
                });
            }
        }
        for (term, count) in tf {
            terms.entry(term).or_default().push(Posting {
                spec: sid,
                module: module.id,
                workflow: module.workflow,
                tf: count,
            });
        }
        module_tokens.insert((sid, module.id), name_tokens);
    }
    docs
}

impl BaselineIndex {
    fn build(repo: &Repository) -> Self {
        let mut idx = BaselineIndex::default();
        for (sid, entry) in repo.entries() {
            idx.doc_count += base_index_entry(
                sid,
                entry,
                &mut idx.terms,
                &mut idx.phrases,
                &mut idx.module_tokens,
            );
            idx.fingerprints.push(BaseFingerprint::of(entry));
        }
        for list in idx.terms.values_mut() {
            list.sort_by_key(|p| (p.spec, p.workflow, p.module));
        }
        for list in idx.phrases.values_mut() {
            list.sort_by_key(|p| (p.spec, p.workflow, p.module));
        }
        idx
    }

    /// The PR-6 refresh: verify the fingerprinted prefix, then append the
    /// new specs' postings onto each term's `Vec`.
    fn refresh(&mut self, repo: &Repository) {
        let changed = repo.len() < self.fingerprints.len()
            || repo
                .entries()
                .take(self.fingerprints.len())
                .zip(&self.fingerprints)
                .any(|((_, e), fp)| BaseFingerprint::of(e) != *fp);
        if changed {
            *self = BaselineIndex::build(repo);
            return;
        }
        let mut new_terms: HashMap<String, Vec<Posting>> = HashMap::new();
        let mut new_phrases: HashMap<String, Vec<Posting>> = HashMap::new();
        for (sid, entry) in repo.entries().skip(self.fingerprints.len()) {
            self.doc_count += base_index_entry(
                sid,
                entry,
                &mut new_terms,
                &mut new_phrases,
                &mut self.module_tokens,
            );
            self.fingerprints.push(BaseFingerprint::of(entry));
        }
        for (term, mut postings) in new_terms {
            postings.sort_by_key(|p| (p.spec, p.workflow, p.module));
            self.terms.entry(term).or_default().extend(postings);
        }
        for (phrase, mut postings) in new_phrases {
            postings.sort_by_key(|p| (p.spec, p.workflow, p.module));
            self.phrases.entry(phrase).or_default().extend(postings);
        }
    }

    fn lookup(&self, token: &str) -> &[Posting] {
        self.terms.get(token).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The PR-6 query-term lookup: clone the whole list per call, phrase
    /// tags unioned with adjacency-verified name-token runs.
    fn lookup_query_term(&self, term: &str) -> Vec<Posting> {
        let tokens = tokenize(term);
        match tokens.len() {
            0 => Vec::new(),
            1 => self.lookup(&tokens[0]).to_vec(),
            _ => {
                let mut out: Vec<Posting> =
                    self.phrases.get(&tokens.join(" ")).cloned().unwrap_or_default();
                for p in self.lookup(&tokens[0]) {
                    if out.iter().any(|q| q.spec == p.spec && q.module == p.module) {
                        continue;
                    }
                    if let Some(seq) = self.module_tokens.get(&(p.spec, p.module)) {
                        if seq.windows(tokens.len()).any(|w| w == tokens.as_slice()) {
                            out.push(*p);
                        }
                    }
                }
                out.sort_by_key(|p| (p.spec, p.workflow, p.module));
                out
            }
        }
    }
}

/// A baseline hit — same payload as [`KeywordHit`], locally owned.
struct BaseHit {
    spec: SpecId,
    prefix: Prefix,
    #[allow(dead_code)]
    view: Arc<SpecView>,
    matched: Vec<(String, ModuleId)>,
}

/// Replica of the pre-E16 `required_path` (private in `ppwf_query`).
fn base_required_path(entry: &SpecEntry, m: ModuleId) -> Vec<WorkflowId> {
    let mut path = Vec::new();
    let mut cur = Some(entry.spec.module(m).workflow);
    while let Some(w) = cur {
        path.push(w);
        cur = entry.hierarchy.parent(w);
    }
    path
}

/// Replica of the pre-E16 `minimal_cover` (private in `ppwf_query`).
#[allow(clippy::type_complexity)]
fn base_minimal_cover(
    entry: &SpecEntry,
    candidates: &[(String, Vec<ModuleId>)],
) -> Option<(Prefix, Vec<(String, ModuleId)>)> {
    if candidates.iter().any(|(_, c)| c.is_empty()) {
        return None;
    }
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by_key(|&i| candidates[i].1.len());
    let mut required: Vec<WorkflowId> = vec![entry.spec.root()];
    let mut chosen: Vec<Option<(String, ModuleId)>> = vec![None; candidates.len()];
    for &i in &order {
        let (term, mods) = &candidates[i];
        let best = mods
            .iter()
            .map(|&m| {
                let path = base_required_path(entry, m);
                let added = path.iter().filter(|w| !required.contains(w)).count();
                (added, m, path)
            })
            .min_by_key(|(added, m, _)| (*added, *m))
            .expect("nonempty candidate list");
        for w in best.2 {
            if !required.contains(&w) {
                required.push(w);
            }
        }
        chosen[i] = Some((term.clone(), best.1));
    }
    let prefix =
        Prefix::from_workflows(&entry.hierarchy, required).expect("root paths are parent-closed");
    Some((prefix, chosen.into_iter().map(|c| c.expect("all terms chosen")).collect()))
}

/// The PR-6 `search_with_index` dataflow, verbatim: full per-term posting
/// materialization, per-posting `HashMap<SpecId, _>` assembly, sorted spec
/// walk, minimal cover, cached view build. Filtering goes through the same
/// public [`filter_postings`] the kernel path uses.
fn baseline_search(
    repo: &Repository,
    index: &BaselineIndex,
    query: &KeywordQuery,
    access: &HashMap<SpecId, Prefix>,
    views: &ViewCache,
) -> Vec<BaseHit> {
    if query.terms.is_empty() {
        return Vec::new();
    }
    let mut per_spec: HashMap<SpecId, Vec<Vec<ModuleId>>> = HashMap::new();
    for (ti, term) in query.terms.iter().enumerate() {
        let mut postings = index.lookup_query_term(term);
        filter_postings(&mut postings, access);
        for p in postings {
            let slot =
                per_spec.entry(p.spec).or_insert_with(|| vec![Vec::new(); query.terms.len()]);
            slot[ti].push(p.module);
        }
    }
    let mut hits = Vec::new();
    let mut spec_ids: Vec<SpecId> = per_spec.keys().copied().collect();
    spec_ids.sort();
    for sid in spec_ids {
        let cands = &per_spec[&sid];
        if cands.iter().any(|c| c.is_empty()) {
            continue;
        }
        let entry = repo.entry(sid).expect("posting references live spec");
        let named: Vec<(String, Vec<ModuleId>)> =
            query.terms.iter().cloned().zip(cands.iter().cloned()).collect();
        if let Some((prefix, matched)) = base_minimal_cover(entry, &named) {
            let view = views.view(repo, sid, &prefix).expect("minimal cover prefix is valid");
            hits.push(BaseHit { spec: sid, prefix, view, matched });
        }
    }
    hits
}

// ---------------------------------------------------------------------------

/// Serve one pass of `(group, query)` pairs; returns (elapsed µs, hits).
fn timed_pass(
    mut serve: impl FnMut(usize, &str) -> usize,
    pairs: &[(usize, String)],
) -> (f64, usize) {
    let t = Instant::now();
    let mut hits = 0usize;
    for (g, q) in pairs {
        hits += serve(*g, q);
    }
    (t.elapsed().as_secs_f64() * 1e6, hits)
}

/// Best of `reps` passes — the standard noise-floor estimate.
fn best_pass(
    reps: usize,
    mut serve: impl FnMut(usize, &str) -> usize,
    pairs: &[(usize, String)],
) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut hits = 0usize;
    for _ in 0..reps.max(1) {
        let (us, h) = timed_pass(&mut serve, pairs);
        best = best.min(us);
        hits = h;
    }
    (best, hits)
}

fn main() {
    let config = parse_args();
    println!("== E16: cold-path kernels vs the PR-6 flat-Vec dataflow ==");
    println!(
        "corpus: {} specs · {} multi-term queries · {} writes · seed {}",
        config.specs, config.queries, config.writes, config.seed
    );

    let corpus = e11_corpus(config.specs, config.seed);
    let repo = e11_repo(&corpus);
    let log = e16_query_log(&corpus, config.queries, config.seed ^ 0x5EED);
    assert!(log.len() >= config.queries * 9 / 10, "query log came up short");
    let registry = standard_registry();
    let groups = ["public", "analysts", "researchers"];
    let access_maps: Vec<HashMap<SpecId, Prefix>> = groups
        .iter()
        .map(|g| registry.access_map(&repo, g).expect("standard group exists"))
        .collect();
    let queries: Vec<KeywordQuery> = log.iter().map(|q| KeywordQuery::parse(q)).collect();
    let pairs: Vec<(usize, String)> =
        log.iter().enumerate().map(|(i, q)| (i % groups.len(), q.clone())).collect();
    let multi = queries.iter().filter(|q| q.terms.len() > 1).count();
    assert_eq!(multi, queries.len(), "E16 log must be multi-term only");

    // -- section A: cold selective search -----------------------------------
    let base_index = BaselineIndex::build(&repo);
    let kernel_index = KeywordIndex::build(&repo);
    let base_views = ViewCache::new(4096);
    let kernel_views = ViewCache::new(4096);

    // Verification before any number: identical answers per (group, query),
    // and warm both view caches so neither timed side pays view builds.
    let mut answer_hits = 0usize;
    for (g, q) in pairs.iter() {
        let query = KeywordQuery::parse(q);
        let base = baseline_search(&repo, &base_index, &query, &access_maps[*g], &base_views);
        let kernel = search_filtered_with_cache(
            &repo,
            &kernel_index,
            &query,
            &access_maps[*g],
            &kernel_views,
        );
        assert_eq!(base.len(), kernel.len(), "hit count diverged on {q:?}");
        for (b, k) in base.iter().zip(kernel.iter()) {
            assert_eq!(b.spec, k.spec, "spec diverged on {q:?}");
            assert_eq!(b.prefix, k.prefix, "prefix diverged on {q:?}");
            assert_eq!(b.matched, k.matched, "matched modules diverged on {q:?}");
        }
        answer_hits += kernel.len();
    }
    println!(
        "verified: {} (group, query) answers identical across both paths ({answer_hits} hits)",
        pairs.len()
    );

    const COLD_REPS: usize = 3;
    let (base_cold_us, base_hits) = best_pass(
        COLD_REPS,
        |g, q| {
            baseline_search(
                &repo,
                &base_index,
                &KeywordQuery::parse(q),
                &access_maps[g],
                &base_views,
            )
            .len()
        },
        &pairs,
    );
    let (kernel_cold_us, kernel_hits) = best_pass(
        COLD_REPS,
        |g, q| {
            search_filtered_with_cache(
                &repo,
                &kernel_index,
                &KeywordQuery::parse(q),
                &access_maps[g],
                &kernel_views,
            )
            .len()
        },
        &pairs,
    );
    assert_eq!(base_hits, kernel_hits, "timed passes diverged");
    let cold_speedup = base_cold_us / kernel_cold_us;
    println!("\n-- cold selective search ({} queries, {} hits) --", pairs.len(), kernel_hits);
    println!(
        "  baseline (PR-6 replica): {:>10.0} µs  ({:.1} µs/q)",
        base_cold_us,
        base_cold_us / pairs.len() as f64
    );
    println!(
        "  kernel   (E16)         : {:>10.0} µs  ({:.1} µs/q)",
        kernel_cold_us,
        kernel_cold_us / pairs.len() as f64
    );
    println!("  speedup: {cold_speedup:.2}× (gate ≥ {:.1}×)", config.min_cold_speedup);

    // -- section B: warm no-regression --------------------------------------
    // The warm path is a (group, query) result probe E16 never touched;
    // load both sides' answers into structurally identical maps.
    let mut base_warm: HashMap<(usize, &str), Arc<Vec<BaseHit>>> = HashMap::new();
    let mut kernel_warm: HashMap<(usize, &str), Arc<Vec<KeywordHit>>> = HashMap::new();
    for (g, q) in pairs.iter() {
        let query = KeywordQuery::parse(q);
        base_warm.insert(
            (*g, q.as_str()),
            Arc::new(baseline_search(&repo, &base_index, &query, &access_maps[*g], &base_views)),
        );
        kernel_warm.insert(
            (*g, q.as_str()),
            Arc::new(search_filtered_with_cache(
                &repo,
                &kernel_index,
                &query,
                &access_maps[*g],
                &kernel_views,
            )),
        );
    }
    const WARM_REPS: usize = 9;
    let (base_warm_us, _) = best_pass(
        WARM_REPS,
        |g, q| base_warm.get(&(g, q)).map(|h| Arc::clone(h).len()).unwrap_or(0),
        &pairs,
    );
    let (kernel_warm_us, _) = best_pass(
        WARM_REPS,
        |g, q| kernel_warm.get(&(g, q)).map(|h| Arc::clone(h).len()).unwrap_or(0),
        &pairs,
    );
    let warm_ratio = kernel_warm_us / base_warm_us;

    // And the real engine: a warm pass must be pure cache hits — the
    // kernel pipeline is never re-entered for a repeated query.
    let engine = QueryEngine::new(e11_repo(&corpus), registry.clone());
    for (g, q) in pairs.iter() {
        engine.search_as(groups[*g], q);
    }
    let before = engine.stats();
    let (engine_warm_us, _) = best_pass(
        WARM_REPS,
        |g, q| engine.search_as(groups[g], q).map(|h| h.len()).unwrap_or(0),
        &pairs,
    );
    let after = engine.stats();
    assert_eq!(
        after.keyword.hits - before.keyword.hits,
        (WARM_REPS * pairs.len()) as u64,
        "warm pass must be served entirely from the keyword cache"
    );
    assert_eq!(after.keyword.misses, before.keyword.misses, "warm pass must not miss");
    println!("\n-- warm probe (best of {WARM_REPS}) --");
    println!("  baseline probe: {base_warm_us:>8.0} µs   kernel probe: {kernel_warm_us:>8.0} µs   ratio {warm_ratio:.3} (gate ≤ {:.2})", config.max_warm_ratio);
    println!("  engine warm pass: {engine_warm_us:.0} µs (all keyword-cache hits)");

    // -- section C: write no-regression -------------------------------------
    let stream = e13_write_stream(&corpus, config.writes, 60, 20, config.seed ^ 0xE16);

    let mut repo_base = e11_repo(&corpus);
    let mut idx_base = BaselineIndex::build(&repo_base);
    let mut base_write_us = 0.0f64;
    for m in stream.iter().cloned() {
        repo_base.apply(m).expect("write stream valid");
        let t = Instant::now();
        idx_base.refresh(&repo_base);
        base_write_us += t.elapsed().as_secs_f64() * 1e6;
    }

    let mut repo_kernel = e11_repo(&corpus);
    let mut idx_kernel = KeywordIndex::build(&repo_kernel);
    let mut kernel_write_us = 0.0f64;
    for m in stream.iter().cloned() {
        repo_kernel.apply(m).expect("write stream valid");
        let t = Instant::now();
        idx_kernel.refresh(&repo_kernel);
        kernel_write_us += t.elapsed().as_secs_f64() * 1e6;
    }
    let write_ratio = kernel_write_us / base_write_us;

    // The maintained block-compressed index answers like a fresh build,
    // and like the baseline replica, on every log term.
    let fresh = KeywordIndex::build(&repo_kernel);
    assert_eq!(idx_kernel.doc_count(), fresh.doc_count(), "doc_count diverged after writes");
    assert_eq!(idx_kernel.doc_count(), idx_base.doc_count, "replica doc_count diverged");
    for query in &queries {
        for term in &query.terms {
            assert_eq!(
                idx_kernel.lookup_query_term(term),
                fresh.lookup_query_term(term),
                "postings diverged on {term:?}"
            );
            assert_eq!(
                idx_kernel.lookup_query_term(term),
                idx_base.lookup_query_term(term),
                "kernel vs replica postings diverged on {term:?}"
            );
        }
    }
    println!("\n-- per-write maintenance ({} writes) --", stream.len());
    println!("  baseline refresh: {base_write_us:>8.0} µs   kernel refresh: {kernel_write_us:>8.0} µs   ratio {write_ratio:.3} (gate ≤ {:.2})", config.max_write_ratio);

    // -- section D: seal boundary (honest cost) -----------------------------
    let mut seal_tokens: Vec<String> = queries
        .iter()
        .flat_map(|q| q.terms.iter())
        .flat_map(|t| t.split(' '))
        .map(|t| t.to_string())
        .collect();
    seal_tokens.sort();
    seal_tokens.dedup();
    let seal_index = KeywordIndex::build(&repo);
    let t = Instant::now();
    let mut seal_postings = 0usize;
    for tok in &seal_tokens {
        seal_postings += seal_index.lookup(tok).len();
    }
    let seal_first_us = t.elapsed().as_secs_f64() * 1e6;
    let t = Instant::now();
    let mut sealed_postings = 0usize;
    for tok in &seal_tokens {
        sealed_postings += seal_index.lookup(tok).len();
    }
    let sealed_us = t.elapsed().as_secs_f64() * 1e6;
    assert_eq!(seal_postings, sealed_postings, "sealing changed answers");
    println!(
        "\n-- seal boundary ({} distinct tokens, {} postings) --",
        seal_tokens.len(),
        seal_postings
    );
    println!("  first lookup (seals): {seal_first_us:.0} µs   sealed lookup: {sealed_us:.0} µs");

    // -- section E: pool-width sweep (cold scatter) -------------------------
    println!("\n-- pool-width sweep (4-shard cold scatter, {} queries) --", pairs.len());
    let mut sweep: Vec<(usize, f64, usize)> = Vec::new();
    for &w in &config.pool_widths {
        let cluster = EngineCluster::with_config(
            e11_repo(&corpus),
            registry.clone(),
            4,
            ShardStrategy::RoundRobin,
            Arc::new(WorkerPool::new(w)),
        );
        let (us, hits) = timed_pass(
            |g, q| cluster.search_as(groups[g], q).map(|h| h.len()).unwrap_or(0),
            &pairs,
        );
        assert_eq!(hits, kernel_hits, "cluster answers diverged at width {w}");
        println!("  width {w}: {us:>10.0} µs  ({:.1} µs/q)", us / pairs.len() as f64);
        sweep.push((w, us, hits));
    }

    // -- JSON + gates --------------------------------------------------------
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|(w, us, hits)| {
            format!(
                r#"{{ "pool_width": {w}, "cold_scatter_us": {us:.0}, "per_query_us": {pq:.2}, "hits": {hits} }}"#,
                pq = us / pairs.len() as f64,
            )
        })
        .collect();
    let cold_pass = cold_speedup >= config.min_cold_speedup;
    let warm_pass = warm_ratio <= config.max_warm_ratio;
    let write_pass = write_ratio <= config.max_write_ratio;
    let json = format!(
        r#"{{
  "experiment": "e16_cold_kernels",
  "config": {{
    "specs": {specs}, "queries": {queries}, "writes": {writes}, "seed": {seed},
    "min_cold_speedup": {min_cold_speedup}, "max_warm_ratio": {max_warm_ratio},
    "max_write_ratio": {max_write_ratio}
  }},
  "cold": {{
    "queries": {nq}, "hits": {hits},
    "baseline_us": {base_cold_us:.0}, "kernel_us": {kernel_cold_us:.0},
    "baseline_per_query_us": {bpq:.2}, "kernel_per_query_us": {kpq:.2},
    "speedup": {cold_speedup:.3}
  }},
  "warm": {{
    "baseline_probe_us": {base_warm_us:.0}, "kernel_probe_us": {kernel_warm_us:.0},
    "ratio": {warm_ratio:.4}, "engine_warm_us": {engine_warm_us:.0},
    "engine_warm_all_cache_hits": true
  }},
  "writes": {{
    "count": {nw}, "baseline_refresh_us": {base_write_us:.0},
    "kernel_refresh_us": {kernel_write_us:.0}, "ratio": {write_ratio:.4}
  }},
  "seal_boundary": {{
    "distinct_tokens": {ntok}, "postings": {seal_postings},
    "first_lookup_us": {seal_first_us:.0}, "sealed_lookup_us": {sealed_us:.0}
  }},
  "pool_sweep": [
    {sweep_json}
  ],
  "note": "single-core host: the pool sweep measures dispatch overhead, not parallelism",
  "gates": {{
    "cold_speedup": {{ "value": {cold_speedup:.3}, "min": {min_cold_speedup}, "pass": {cold_pass} }},
    "warm_ratio": {{ "value": {warm_ratio:.4}, "max": {max_warm_ratio}, "pass": {warm_pass} }},
    "write_ratio": {{ "value": {write_ratio:.4}, "max": {max_write_ratio}, "pass": {write_pass} }}
  }}
}}
"#,
        specs = config.specs,
        queries = config.queries,
        writes = config.writes,
        seed = config.seed,
        min_cold_speedup = config.min_cold_speedup,
        max_warm_ratio = config.max_warm_ratio,
        max_write_ratio = config.max_write_ratio,
        nq = pairs.len(),
        hits = kernel_hits,
        bpq = base_cold_us / pairs.len() as f64,
        kpq = kernel_cold_us / pairs.len() as f64,
        nw = stream.len(),
        ntok = seal_tokens.len(),
        sweep_json = sweep_json.join(",\n    "),
    );
    std::fs::write(&config.out, json).expect("write benchmark json");
    println!("\nwrote {}", config.out);

    assert!(cold_pass, "cold gate failed: {cold_speedup:.2}× < {:.1}×", config.min_cold_speedup);
    assert!(warm_pass, "warm gate failed: ratio {warm_ratio:.3} > {:.2}", config.max_warm_ratio);
    assert!(
        write_pass,
        "write gate failed: ratio {write_ratio:.3} > {:.2}",
        config.max_write_ratio
    );
    println!("all gates passed");
}
