//! E17 baseline emitter: group-commit WAL + background snapshots —
//! amortized durable writes under concurrency, priced honestly.
//!
//! ```bash
//! cargo run --release -p ppwf-bench --bin e17_group_commit -- \
//!     [--out BENCH_e17_group_commit.json] [--writes 384] [--reads 200] \
//!     [--seed 17] [--window 32] [--max-batch 16] [--max-delay-us 50] \
//!     [--min-grouped-speedup 4.0] [--max-single-writer-ratio 1.2] \
//!     [--max-read-regression 1.2] [--max-bg-pause-ratio 1.0]
//! ```
//!
//! Four measured sections, every number on real files ([`FsStorage`])
//! so the fsyncs being amortized are actual fsyncs:
//!
//! * **Concurrent durable mutations.** Two typed write streams run
//!   through a [`ServeFront`] with `--window` requests in flight, each
//!   once under per-record `fsync_each` and once under
//!   `GroupCommit { max_batch, max_delay_us }`. While one batch's
//!   fsync runs, later mutations pile up behind the admission fence and
//!   the next drain scoops them into one WAL record under one fsync —
//!   the classic group-commit dynamic. The mixed 1:2:1 stream carries
//!   full execution records, so apply cost and data-proportional fsync
//!   time bound its wall-clock win (Amdahl); it is structurally gated
//!   on a ≥4x fsync-count reduction. The policy-churn stream (tiny
//!   `SetPolicy` records, fsync-latency-dominated — the paper's
//!   privacy-policy updates) carries the wall-clock gate:
//!   ≥ `--min-grouped-speedup`. Every run must end bit-identical to a
//!   sequential reference replay before its speedup is believed.
//! * **Single-writer overhead.** The same two policies driven closed-loop
//!   (one request in flight, so every batch has size 1): group commit
//!   must cost nothing when there is nothing to batch. Gate: within
//!   `--max-single-writer-ratio` of per-record fsync.
//! * **Read no-regression.** A cluster *recovered from* the group-commit
//!   log serves a keyword read log against a fresh build of the same
//!   corpus, cold and warm (alternated minima, E15 methodology). Reads
//!   never touch the log; batching must not change that. Gate: both
//!   ratios ≤ `--max-read-regression`.
//! * **Snapshot pause.** The same durable write stream with the snapshot
//!   cadence on, inline vs background: inline pauses the mutating thread
//!   for serialize+write+prune, background for clone+rotate only while a
//!   pool job does the rest. Both recover bit-identically. Gate:
//!   background pause ≤ inline pause × `--max-bg-pause-ratio`.
//!
//! **Honest boundaries.** Group commit trades latency for throughput: a
//! record admitted first in a batch waits up to `max_delay_us` — paid
//! only when sibling writes are in flight — plus its peers' append time
//! before its covering fsync returns; the batch is acknowledged
//! together, never early. The speedup exists only
//! under concurrency (section B is the proof), and the background
//! snapshot trades the mutating thread's pause for a transient second
//! copy of the repository image plus pool occupancy while the job runs.
//! The binary exits non-zero when any acceptance gate fails.

use ppwf_bench::{standard_registry, E10_GROUPS, E10_QUERIES};
use ppwf_query::cluster::EngineCluster;
use ppwf_query::route::ShardStrategy;
use ppwf_query::serve::{QueryAnswer, ServeFront, ServeRequest, ServeStats};
use ppwf_repo::mutation::Mutation;
use ppwf_repo::pool::WorkerPool;
use ppwf_repo::repository::Repository;
use ppwf_repo::storage::{FsStorage, StorageBackend};
use ppwf_repo::wal::{DurabilityPolicy, DurabilityStats, GroupCommit, BATCH_SIZE_BOUNDS};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

struct Config {
    out: String,
    writes: usize,
    reads: usize,
    seed: u64,
    window: usize,
    max_batch: usize,
    max_delay_us: u64,
    min_grouped_speedup: f64,
    max_single_writer_ratio: f64,
    max_read_regression: f64,
    max_bg_pause_ratio: f64,
}

fn parse_args() -> Config {
    let mut config = Config {
        out: "BENCH_e17_group_commit.json".to_string(),
        writes: 384,
        reads: 200,
        seed: 17,
        window: 32,
        max_batch: 16,
        max_delay_us: 50,
        min_grouped_speedup: 4.0,
        max_single_writer_ratio: 1.2,
        max_read_regression: 1.2,
        max_bg_pause_ratio: 1.0,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need =
            |n: usize| args.get(n).unwrap_or_else(|| panic!("{} needs a value", args[n - 1]));
        match args[i].as_str() {
            "--out" => config.out = need(i + 1).clone(),
            "--writes" => config.writes = need(i + 1).parse().expect("bad write count"),
            "--reads" => config.reads = need(i + 1).parse().expect("bad read count"),
            "--seed" => config.seed = need(i + 1).parse().expect("bad seed"),
            "--window" => config.window = need(i + 1).parse().expect("bad window"),
            "--max-batch" => config.max_batch = need(i + 1).parse().expect("bad max batch"),
            "--max-delay-us" => config.max_delay_us = need(i + 1).parse().expect("bad delay"),
            "--min-grouped-speedup" => {
                config.min_grouped_speedup = need(i + 1).parse().expect("bad threshold")
            }
            "--max-single-writer-ratio" => {
                config.max_single_writer_ratio = need(i + 1).parse().expect("bad ratio")
            }
            "--max-read-regression" => {
                config.max_read_regression = need(i + 1).parse().expect("bad ratio")
            }
            "--max-bg-pause-ratio" => {
                config.max_bg_pause_ratio = need(i + 1).parse().expect("bad ratio")
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 2;
    }
    config
}

/// A deterministic mutation stream valid from an empty repository: a
/// 1:2:1 cycle of spec inserts, execution appends (the dominant write),
/// and policy swaps, each built against the evolving state.
fn standalone_stream(writes: usize, seed: u64) -> Vec<Mutation> {
    use ppwf_core::policy::Policy;
    use ppwf_model::exec::{Executor, HashOracle};
    use ppwf_repo::repository::SpecId;
    use ppwf_workloads::genspec::{generate_spec, SpecParams};
    let mut repo = Repository::new();
    let mut out = Vec::with_capacity(writes);
    for i in 0..writes as u64 {
        let kind = if repo.is_empty() || i % 4 == 0 {
            0
        } else if i % 4 == 3 {
            2
        } else {
            1
        };
        let mutation = match kind {
            0 => Mutation::InsertSpec {
                spec: generate_spec(&SpecParams { seed: seed ^ (i << 8), ..SpecParams::default() }),
                policy: Policy::public(),
            },
            1 => {
                let target = SpecId(((seed ^ i) % repo.len() as u64) as u32);
                let exec = Executor::new(&repo.entry(target).unwrap().spec)
                    .run(&mut HashOracle)
                    .expect("stored specs execute");
                Mutation::AddExecution { spec: target, exec }
            }
            _ => Mutation::SetPolicy {
                spec: SpecId(((seed ^ i) % repo.len() as u64) as u32),
                policy: Policy::public(),
            },
        };
        repo.apply(mutation.clone()).expect("generated mutation applies");
        out.push(mutation);
    }
    out
}

/// A policy-churn stream: a small spec corpus up front, then pure
/// `SetPolicy` swaps — the paper's privacy-policy update traffic. Policy
/// records are tiny and near-free to apply, so the durable cost of a
/// write is almost pure fsync latency: the workload group commit exists
/// for, and the one the speedup gate holds against.
fn policy_churn_stream(specs: usize, writes: usize, seed: u64) -> Vec<Mutation> {
    use ppwf_core::policy::{AccessLevel, Policy};
    use ppwf_repo::repository::SpecId;
    use ppwf_workloads::genspec::{generate_spec, SpecParams};
    let specs = specs.min(writes).max(1);
    let mut out = Vec::with_capacity(writes);
    for i in 0..specs as u64 {
        out.push(Mutation::InsertSpec {
            spec: generate_spec(&SpecParams { seed: seed ^ (i << 8), ..SpecParams::default() }),
            policy: Policy::public(),
        });
    }
    for i in specs as u64..writes as u64 {
        let policy = if i % 2 == 0 {
            Policy::public()
        } else {
            let mut p = Policy::public();
            p.protect_channel(format!("churn-{}", i % 7), AccessLevel(2));
            p
        };
        out.push(Mutation::SetPolicy { spec: SpecId(((seed ^ i) % specs as u64) as u32), policy });
    }
    out
}

/// Open a durable cluster over a fresh [`FsStorage`] root and push the
/// whole stream through a [`ServeFront`] with up to `window` requests in
/// flight. Returns (elapsed µs, WAL stats, serve stats, final image).
fn front_mutation_pass(
    root: &Path,
    stream: &[Mutation],
    policy: DurabilityPolicy,
    window: usize,
) -> (f64, DurabilityStats, ServeStats, Vec<u8>) {
    let pool = Arc::new(WorkerPool::new(4));
    let backend: Arc<dyn StorageBackend> =
        Arc::new(FsStorage::open(root).expect("bench storage root"));
    let (cluster, _) = EngineCluster::open_durable(
        Arc::clone(&backend),
        policy,
        standard_registry(),
        2,
        ShardStrategy::RoundRobin,
        Arc::clone(&pool),
    )
    .expect("open durable cluster on fresh storage");
    let front = ServeFront::with_pool(cluster, Arc::clone(&pool));

    let t = Instant::now();
    let mut inflight = VecDeque::with_capacity(window);
    for mutation in stream {
        inflight.push_back(front.submit(ServeRequest::mutate(mutation.clone())));
        if inflight.len() >= window.max(1) {
            let response = inflight.pop_front().expect("non-empty window").wait();
            assert!(
                matches!(response.answer, QueryAnswer::Mutated(Ok(_))),
                "durable mutation refused on healthy storage"
            );
        }
    }
    for ticket in inflight {
        let response = ticket.wait();
        assert!(
            matches!(response.answer, QueryAnswer::Mutated(Ok(_))),
            "durable mutation refused on healthy storage"
        );
    }
    let us = t.elapsed().as_secs_f64() * 1e6;
    front.quiesce();
    let stats = front.stats();
    let wal = stats.durability.expect("durable front reports WAL stats");
    // The equivalence that matters is the *durable* image: replaying the
    // WAL this pass wrote must rebuild the sequential reference exactly.
    let (recovered, recovery) =
        Repository::recover(backend.as_ref()).expect("recovery over healthy log");
    assert_eq!(recovery.last_seq, stream.len() as u64, "durable log missed mutations");
    (us, wal, stats, recovered.save().to_vec())
}

/// Serve the fixed keyword read log once over a blocking cluster;
/// returns (elapsed µs, hits served).
fn read_pass(cluster: &EngineCluster, reads: usize) -> (f64, usize) {
    let t = Instant::now();
    let mut hits = 0usize;
    for i in 0..reads {
        let group = E10_GROUPS[i % E10_GROUPS.len()];
        let query = E10_QUERIES[i % E10_QUERIES.len()];
        hits += cluster.search_as(group, query).map(|h| h.len()).unwrap_or(0);
    }
    (t.elapsed().as_secs_f64() * 1e6, hits)
}

/// Drive the stream through a durable cluster single-threaded with the
/// snapshot cadence on, inline or background. Returns (total µs, WAL
/// stats after draining any in-flight job).
fn snapshot_pass(
    root: &Path,
    stream: &[Mutation],
    background: bool,
    cadence: u64,
) -> (f64, DurabilityStats) {
    let pool = Arc::new(WorkerPool::new(2));
    let backend: Arc<dyn StorageBackend> =
        Arc::new(FsStorage::open(root).expect("bench storage root"));
    let policy = DurabilityPolicy {
        fsync_each: true,
        background_snapshots: background,
        snapshot_every: cadence,
        segment_bytes: 1 << 18,
        ..DurabilityPolicy::default()
    };
    let (mut cluster, _) = EngineCluster::open_durable(
        backend.clone(),
        policy,
        standard_registry(),
        2,
        ShardStrategy::RoundRobin,
        Arc::clone(&pool),
    )
    .expect("open durable cluster on fresh storage");
    let t = Instant::now();
    for mutation in stream {
        cluster.mutate(mutation.clone()).expect("fault-free stream applies");
    }
    let us = t.elapsed().as_secs_f64() * 1e6;
    while cluster.background_snapshot_in_flight() {
        std::thread::yield_now();
    }
    let wal = cluster.durability_stats().expect("durable cluster reports stats");

    // No number is believed over an unverified log: recovery must be
    // bit-identical to a sequential replay of the same stream.
    let (recovered, stats) = Repository::recover(&*backend).expect("recovery");
    assert_eq!(stats.last_seq, stream.len() as u64, "recovery missed records");
    let mut replay = Repository::new();
    for mutation in stream {
        replay.apply(mutation.clone()).expect("generated stream applies");
    }
    assert_eq!(recovered.save(), replay.save(), "recovered image diverges from the stream");
    (us, wal)
}

fn main() {
    let config = parse_args();
    println!("== E17: group-commit WAL + background snapshots ==");
    println!(
        "{} writes · {} reads · window {} · max batch {} · seed {}",
        config.writes, config.reads, config.window, config.max_batch, config.seed
    );

    let replay = |stream: &[Mutation]| {
        let mut repo = Repository::new();
        for mutation in stream {
            repo.apply(mutation.clone()).expect("generated stream applies");
        }
        repo
    };
    let stream = standalone_stream(config.writes, config.seed ^ 0xE17);
    let reference = replay(&stream);
    let reference_save = reference.save().to_vec();
    let churn = policy_churn_stream(64, config.writes, config.seed ^ 0xC409);
    let churn_reference_save = replay(&churn).save().to_vec();

    let fs_root = std::env::temp_dir().join(format!("ppwf-e17-{}", std::process::id()));
    let per_record = DurabilityPolicy {
        fsync_each: true,
        snapshot_every: 0,
        segment_bytes: 1 << 20,
        ..DurabilityPolicy::default()
    };
    let grouped = DurabilityPolicy {
        group_commit: Some(GroupCommit {
            max_batch: config.max_batch,
            max_delay_us: config.max_delay_us,
        }),
        ..per_record
    };

    // -- section A: concurrent durable mutations ----------------------------
    // Two workloads bracket the amortization range. The mixed 1:2:1
    // stream carries full execution records: per-record apply cost and
    // data-proportional fsync time are shared by both policies, so its
    // wall-clock win is Amdahl-bounded — reported and structurally
    // asserted (≥4x fewer fsyncs), but not wall-clock-gated. The
    // policy-churn stream is fsync-latency-dominated, and the speedup
    // gate holds against it.
    let (mix_per_us, mix_per_wal, _, mix_per_save) =
        front_mutation_pass(&fs_root.join("mixed-per"), &stream, per_record, config.window);
    let (mix_grp_us, mix_grp_wal, mix_serve, mix_grp_save) =
        front_mutation_pass(&fs_root.join("mixed-grp"), &stream, grouped, config.window);
    assert_eq!(mix_per_save, reference_save, "per-record front diverged from sequential replay");
    assert_eq!(mix_grp_save, reference_save, "grouped front diverged from sequential replay");
    assert_eq!(mix_per_wal.appends, stream.len() as u64);
    assert_eq!(mix_grp_wal.appends, stream.len() as u64);
    assert_eq!(mix_per_wal.records, stream.len() as u64, "per-record framing: one record each");
    assert!(
        mix_grp_wal.records < mix_grp_wal.appends,
        "concurrency must form multi-record batches"
    );
    assert!(
        mix_grp_wal.syncs * 4 <= mix_per_wal.syncs,
        "group commit must cut fsyncs >=4x on the mixed stream (got {} vs {})",
        mix_grp_wal.syncs,
        mix_per_wal.syncs
    );
    let (churn_per_us, churn_per_wal, _, churn_per_save) =
        front_mutation_pass(&fs_root.join("churn-per"), &churn, per_record, config.window);
    let (churn_grp_us, churn_grp_wal, churn_serve, churn_grp_save) =
        front_mutation_pass(&fs_root.join("churn-grp"), &churn, grouped, config.window);
    assert_eq!(churn_per_save, churn_reference_save, "per-record churn diverged from replay");
    assert_eq!(churn_grp_save, churn_reference_save, "grouped churn diverged from replay");
    assert_eq!(churn_per_wal.appends, churn.len() as u64);
    assert_eq!(churn_grp_wal.appends, churn.len() as u64);
    let mixed_speedup = mix_per_us / mix_grp_us;
    let grouped_speedup = churn_per_us / churn_grp_us;
    let writes = stream.len() as f64;
    println!("\n-- concurrent durable mutations ({} in flight, real fsync) --", config.window);
    println!(
        "{:>34} {:>12} {:>10} {:>14}",
        "stream · policy", "µs/write", "fsyncs", "fsyncs saved"
    );
    for (label, us, wal) in [
        ("mixed · fsync each", mix_per_us, &mix_per_wal),
        ("mixed · group commit", mix_grp_us, &mix_grp_wal),
        ("policy churn · fsync each", churn_per_us, &churn_per_wal),
        ("policy churn · group commit", churn_grp_us, &churn_grp_wal),
    ] {
        println!("{label:>34} {:>12.1} {:>10} {:>14}", us / writes, wal.syncs, wal.fsyncs_saved);
    }
    println!(
        "mixed speedup {mixed_speedup:.2}x (Amdahl-bounded, fsync-count gate ≥4x); largest batch {}, histogram {:?} (bounds {:?})",
        mix_serve.max_write_batch, mix_grp_wal.batch_size_counts, BATCH_SIZE_BOUNDS
    );
    println!(
        "churn speedup {grouped_speedup:.2}x (gate ≥{:.1}x); {} WAL batches, largest {}, histogram {:?}",
        config.min_grouped_speedup,
        churn_serve.write_batches,
        churn_serve.max_write_batch,
        churn_grp_wal.batch_size_counts
    );

    // -- section B: single-writer overhead -----------------------------------
    // Closed loop, one request in flight: every batch has size 1, so this
    // prices the group-commit bookkeeping itself. Alternated minima of
    // SOLO_REPS passes cancel scheduler noise.
    const SOLO_REPS: usize = 3;
    let (mut solo_per_us, mut solo_grp_us) = (f64::INFINITY, f64::INFINITY);
    for rep in 0..SOLO_REPS {
        let per_root = fs_root.join(format!("solo-per-{rep}"));
        let grp_root = fs_root.join(format!("solo-grp-{rep}"));
        let (p, g) = if rep % 2 == 0 {
            let (p, ..) = front_mutation_pass(&per_root, &stream, per_record, 1);
            let (g, ..) = front_mutation_pass(&grp_root, &stream, grouped, 1);
            (p, g)
        } else {
            let (g, ..) = front_mutation_pass(&grp_root, &stream, grouped, 1);
            let (p, ..) = front_mutation_pass(&per_root, &stream, per_record, 1);
            (p, g)
        };
        solo_per_us = solo_per_us.min(p);
        solo_grp_us = solo_grp_us.min(g);
    }
    let single_writer_ratio = solo_grp_us / solo_per_us;
    println!("\n-- single writer (closed loop, nothing to batch) --");
    println!(
        "fsync each {:.1} µs/write · group commit {:.1} µs/write · ratio {single_writer_ratio:.3} (gate ≤{:.2})",
        solo_per_us / writes,
        solo_grp_us / writes,
        config.max_single_writer_ratio
    );

    // -- section C: read no-regression ---------------------------------------
    // Cold: a cluster recovered from the group-commit log vs a fresh
    // build, fresh pair per rep, order alternated, per-side minima.
    const COLD_REPS: usize = 3;
    let grouped_root = fs_root.join("mixed-grp");
    let open_recovered = || {
        EngineCluster::open_durable(
            Arc::new(FsStorage::open(&grouped_root).expect("reopen grouped root"))
                as Arc<dyn StorageBackend>,
            grouped,
            standard_registry(),
            2,
            ShardStrategy::RoundRobin,
            Arc::new(WorkerPool::new(2)),
        )
        .expect("recover cluster from the group-commit log")
        .0
    };
    let (mut fresh_cold_us, mut durable_cold_us) = (f64::INFINITY, f64::INFINITY);
    let mut pair: Option<(EngineCluster, EngineCluster)> = None;
    for rep in 0..COLD_REPS {
        let durable_cluster = open_recovered();
        let fresh_cluster = EngineCluster::new(reference.clone(), standard_registry(), 2);
        let ((f_us, fh), (d_us, dh)) = if rep % 2 == 0 {
            let f = read_pass(&fresh_cluster, config.reads);
            let d = read_pass(&durable_cluster, config.reads);
            (f, d)
        } else {
            let d = read_pass(&durable_cluster, config.reads);
            let f = read_pass(&fresh_cluster, config.reads);
            (f, d)
        };
        assert_eq!(dh, fh, "the recovered cluster serves different answers");
        fresh_cold_us = fresh_cold_us.min(f_us);
        durable_cold_us = durable_cold_us.min(d_us);
        pair = Some((durable_cluster, fresh_cluster));
    }
    let (durable_cluster, fresh_cluster) = pair.expect("at least one rep");
    const WARM_REPS: usize = 15;
    let (mut fresh_warm_us, mut durable_warm_us) = (f64::INFINITY, f64::INFINITY);
    for rep in 0..WARM_REPS {
        let (f_us, d_us) = if rep % 2 == 0 {
            let (f, _) = read_pass(&fresh_cluster, config.reads);
            let (d, _) = read_pass(&durable_cluster, config.reads);
            (f, d)
        } else {
            let (d, _) = read_pass(&durable_cluster, config.reads);
            let (f, _) = read_pass(&fresh_cluster, config.reads);
            (f, d)
        };
        fresh_warm_us = fresh_warm_us.min(f_us);
        durable_warm_us = durable_warm_us.min(d_us);
    }
    let cold_ratio = durable_cold_us / fresh_cold_us;
    let warm_ratio = durable_warm_us / fresh_warm_us;
    let per_q = |us: f64| us / config.reads as f64;
    println!("\n-- read path: recovered group-commit cluster vs fresh build --");
    println!(
        "cold {:.2} vs {:.2} µs/q (ratio {cold_ratio:.3}) · warm {:.3} vs {:.3} µs/q (ratio {warm_ratio:.3}) · gate ≤{:.1}",
        per_q(durable_cold_us),
        per_q(fresh_cold_us),
        per_q(durable_warm_us),
        per_q(fresh_warm_us),
        config.max_read_regression
    );

    // -- section D: snapshot pause, inline vs background ---------------------
    const SNAPSHOT_CADENCE: u64 = 16;
    let (inline_us, inline_wal) =
        snapshot_pass(&fs_root.join("snap-inline"), &stream, false, SNAPSHOT_CADENCE);
    let (bg_us, bg_wal) = snapshot_pass(&fs_root.join("snap-bg"), &stream, true, SNAPSHOT_CADENCE);
    assert!(inline_wal.snapshots >= 2, "cadence must snapshot repeatedly");
    assert!(bg_wal.background_snapshots >= 2, "cadence must spawn background snapshots");
    assert_eq!(inline_wal.background_snapshots, 0, "inline pass must never go to the pool");
    let per_snap = |us: u64, n: u64| us as f64 / n.max(1) as f64;
    let inline_pause = per_snap(inline_wal.snapshot_pause_us, inline_wal.snapshots);
    let bg_pause = per_snap(bg_wal.snapshot_pause_us, bg_wal.background_snapshots);
    let pause_ratio = bg_pause / inline_pause;
    println!("\n-- snapshot pause on the mutating thread (cadence {SNAPSHOT_CADENCE}) --");
    println!(
        "inline: {} snapshots, {inline_pause:.1} µs pause each (serialize+write+prune)",
        inline_wal.snapshots
    );
    println!(
        "background: {} snapshots, {bg_pause:.1} µs pause each (clone+rotate); {:.1} µs/job off-thread",
        bg_wal.background_snapshots,
        per_snap(bg_wal.snapshot_background_us, bg_wal.background_snapshots)
    );
    println!(
        "pause ratio {pause_ratio:.3} (gate ≤{:.2}); write path {:.1} vs {:.1} µs/write overall",
        config.max_bg_pause_ratio,
        inline_us / writes,
        bg_us / writes
    );
    let _ = std::fs::remove_dir_all(&fs_root);

    let histogram = |wal: &DurabilityStats| {
        wal.batch_size_counts.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", ")
    };
    let json = format!(
        r#"{{
  "experiment": "E17",
  "title": "Group-commit WAL + background snapshots: amortized durable writes under concurrency",
  "seed": {seed},
  "writes": {writes},
  "reads": {reads},
  "window": {window},
  "max_batch": {max_batch},
  "max_delay_us": {max_delay},
  "concurrent_mutations_policy_churn": {{
    "stream": "64 spec inserts then pure SetPolicy swaps (fsync-latency-dominated)",
    "per_record_us_per_write": {pu:.2},
    "grouped_us_per_write": {gu:.2},
    "grouped_speedup": {gs:.3},
    "per_record_fsyncs": {pf},
    "grouped_fsyncs": {gf},
    "fsyncs_saved": {fsv},
    "wal_batches": {wb},
    "largest_batch": {lb},
    "batch_size_histogram": [{hist}],
    "final_state_bit_identical_to_sequential": true
  }},
  "concurrent_mutations_mixed": {{
    "stream": "1:2:1 inserts, execution appends, policy swaps (apply + data-proportional fsync shared by both policies)",
    "per_record_us_per_write": {mpu:.2},
    "grouped_us_per_write": {mgu:.2},
    "grouped_speedup": {mgsp:.3},
    "per_record_fsyncs": {mpf},
    "grouped_fsyncs": {mgf},
    "fsyncs_saved": {mfsv},
    "largest_batch": {mlb},
    "batch_size_histogram": [{mhist}],
    "fsync_reduction_gate": "grouped fsyncs x4 <= per-record fsyncs (asserted)",
    "final_state_bit_identical_to_sequential": true
  }},
  "single_writer": {{
    "per_record_us_per_write": {spu:.2},
    "grouped_us_per_write": {sgu:.2},
    "ratio_grouped_vs_per_record": {swr:.3}
  }},
  "read_path": {{
    "fresh_cold_us_per_query": {fc:.3},
    "recovered_cold_us_per_query": {dc:.3},
    "cold_ratio": {cr:.3},
    "fresh_warm_us_per_query": {fw:.4},
    "recovered_warm_us_per_query": {dw:.4},
    "warm_ratio": {wr:.3}
  }},
  "snapshot_pause": {{
    "cadence": {cad},
    "inline_snapshots": {isn},
    "inline_pause_us_per_snapshot": {ip:.1},
    "background_snapshots": {bsn},
    "background_pause_us_per_snapshot": {bp:.1},
    "background_job_us_per_snapshot": {bj:.1},
    "pause_ratio_background_vs_inline": {pr:.3},
    "recovery_bit_identical_both_modes": true
  }},
  "acceptance": {{
    "min_grouped_speedup": {mgs:.1},
    "max_single_writer_ratio": {msw:.2},
    "max_read_regression": {mrr:.2},
    "max_bg_pause_ratio": {mbp:.2},
    "no_response_before_covering_fsync": true
  }},
  "note": "group commit trades latency for throughput: the first record of a batch waits for its peers' appends before the shared fsync, and the win exists only under concurrency (single-writer section is the control); the background snapshot trades the mutating thread's pause for a transient second repository image and pool occupancy while the job serializes, writes, and prunes off-thread"
}}
"#,
        seed = config.seed,
        writes = stream.len(),
        reads = config.reads,
        window = config.window,
        max_batch = config.max_batch,
        max_delay = config.max_delay_us,
        pu = churn_per_us / writes,
        gu = churn_grp_us / writes,
        gs = grouped_speedup,
        pf = churn_per_wal.syncs,
        gf = churn_grp_wal.syncs,
        fsv = churn_grp_wal.fsyncs_saved,
        wb = churn_serve.write_batches,
        lb = churn_serve.max_write_batch,
        hist = histogram(&churn_grp_wal),
        mpu = mix_per_us / writes,
        mgu = mix_grp_us / writes,
        mgsp = mixed_speedup,
        mpf = mix_per_wal.syncs,
        mgf = mix_grp_wal.syncs,
        mfsv = mix_grp_wal.fsyncs_saved,
        mlb = mix_serve.max_write_batch,
        mhist = histogram(&mix_grp_wal),
        spu = solo_per_us / writes,
        sgu = solo_grp_us / writes,
        swr = single_writer_ratio,
        fc = per_q(fresh_cold_us),
        dc = per_q(durable_cold_us),
        cr = cold_ratio,
        fw = per_q(fresh_warm_us),
        dw = per_q(durable_warm_us),
        wr = warm_ratio,
        cad = SNAPSHOT_CADENCE,
        isn = inline_wal.snapshots,
        ip = inline_pause,
        bsn = bg_wal.background_snapshots,
        bp = bg_pause,
        bj = per_snap(bg_wal.snapshot_background_us, bg_wal.background_snapshots),
        pr = pause_ratio,
        mgs = config.min_grouped_speedup,
        msw = config.max_single_writer_ratio,
        mrr = config.max_read_regression,
        mbp = config.max_bg_pause_ratio,
    );
    std::fs::write(&config.out, &json).expect("write baseline JSON");
    println!("\nbaseline written to {}", config.out);

    assert!(
        grouped_speedup >= config.min_grouped_speedup,
        "E17 acceptance: group commit must be ≥{:.1}x per-record fsync on policy churn at {} in flight (got {grouped_speedup:.2}x)",
        config.min_grouped_speedup,
        config.window
    );
    assert!(
        single_writer_ratio <= config.max_single_writer_ratio,
        "E17 acceptance: group commit must cost nothing single-writer (ratio {single_writer_ratio:.2}x, gate {:.2}x)",
        config.max_single_writer_ratio
    );
    assert!(
        cold_ratio <= config.max_read_regression && warm_ratio <= config.max_read_regression,
        "E17 acceptance: the recovered group-commit cluster regressed reads (cold {cold_ratio:.2}x, warm {warm_ratio:.2}x, gate {:.2}x)",
        config.max_read_regression
    );
    assert!(
        pause_ratio <= config.max_bg_pause_ratio,
        "E17 acceptance: background snapshots must shrink the mutating thread's pause (ratio {pause_ratio:.2}x, gate {:.2}x)",
        config.max_bg_pause_ratio
    );
}
