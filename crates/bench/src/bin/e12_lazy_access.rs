//! E12 baseline emitter: lazy vs eager access-view resolution on the cold
//! query path.
//!
//! ```bash
//! cargo run --release -p ppwf-bench --bin e12_lazy_access -- \
//!     [--out BENCH_e12_lazy_access.json] [--specs 1024] [--queries 400] \
//!     [--groups 8] [--seed 17] [--min-speedup 3.0] [--broad-queries 60]
//! ```
//!
//! One corpus (the E11 shape: many small specs, broad selective
//! vocabulary), one distinct-query log, one rotating group stream over a
//! large registry. Two plans serve the identical stream:
//!
//! * `eager` — the pre-E12 cold path: materialize the group's whole-corpus
//!   `access_map` (O(specs) rule resolutions), then filtered search;
//! * `lazy` — an [`AccessCache`] resolver per request: only specs that
//!   appear in the query's candidate postings resolve, memoized per group
//!   across the pass.
//!
//! The **selectivity knob** is the query log. The main pass uses the
//! selective tail log (candidates ≪ corpus — where laziness pays); the
//! `broad` pass uses head-term queries *with a cold resolver per request*,
//! isolating the honest boundary where candidates ≈ corpus and a cold lazy
//! resolver degenerates toward the eager cost. (In production the memo
//! survives across queries, so even broad traffic pays corpus-wide
//! resolution once per repository version, not per request.)
//!
//! Before any number is reported, a verification pass asserts lazy answers
//! are identical to eager ones (specs, prefixes, matched modules), and the
//! resolver counters are checked: rule resolutions stay within the
//! candidate postings union — the filter-then-search privacy invariant.
//! The binary exits non-zero when the selective-pass speedup falls below
//! the acceptance threshold (default ≥3×), and when a warm engine pass
//! touches the resolver at all (the warm path must stay a cache probe).

use ppwf_bench::{
    e11_corpus, e11_query_log, e11_repo, e12_broad_corpus, e12_broad_query_log, e12_registry,
};
use ppwf_query::engine::QueryEngine;
use ppwf_query::keyword::{search_filtered_with_cache, KeywordQuery};
use ppwf_repo::keyword_index::KeywordIndex;
use ppwf_repo::principals::AccessCache;
use ppwf_repo::view_cache::ViewCache;
use std::collections::HashSet;
use std::time::Instant;

struct Config {
    out: String,
    specs: usize,
    queries: usize,
    groups: usize,
    seed: u64,
    min_speedup: f64,
    broad_queries: usize,
}

fn parse_args() -> Config {
    let mut config = Config {
        out: "BENCH_e12_lazy_access.json".to_string(),
        specs: 1024,
        queries: 400,
        groups: 8,
        seed: 17,
        min_speedup: 3.0,
        broad_queries: 60,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need =
            |n: usize| args.get(n).unwrap_or_else(|| panic!("{} needs a value", args[n - 1]));
        match args[i].as_str() {
            "--out" => config.out = need(i + 1).clone(),
            "--specs" => config.specs = need(i + 1).parse().expect("bad spec count"),
            "--queries" => config.queries = need(i + 1).parse().expect("bad query count"),
            "--groups" => config.groups = need(i + 1).parse().expect("bad group count"),
            "--seed" => config.seed = need(i + 1).parse().expect("bad seed"),
            "--min-speedup" => config.min_speedup = need(i + 1).parse().expect("bad threshold"),
            "--broad-queries" => {
                config.broad_queries = need(i + 1).parse().expect("bad broad count")
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 2;
    }
    config
}

fn main() {
    let config = parse_args();
    println!("== E12: lazy vs eager access resolution (cold filtered search) ==");
    println!(
        "corpus: {} specs, {} selective + {} broad queries, {} extra groups, seed {}",
        config.specs, config.queries, config.broad_queries, config.groups, config.seed
    );

    let corpus = e11_corpus(config.specs, config.seed);
    let repo = e11_repo(&corpus);
    let index = KeywordIndex::build(&repo);
    let (registry, group_names) = e12_registry(config.groups, config.specs);
    let selective = e11_query_log(&corpus, config.queries, config.seed ^ 0x5EED);
    // The boundary pass runs over its own small-vocabulary corpus, where
    // head terms annotate most specs — candidates ≈ corpus by design.
    let broad_corpus = e12_broad_corpus(config.specs, config.seed ^ 0xB0);
    let broad_repo = e11_repo(&broad_corpus);
    let broad_index = KeywordIndex::build(&broad_repo);
    let broad = e12_broad_query_log(&broad_corpus, config.broad_queries, config.seed ^ 0xB0AD);
    assert!(selective.len() >= config.queries * 9 / 10, "selective log came up short");
    let group_of = |i: usize| group_names[i % group_names.len()].as_str();

    // Selectivity diagnostic: average candidate specs per selective query
    // (the postings union the lazy plan is allowed to resolve).
    let union_of = |q: &str| -> HashSet<u32> {
        KeywordQuery::parse(q)
            .terms
            .iter()
            .flat_map(|t| index.lookup_query_term(t))
            .map(|p| p.spec.0)
            .collect()
    };
    let avg_candidates: f64 =
        selective.iter().map(|q| union_of(q).len() as f64).sum::<f64>() / selective.len() as f64;

    // Warm the allocator/page cache outside timing: one untimed pass per
    // plan over throwaway caches.
    {
        let views = ViewCache::new(4096);
        let cache = AccessCache::new();
        for (i, q) in selective.iter().enumerate() {
            let g = group_of(i);
            let access = registry.access_map(&repo, g).unwrap();
            let query = KeywordQuery::parse(q);
            search_filtered_with_cache(&repo, &index, &query, &access, &views);
            let resolver = cache.resolver(&registry, &repo, g).unwrap();
            search_filtered_with_cache(&repo, &index, &query, &resolver, &views);
        }
    }

    // -- selective pass: eager ----------------------------------------------
    let views_eager = ViewCache::new(4096);
    let t = Instant::now();
    let mut eager_hits = 0usize;
    for (i, q) in selective.iter().enumerate() {
        let access = registry.access_map(&repo, group_of(i)).unwrap();
        let query = KeywordQuery::parse(q);
        eager_hits +=
            search_filtered_with_cache(&repo, &index, &query, &access, &views_eager).len();
    }
    let eager_us = t.elapsed().as_secs_f64() * 1e6;

    // -- selective pass: lazy (one surviving AccessCache, as in production) --
    let views_lazy = ViewCache::new(4096);
    let access_cache = AccessCache::new();
    let t = Instant::now();
    let mut lazy_hits = 0usize;
    for (i, q) in selective.iter().enumerate() {
        let resolver = access_cache.resolver(&registry, &repo, group_of(i)).unwrap();
        let query = KeywordQuery::parse(q);
        lazy_hits +=
            search_filtered_with_cache(&repo, &index, &query, &resolver, &views_lazy).len();
    }
    let lazy_us = t.elapsed().as_secs_f64() * 1e6;
    assert_eq!(eager_hits, lazy_hits, "plans disagreed on total hits");

    // Verification: answers identical, and lazy resolution stayed inside
    // each query's candidate postings union (fresh cache per query so the
    // per-handle counters are exact).
    {
        let verify_cache = AccessCache::new();
        for (i, q) in selective.iter().enumerate() {
            let g = group_of(i);
            let access = registry.access_map(&repo, g).unwrap();
            let query = KeywordQuery::parse(q);
            let eager = search_filtered_with_cache(&repo, &index, &query, &access, &views_eager);
            let resolver = verify_cache.resolver(&registry, &repo, g).unwrap();
            let lazy = search_filtered_with_cache(&repo, &index, &query, &resolver, &views_lazy);
            assert_eq!(eager.len(), lazy.len(), "answer diverged on {q:?}");
            for (a, b) in eager.iter().zip(&lazy) {
                assert_eq!(a.spec, b.spec, "{q:?}");
                assert_eq!(a.prefix, b.prefix, "{q:?}");
                assert_eq!(a.matched, b.matched, "{q:?}");
            }
            let union = union_of(q);
            let resolved = resolver.resolved_specs();
            assert!(
                resolved.iter().all(|s| union.contains(&s.0)),
                "query {q:?} resolved specs outside its postings union"
            );
        }
    }

    let rules_lazy = access_cache.stats().misses();
    let rules_eager = (selective.len() * config.specs) as u64;
    let speedup = eager_us / lazy_us;

    // -- broad boundary pass: cold resolver per request ----------------------
    let broad_union_of = |q: &str| -> HashSet<u32> {
        KeywordQuery::parse(q)
            .terms
            .iter()
            .flat_map(|t| broad_index.lookup_query_term(t))
            .map(|p| p.spec.0)
            .collect()
    };
    let broad_avg_candidates: f64 = if broad.is_empty() {
        0.0
    } else {
        broad.iter().map(|q| broad_union_of(q).len() as f64).sum::<f64>() / broad.len() as f64
    };
    let (broad_eager_us, broad_lazy_us, broad_lazy_rules) = if broad.is_empty() {
        (0.0, 0.0, 0u64)
    } else {
        let views_warm = ViewCache::new(4096);
        for (i, q) in broad.iter().enumerate() {
            let access = registry.access_map(&broad_repo, group_of(i)).unwrap();
            let query = KeywordQuery::parse(q);
            search_filtered_with_cache(&broad_repo, &broad_index, &query, &access, &views_warm);
        }
        let t = Instant::now();
        for (i, q) in broad.iter().enumerate() {
            let access = registry.access_map(&broad_repo, group_of(i)).unwrap();
            let query = KeywordQuery::parse(q);
            search_filtered_with_cache(&broad_repo, &broad_index, &query, &access, &views_warm);
        }
        let be = t.elapsed().as_secs_f64() * 1e6;
        let mut rules = 0u64;
        let t = Instant::now();
        for (i, q) in broad.iter().enumerate() {
            // A fresh cache per request: no memo warmth, the worst case.
            let cold = AccessCache::new();
            let resolver = cold.resolver(&registry, &broad_repo, group_of(i)).unwrap();
            let query = KeywordQuery::parse(q);
            search_filtered_with_cache(&broad_repo, &broad_index, &query, &resolver, &views_warm);
            rules += cold.stats().misses();
        }
        let bl = t.elapsed().as_secs_f64() * 1e6;
        (be, bl, rules)
    };

    // -- warm engine pass: the resolver must be invisible when caches hit ----
    let engine = QueryEngine::new(e11_repo(&corpus), registry.clone());
    for (i, q) in selective.iter().enumerate() {
        engine.search_as(group_of(i), q).unwrap();
    }
    let cold_access = engine.stats().access;
    let t = Instant::now();
    for (i, q) in selective.iter().enumerate() {
        engine.search_as(group_of(i), q).unwrap();
    }
    let warm_us = t.elapsed().as_secs_f64() * 1e6;
    let warm_access = engine.stats().access;
    assert_eq!(
        (cold_access.hits, cold_access.misses),
        (warm_access.hits, warm_access.misses),
        "warm pass touched the access resolver — the cache probe must come first"
    );

    let per_q = |us: f64, n: usize| us / n.max(1) as f64;
    println!("\n{:>22} {:>12} {:>14} {:>12}", "pass", "µs/query", "rule res/query", "speedup");
    println!(
        "{:>22} {:>12.1} {:>14.1} {:>12}",
        "selective eager",
        per_q(eager_us, selective.len()),
        config.specs as f64,
        "1.0x"
    );
    println!(
        "{:>22} {:>12.1} {:>14.2} {:>11.1}x",
        "selective lazy",
        per_q(lazy_us, selective.len()),
        rules_lazy as f64 / selective.len() as f64,
        speedup
    );
    if !broad.is_empty() {
        println!(
            "{:>22} {:>12.1} {:>14.1} {:>12}",
            "broad eager",
            per_q(broad_eager_us, broad.len()),
            config.specs as f64,
            "1.0x"
        );
        println!(
            "{:>22} {:>12.1} {:>14.1} {:>11.1}x",
            "broad lazy (cold memo)",
            per_q(broad_lazy_us, broad.len()),
            broad_lazy_rules as f64 / broad.len() as f64,
            broad_eager_us / broad_lazy_us
        );
    }
    println!(
        "{:>22} {:>12.3} {:>14} {:>12}",
        "warm engine",
        per_q(warm_us, selective.len()),
        "0.00",
        "-"
    );
    println!(
        "\navg candidate specs/selective query: {avg_candidates:.2} of {} (selectivity {:.4})",
        config.specs,
        avg_candidates / config.specs as f64
    );
    if !broad.is_empty() {
        println!(
            "avg candidate specs/broad query:     {broad_avg_candidates:.2} of {} (selectivity {:.4})",
            config.specs,
            broad_avg_candidates / config.specs as f64
        );
    }

    let json = format!(
        r#"{{
  "experiment": "E12",
  "title": "Lazy per-candidate access resolution vs eager whole-corpus access maps",
  "seed": {seed},
  "corpus_specs": {specs},
  "registry_groups": {groups},
  "selective_queries": {nsel},
  "broad_queries": {nbroad},
  "avg_candidate_specs_per_selective_query": {avgc:.3},
  "selective": {{
    "eager_us_per_query": {eu:.3},
    "lazy_us_per_query": {lu:.3},
    "speedup_lazy_vs_eager": {sp:.3},
    "rule_resolutions_eager_total": {re},
    "rule_resolutions_lazy_total": {rl},
    "lazy_memo_hits_total": {mh}
  }},
  "broad_cold_memo": {{
    "eager_us_per_query": {beu:.3},
    "lazy_us_per_query": {blu:.3},
    "speedup_lazy_vs_eager": {bsp:.3},
    "rule_resolutions_lazy_per_query": {brl:.1},
    "avg_candidate_specs_per_query": {bavgc:.1},
    "note": "selectivity knob at its far end: small-vocabulary corpus, head-term queries, fresh resolver per request — candidates approach the corpus and cold lazy approaches eager; the surviving AccessCache amortizes this in production"
  }},
  "warm_engine_us_per_query": {wu:.4},
  "acceptance": {{
    "threshold_selective_speedup": {thr:.1},
    "warm_path_resolver_untouched": true,
    "answers_bit_identical": true,
    "resolutions_within_postings_union": true
  }}
}}
"#,
        seed = config.seed,
        specs = config.specs,
        groups = group_names.len(),
        nsel = selective.len(),
        nbroad = broad.len(),
        avgc = avg_candidates,
        eu = per_q(eager_us, selective.len()),
        lu = per_q(lazy_us, selective.len()),
        sp = speedup,
        re = rules_eager,
        rl = rules_lazy,
        mh = access_cache.stats().hits(),
        beu = per_q(broad_eager_us, broad.len()),
        blu = per_q(broad_lazy_us, broad.len()),
        bsp = if broad_lazy_us > 0.0 { broad_eager_us / broad_lazy_us } else { 0.0 },
        brl = if broad.is_empty() { 0.0 } else { broad_lazy_rules as f64 / broad.len() as f64 },
        bavgc = broad_avg_candidates,
        wu = per_q(warm_us, selective.len()),
        thr = config.min_speedup,
    );
    std::fs::write(&config.out, &json).expect("write baseline JSON");
    println!("\nbaseline written to {}", config.out);

    println!("selective cold-path speedup: {speedup:.2}x (threshold {:.1}x)", config.min_speedup);
    assert!(
        speedup >= config.min_speedup,
        "E12 acceptance: lazy resolution must be ≥{:.1}x eager on selective queries (got {speedup:.2}x)",
        config.min_speedup
    );
}
