//! E18 baseline emitter: pipelined WAL commit + copy-on-write chunked
//! snapshots — overlapping the covering fsync with the next batch's
//! apply, and snapshotting only what changed.
//!
//! ```bash
//! cargo run --release -p ppwf-bench --bin e18_pipelined_commit -- \
//!     [--out BENCH_e18_pipelined_commit.json] [--writes 384] [--seed 18] \
//!     [--window 32] [--max-batch 2] [--deep-batch 16] \
//!     [--min-pipelined-speedup 1.5] [--max-incremental-snapshot-ratio 0.5] \
//!     [--min-chunk-reuse-ratio 0.5]
//! ```
//!
//! Three measured sections:
//!
//! * **Pipelined vs grouped mixed stream.** The E17 mixed 1:2:1 stream
//!   (inserts, execution appends, policy swaps) runs through a
//!   [`ServeFront`] over real files ([`FsStorage`]) with `--window`
//!   requests in flight, once under `DurabilityPolicy::grouped` (the E17
//!   baseline) and once under `DurabilityPolicy::pipelined` — identical
//!   batching knobs, the only delta is the commit pipeline. The **gated**
//!   comparison runs at `--max-batch 2`, where per-batch fsync cost is on
//!   the order of per-batch apply cost — the regime pipelining targets
//!   (its theoretical ceiling is `(apply+fsync)/max(apply,fsync)`, maximal
//!   when the two are equal). Gates: wall-clock speedup ≥
//!   `--min-pipelined-speedup`, and structurally `overlapped_fsyncs > 0`
//!   (an fsync actually ran while the front applied the next batch) with
//!   `pipeline_depth_high_water ≥ 1`. The same pair at `--deep-batch`
//!   (default 16, E17's shipped cap) is measured and reported
//!   **unasserted**: there group commit has already amortized fsync to a
//!   sliver of the batch, and the overlap win shrinks toward 1× — the
//!   honest boundary, quantified. Every run must recover bit-identically
//!   to a sequential replay before its time is believed.
//! * **Crash matrix over in-flight frames.** A deterministic pipelined
//!   append trace on fault-injected [`MemStorage`]: power fails at every
//!   record boundary, at sampled interiors, and at **every byte of the
//!   final in-flight frame** (`gencrash` `exhaustive_tail_records`). At
//!   each offset, recovery must yield a batch-aligned prefix `n` with
//!   `acked ≤ n ≤ appended`, bit-identical to the sequential replay of
//!   those `n` mutations — every acknowledged write survives, nothing
//!   torn is resurrected, no batch recovers partially. (The matrix is the
//!   bench-side smoke of the exhaustive property suite in
//!   `recovery_equivalence.rs`.)
//! * **COW snapshot write volume.** A 128-spec corpus (8 content-addressed
//!   chunks of 16) takes cadence snapshots while mutations stay confined
//!   to chunk 0: the incremental chunked snapshot must write ≤
//!   `--max-incremental-snapshot-ratio` of the whole-image byte volume
//!   (gate, at 1/8 = 12.5% dirty chunks — inside the ≤25% acceptance
//!   envelope), and reuse ≥ `--min-chunk-reuse-ratio` of its chunks by
//!   reference (structural gate). Byte counts are exact, so this section
//!   runs on [`MemStorage`].
//!
//! **Honest boundaries.** Pipelining buys at most the smaller of apply
//! and fsync cost per batch: at deep batch caps (or on storage with
//! near-free fsync) the win decays toward 1×, and the deep-batch numbers
//! in the JSON show exactly that. Acknowledgement latency is unchanged —
//! a ticket still waits for its covering fsync; only the *fence* lifts
//! early, so reads admitted in the overlap window can observe
//! applied-but-not-yet-acknowledged state (losable suffix data, never
//! anything a client was told succeeded). COW chunking pays a chunk-index
//! probe and a per-chunk manifest entry on every snapshot; with every
//! chunk dirty it writes the whole image plus that overhead, and only
//! wins when mutations have locality. The binary exits non-zero when any
//! acceptance gate fails.

use ppwf_bench::standard_registry;
use ppwf_query::cluster::EngineCluster;
use ppwf_query::route::ShardStrategy;
use ppwf_query::serve::{QueryAnswer, ServeFront, ServeRequest, ServeStats};
use ppwf_repo::mutation::Mutation;
use ppwf_repo::pool::WorkerPool;
use ppwf_repo::repository::Repository;
use ppwf_repo::storage::{FaultPlan, FsStorage, MemStorage, StorageBackend};
use ppwf_repo::wal::{DurabilityPolicy, DurabilityStats, DurableLog};
use ppwf_workloads::gencrash::{crash_schedule, CrashScheduleParams};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct Config {
    out: String,
    writes: usize,
    seed: u64,
    window: usize,
    max_batch: usize,
    deep_batch: usize,
    min_pipelined_speedup: f64,
    max_incremental_snapshot_ratio: f64,
    min_chunk_reuse_ratio: f64,
}

fn parse_args() -> Config {
    let mut config = Config {
        out: "BENCH_e18_pipelined_commit.json".to_string(),
        writes: 384,
        seed: 18,
        window: 32,
        max_batch: 2,
        deep_batch: 16,
        min_pipelined_speedup: 1.5,
        max_incremental_snapshot_ratio: 0.5,
        min_chunk_reuse_ratio: 0.5,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need =
            |n: usize| args.get(n).unwrap_or_else(|| panic!("{} needs a value", args[n - 1]));
        match args[i].as_str() {
            "--out" => config.out = need(i + 1).clone(),
            "--writes" => config.writes = need(i + 1).parse().expect("bad write count"),
            "--seed" => config.seed = need(i + 1).parse().expect("bad seed"),
            "--window" => config.window = need(i + 1).parse().expect("bad window"),
            "--max-batch" => config.max_batch = need(i + 1).parse().expect("bad max batch"),
            "--deep-batch" => config.deep_batch = need(i + 1).parse().expect("bad deep batch"),
            "--min-pipelined-speedup" => {
                config.min_pipelined_speedup = need(i + 1).parse().expect("bad threshold")
            }
            "--max-incremental-snapshot-ratio" => {
                config.max_incremental_snapshot_ratio = need(i + 1).parse().expect("bad ratio")
            }
            "--min-chunk-reuse-ratio" => {
                config.min_chunk_reuse_ratio = need(i + 1).parse().expect("bad ratio")
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 2;
    }
    config
}

/// The E17 mixed 1:2:1 stream: spec inserts, execution appends (the
/// dominant write), and policy swaps, each built against evolving state.
fn standalone_stream(writes: usize, seed: u64) -> Vec<Mutation> {
    use ppwf_core::policy::Policy;
    use ppwf_model::exec::{Executor, HashOracle};
    use ppwf_repo::repository::SpecId;
    use ppwf_workloads::genspec::{generate_spec, SpecParams};
    let mut repo = Repository::new();
    let mut out = Vec::with_capacity(writes);
    for i in 0..writes as u64 {
        let kind = if repo.is_empty() || i % 4 == 0 {
            0
        } else if i % 4 == 3 {
            2
        } else {
            1
        };
        let mutation = match kind {
            0 => Mutation::InsertSpec {
                spec: generate_spec(&SpecParams { seed: seed ^ (i << 8), ..SpecParams::default() }),
                policy: Policy::public(),
            },
            1 => {
                let target = SpecId(((seed ^ i) % repo.len() as u64) as u32);
                let exec = Executor::new(&repo.entry(target).unwrap().spec)
                    .run(&mut HashOracle)
                    .expect("stored specs execute");
                Mutation::AddExecution { spec: target, exec }
            }
            _ => Mutation::SetPolicy {
                spec: SpecId(((seed ^ i) % repo.len() as u64) as u32),
                policy: Policy::public(),
            },
        };
        repo.apply(mutation.clone()).expect("generated mutation applies");
        out.push(mutation);
    }
    out
}

fn replay_prefix(stream: &[Mutation], n: usize) -> Repository {
    let mut repo = Repository::new();
    for mutation in &stream[..n] {
        repo.apply(mutation.clone()).expect("prefix replays");
    }
    repo
}

/// Open a durable cluster over a fresh [`FsStorage`] root and push the
/// stream through a [`ServeFront`] with up to `window` requests in
/// flight. Returns (elapsed µs, WAL stats, serve stats, final image).
fn front_mutation_pass(
    root: &Path,
    stream: &[Mutation],
    policy: DurabilityPolicy,
    window: usize,
) -> (f64, DurabilityStats, ServeStats, Vec<u8>) {
    let pool = Arc::new(WorkerPool::new(4));
    let backend: Arc<dyn StorageBackend> =
        Arc::new(FsStorage::open(root).expect("bench storage root"));
    let (cluster, _) = EngineCluster::open_durable(
        Arc::clone(&backend),
        policy,
        standard_registry(),
        2,
        ShardStrategy::RoundRobin,
        Arc::clone(&pool),
    )
    .expect("open durable cluster on fresh storage");
    let front = ServeFront::with_pool(cluster, Arc::clone(&pool));

    let t = Instant::now();
    let mut inflight = VecDeque::with_capacity(window);
    for mutation in stream {
        inflight.push_back(front.submit(ServeRequest::mutate(mutation.clone())));
        if inflight.len() >= window.max(1) {
            let response = inflight.pop_front().expect("non-empty window").wait();
            assert!(
                matches!(response.answer, QueryAnswer::Mutated(Ok(_))),
                "durable mutation refused on healthy storage"
            );
        }
    }
    for ticket in inflight {
        let response = ticket.wait();
        assert!(
            matches!(response.answer, QueryAnswer::Mutated(Ok(_))),
            "durable mutation refused on healthy storage"
        );
    }
    let us = t.elapsed().as_secs_f64() * 1e6;
    front.quiesce();
    front.with_cluster(|c| c.wait_for_pipeline());
    let stats = front.stats();
    let wal = stats.durability.expect("durable front reports WAL stats");
    // No time is believed over an unverified log: replaying the WAL this
    // pass wrote must rebuild the sequential reference exactly.
    let (recovered, recovery) =
        Repository::recover(backend.as_ref()).expect("recovery over healthy log");
    assert_eq!(recovery.last_seq, stream.len() as u64, "durable log missed mutations");
    (us, wal, stats, recovered.save().to_vec())
}

/// One grouped-vs-pipelined pair at a given batch cap, alternated minima
/// over `reps` passes. Returns (grouped µs, pipelined µs, pipelined WAL
/// stats from the fastest pipelined pass).
fn paired_pass(
    fs_root: &Path,
    stream: &[Mutation],
    reference_save: &[u8],
    window: usize,
    max_batch: usize,
    reps: usize,
    tag: &str,
) -> (f64, f64, DurabilityStats) {
    let grouped = DurabilityPolicy {
        snapshot_every: 0,
        segment_bytes: 1 << 20,
        ..DurabilityPolicy::grouped(max_batch, 0)
    };
    let pipelined = DurabilityPolicy {
        snapshot_every: 0,
        segment_bytes: 1 << 20,
        ..DurabilityPolicy::pipelined(max_batch, 0)
    };
    let (mut grp_us, mut pipe_us) = (f64::INFINITY, f64::INFINITY);
    let mut pipe_wal: Option<DurabilityStats> = None;
    for rep in 0..reps {
        let grp_root = fs_root.join(format!("{tag}-grp-{rep}"));
        let pipe_root = fs_root.join(format!("{tag}-pipe-{rep}"));
        let run_grp = || {
            let (us, wal, _, save) = front_mutation_pass(&grp_root, stream, grouped, window);
            assert_eq!(save, reference_save, "grouped front diverged from sequential replay");
            assert_eq!(wal.appends, stream.len() as u64);
            us
        };
        let run_pipe = || {
            let (us, wal, _, save) = front_mutation_pass(&pipe_root, stream, pipelined, window);
            assert_eq!(save, reference_save, "pipelined front diverged from sequential replay");
            assert_eq!(wal.appends, stream.len() as u64);
            (us, wal)
        };
        let (g, (p, wal)) = if rep % 2 == 0 {
            let g = run_grp();
            let p = run_pipe();
            (g, p)
        } else {
            let p = run_pipe();
            let g = run_grp();
            (g, p)
        };
        grp_us = grp_us.min(g);
        if p < pipe_us {
            pipe_us = p;
            pipe_wal = Some(wal);
        }
    }
    (grp_us, pipe_us, pipe_wal.expect("at least one rep"))
}

/// Drive `stream` through a pipelined log over `storage` in batches whose
/// lengths cycle through `run_lens`; a batch counts as *acknowledged*
/// only when its durability callback fires `Ok`. Returns
/// (acked, appended, per-batch byte deltas, batch sizes).
fn drive_pipelined(
    storage: &Arc<MemStorage>,
    pool: &Arc<WorkerPool>,
    stream: &[Mutation],
    run_lens: &[usize],
) -> (usize, usize, Vec<u64>, Vec<usize>) {
    let backend: Arc<dyn StorageBackend> = Arc::clone(storage) as Arc<dyn StorageBackend>;
    let policy = DurabilityPolicy {
        snapshot_every: 0,
        segment_bytes: u64::MAX,
        ..DurabilityPolicy::pipelined(8, 0)
    };
    let opened = DurableLog::open(backend, policy).expect("open on fresh storage");
    let mut log = opened.log;
    log.set_sync_pool(Arc::clone(pool));
    let acked = Arc::new(AtomicUsize::new(0));
    let mut appended = 0usize;
    let mut deltas = Vec::new();
    let mut batch_sizes = Vec::new();
    let mut start = 0;
    let mut run = 0;
    while start < stream.len() {
        let len = run_lens[run % run_lens.len()].clamp(1, stream.len() - start);
        run += 1;
        let before = storage.bytes_appended();
        let acked_cb = Arc::clone(&acked);
        let outcome = log.append_batch_pipelined(
            &stream[start..start + len],
            Box::new(move |verdict| {
                if verdict.is_ok() {
                    acked_cb.fetch_add(len, Ordering::SeqCst);
                }
            }),
        );
        if outcome.is_err() {
            break;
        }
        appended += len;
        deltas.push(storage.bytes_appended() - before);
        batch_sizes.push(len);
        start += len;
    }
    log.wait_for_pipeline();
    (acked.load(Ordering::SeqCst), appended, deltas, batch_sizes)
}

fn main() {
    let config = parse_args();
    println!("== E18: pipelined WAL commit + copy-on-write chunked snapshots ==");
    println!(
        "{} writes · window {} · balanced batch {} · deep batch {} · seed {}",
        config.writes, config.window, config.max_batch, config.deep_batch, config.seed
    );

    let stream = standalone_stream(config.writes, config.seed ^ 0xE18);
    let reference_save = replay_prefix(&stream, stream.len()).save().to_vec();
    let writes = stream.len() as f64;
    let fs_root = std::env::temp_dir().join(format!("ppwf-e18-{}", std::process::id()));

    // -- section A: pipelined vs grouped, mixed stream, real fsyncs ----------
    // Balanced regime (gated): per-batch fsync on the order of per-batch
    // apply — the regime the pipeline targets. Deep-batch regime
    // (reported, unasserted): group commit has already amortized the
    // fsync, so the residual win quantifies the honest boundary.
    const REPS: usize = 3;
    let (grp_us, pipe_us, pipe_wal) = paired_pass(
        &fs_root,
        &stream,
        &reference_save,
        config.window,
        config.max_batch,
        REPS,
        "bal",
    );
    let speedup = grp_us / pipe_us;
    let (deep_grp_us, deep_pipe_us, deep_wal) = paired_pass(
        &fs_root,
        &stream,
        &reference_save,
        config.window,
        config.deep_batch,
        REPS,
        "deep",
    );
    let deep_speedup = deep_grp_us / deep_pipe_us;
    println!("\n-- pipelined vs grouped ({} in flight, real fsync) --", config.window);
    println!(
        "balanced (max batch {}): grouped {:.1} µs/write · pipelined {:.1} µs/write · speedup {speedup:.2}x (gate ≥{:.1}x)",
        config.max_batch,
        grp_us / writes,
        pipe_us / writes,
        config.min_pipelined_speedup
    );
    println!(
        "  pipeline depth high-water {} · overlapped fsyncs {} · syncs {} (saved {})",
        pipe_wal.pipeline_depth_high_water,
        pipe_wal.overlapped_fsyncs,
        pipe_wal.syncs,
        pipe_wal.fsyncs_saved
    );
    println!(
        "deep batch (max batch {}): grouped {:.1} µs/write · pipelined {:.1} µs/write · speedup {deep_speedup:.2}x (unasserted — Amdahl residual)",
        config.deep_batch,
        deep_grp_us / writes,
        deep_pipe_us / writes
    );

    // -- section B: crash matrix over in-flight frames -----------------------
    let crash_stream = standalone_stream(14, config.seed ^ 0xC4A5);
    let run_lens = [3usize, 2, 4, 1];
    let crash_pool = Arc::new(WorkerPool::new(1));
    let trace = Arc::new(MemStorage::new());
    let (acked, appended, deltas, batch_sizes) =
        drive_pipelined(&trace, &crash_pool, &crash_stream, &run_lens);
    assert_eq!(acked, crash_stream.len(), "fault-free pipeline must ack everything");
    assert_eq!(appended, crash_stream.len());
    let mut aligned = vec![0usize];
    for &size in &batch_sizes {
        aligned.push(aligned.last().unwrap() + size);
    }
    let references: Vec<_> =
        aligned.iter().map(|&n| replay_prefix(&crash_stream, n).save()).collect();
    let schedule = crash_schedule(
        &deltas,
        &CrashScheduleParams {
            seed: config.seed,
            interior_per_record: 3,
            exhaustive_tail_records: 1,
            ..Default::default()
        },
    );
    for &offset in &schedule {
        let storage = Arc::new(MemStorage::with_faults(FaultPlan {
            crash_after_bytes: Some(offset),
            ..FaultPlan::default()
        }));
        let (acked, appended, _, _) =
            drive_pipelined(&storage, &crash_pool, &crash_stream, &run_lens);
        let reopened = storage.reopen();
        let (recovered, stats) = Repository::recover(&reopened)
            .unwrap_or_else(|e| panic!("crash at byte {offset}: recovery failed: {e}"));
        let n = stats.last_seq as usize;
        let at = aligned
            .iter()
            .position(|&a| a == n)
            .unwrap_or_else(|| panic!("crash at byte {offset}: {n} is not a batch boundary"));
        assert!(
            acked <= n && n <= appended,
            "crash at byte {offset}: recovered {n} outside acked {acked} ..= appended {appended}"
        );
        assert_eq!(
            recovered.save(),
            references[at],
            "crash at byte {offset}: recovered image diverges from its prefix"
        );
    }
    println!(
        "\n-- crash matrix: {} offsets (every byte of the final in-flight frame) — all recovered a batch-aligned acked prefix bit-identically --",
        schedule.len()
    );

    // -- section C: COW snapshot write volume --------------------------------
    // 128 inserts fill 8 chunks; 64 policy swaps confined to chunk 0 then
    // dirty 1 of 8 chunks (12.5%). Cadence 64 → snapshots at 64, 128, 192:
    // the third is the incremental one the gates hold against.
    let cow_stream = {
        use ppwf_core::policy::{AccessLevel, Policy};
        use ppwf_repo::repository::SpecId;
        use ppwf_workloads::genspec::{generate_spec, SpecParams};
        let mut out = Vec::with_capacity(192);
        for i in 0..128u64 {
            out.push(Mutation::InsertSpec {
                spec: generate_spec(&SpecParams {
                    seed: config.seed ^ (i << 8) ^ 0xC0,
                    ..SpecParams::default()
                }),
                policy: Policy::public(),
            });
        }
        for i in 0..64u64 {
            let mut p = Policy::public();
            p.protect_channel(format!("cow-{}", i % 5), AccessLevel(2));
            out.push(Mutation::SetPolicy { spec: SpecId((i % 16) as u32), policy: p });
        }
        out
    };
    let cow_storage = Arc::new(MemStorage::new());
    let cow_policy = DurabilityPolicy {
        fsync_each: true,
        background_snapshots: true,
        snapshot_every: 64,
        segment_bytes: u64::MAX,
        ..DurabilityPolicy::default()
    };
    let opened = DurableLog::open(Arc::clone(&cow_storage) as Arc<dyn StorageBackend>, cow_policy)
        .expect("open COW log on fresh storage");
    let mut log = opened.log;
    let mut repo = opened.repository;
    log.set_snapshot_pool(Arc::new(WorkerPool::new(1)));
    let mut at_second_snapshot: Option<DurabilityStats> = None;
    for (i, mutation) in cow_stream.iter().enumerate() {
        repo.check(mutation).expect("generated stream applies");
        log.append(mutation).expect("healthy storage");
        repo.apply(mutation.clone()).expect("checked mutation applies");
        log.snapshot_if_due(&repo);
        log.wait_for_background_snapshot();
        if i + 1 == 128 {
            at_second_snapshot = Some(log.stats());
        }
    }
    let cow_wal = log.stats();
    let s2 = at_second_snapshot.expect("second snapshot recorded");
    assert_eq!(cow_wal.snapshots, 3, "cadence 64 over 192 writes must snapshot 3 times");
    let incremental_bytes = cow_wal.snapshot_bytes_written - s2.snapshot_bytes_written;
    let written_delta = cow_wal.snapshot_chunks_written - s2.snapshot_chunks_written;
    let reused_delta = cow_wal.snapshot_chunks_reused - s2.snapshot_chunks_reused;
    let dirty_fraction = written_delta as f64 / (written_delta + reused_delta) as f64;
    let reuse_ratio = reused_delta as f64 / (written_delta + reused_delta) as f64;
    // The whole-image comparator: a v1 snapshot of the same final state.
    let whole_storage = Arc::new(MemStorage::new());
    let whole_opened = DurableLog::open(
        Arc::clone(&whole_storage) as Arc<dyn StorageBackend>,
        DurabilityPolicy { snapshot_every: 0, ..DurabilityPolicy::default() },
    )
    .expect("open comparator log");
    let mut whole_log = whole_opened.log;
    whole_log.snapshot_now(&repo).expect("whole-image snapshot");
    let whole_bytes = whole_log.stats().snapshot_bytes_written;
    let incremental_ratio = incremental_bytes as f64 / whole_bytes as f64;
    // Recovery over the chunked generations must still be bit-identical.
    let (recovered, rstats) = Repository::recover(&*cow_storage).expect("COW recovery");
    assert_eq!(rstats.last_seq, cow_stream.len() as u64);
    assert!(rstats.snapshot_seq > 0, "recovery must start from a chunked snapshot");
    assert_eq!(
        recovered.save(),
        replay_prefix(&cow_stream, cow_stream.len()).save(),
        "COW-snapshotted log diverges from sequential replay"
    );
    println!("\n-- COW snapshot write volume (8 chunks, churn confined to chunk 0) --");
    println!(
        "incremental snapshot: {incremental_bytes} bytes, {written_delta} chunks written, {reused_delta} reused (dirty fraction {dirty_fraction:.3})"
    );
    println!(
        "whole image: {whole_bytes} bytes → incremental ratio {incremental_ratio:.3} (gate ≤{:.2}) · reuse ratio {reuse_ratio:.3} (gate ≥{:.2})",
        config.max_incremental_snapshot_ratio, config.min_chunk_reuse_ratio
    );
    let _ = std::fs::remove_dir_all(&fs_root);

    let json = format!(
        r#"{{
  "experiment": "E18",
  "title": "Pipelined WAL commit + copy-on-write chunked snapshots",
  "seed": {seed},
  "writes": {writes_n},
  "window": {window},
  "balanced_max_batch": {mb},
  "deep_max_batch": {db},
  "pipelined_vs_grouped_balanced": {{
    "stream": "1:2:1 inserts, execution appends, policy swaps; per-batch fsync ~ per-batch apply (the regime pipelining targets)",
    "grouped_us_per_write": {gu:.2},
    "pipelined_us_per_write": {pu:.2},
    "pipelined_speedup": {sp:.3},
    "pipeline_depth_high_water": {dhw},
    "overlapped_fsyncs": {ovl},
    "pipelined_fsyncs": {pfs},
    "pipelined_fsyncs_saved": {pfsv},
    "final_state_bit_identical_to_sequential": true
  }},
  "pipelined_vs_grouped_deep_batch": {{
    "note": "unasserted Amdahl residual: at this cap group commit has already amortized fsync to a sliver of the batch, so the overlap win decays toward 1x",
    "grouped_us_per_write": {dgu:.2},
    "pipelined_us_per_write": {dpu:.2},
    "pipelined_speedup": {dsp:.3},
    "overlapped_fsyncs": {dovl},
    "final_state_bit_identical_to_sequential": true
  }},
  "crash_matrix": {{
    "offsets": {offsets},
    "schedule": "every record boundary, 3 sampled interiors per record, every byte of the final in-flight frame",
    "contract": "recovery = batch-aligned prefix n with acked <= n <= appended, bit-identical to sequential replay of n",
    "all_offsets_bit_identical": true
  }},
  "cow_snapshot": {{
    "chunks": 8,
    "dirty_fraction": {df:.3},
    "incremental_snapshot_bytes": {ib},
    "whole_image_bytes": {wb},
    "incremental_ratio": {ir:.3},
    "chunks_written": {cw},
    "chunks_reused": {crr},
    "chunk_reuse_ratio": {rr:.3},
    "recovery_bit_identical": true
  }},
  "acceptance": {{
    "min_pipelined_speedup": {mps:.2},
    "overlap_count_positive": true,
    "max_incremental_snapshot_ratio": {mis:.2},
    "min_chunk_reuse_ratio": {mcr:.2},
    "no_response_before_covering_fsync": true
  }},
  "note": "pipelining buys at most min(apply, fsync) per batch: the balanced regime is gated, the deep-batch regime quantifies the decay; acknowledgement latency is unchanged (a ticket still waits for its covering fsync) and reads admitted in the overlap window may observe applied-but-unacknowledged state; COW chunking pays a chunk-index probe and manifest entry per snapshot and wins only when mutations have locality"
}}
"#,
        seed = config.seed,
        writes_n = stream.len(),
        window = config.window,
        mb = config.max_batch,
        db = config.deep_batch,
        gu = grp_us / writes,
        pu = pipe_us / writes,
        sp = speedup,
        dhw = pipe_wal.pipeline_depth_high_water,
        ovl = pipe_wal.overlapped_fsyncs,
        pfs = pipe_wal.syncs,
        pfsv = pipe_wal.fsyncs_saved,
        dgu = deep_grp_us / writes,
        dpu = deep_pipe_us / writes,
        dsp = deep_speedup,
        dovl = deep_wal.overlapped_fsyncs,
        offsets = schedule.len(),
        df = dirty_fraction,
        ib = incremental_bytes,
        wb = whole_bytes,
        ir = incremental_ratio,
        cw = written_delta,
        crr = reused_delta,
        rr = reuse_ratio,
        mps = config.min_pipelined_speedup,
        mis = config.max_incremental_snapshot_ratio,
        mcr = config.min_chunk_reuse_ratio,
    );
    std::fs::write(&config.out, &json).expect("write baseline JSON");
    println!("\nbaseline written to {}", config.out);

    assert!(
        pipe_wal.overlapped_fsyncs > 0,
        "E18 acceptance: at least one covering fsync must overlap the next batch's apply (structural)"
    );
    assert!(
        pipe_wal.pipeline_depth_high_water >= 1,
        "E18 acceptance: pipelined frames must pass through the sync queue"
    );
    assert!(
        speedup >= config.min_pipelined_speedup,
        "E18 acceptance: pipelined commit must be ≥{:.2}x the grouped baseline on the mixed stream at {} in flight, balanced batching (got {speedup:.2}x)",
        config.min_pipelined_speedup,
        config.window
    );
    assert!(
        incremental_ratio <= config.max_incremental_snapshot_ratio,
        "E18 acceptance: the incremental chunked snapshot must write ≤{:.2}x of the whole image at {:.1}% dirty chunks (got {incremental_ratio:.3})",
        config.max_incremental_snapshot_ratio,
        dirty_fraction * 100.0
    );
    assert!(
        reuse_ratio >= config.min_chunk_reuse_ratio,
        "E18 acceptance: ≥{:.2} of chunks must be reused by reference (structural, got {reuse_ratio:.3})",
        config.min_chunk_reuse_ratio
    );
}
