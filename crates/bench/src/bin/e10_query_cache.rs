//! E10 baseline emitter: runs the cached-vs-uncached query-serving
//! experiment and writes a machine-readable JSON record.
//!
//! ```bash
//! cargo run --release -p ppwf-bench --bin e10_query_cache -- \
//!     [--out BENCH_e10_query_cache.json] [--specs 8,16,32] [--reps 50]
//! ```
//!
//! Per repository size, three serving plans run the same
//! `groups × queries × reps` request stream:
//!
//! * `uncached` — access-map resolution + filtered search + per-hit view
//!   construction on every request (no cache anywhere);
//! * `view_cache` — search work repeated per request, answer views fetched
//!   from the shared `(spec, prefix)` memo;
//! * `warm_engine` — the full engine: group-keyed result cache in front,
//!   view cache behind it.
//!
//! The JSON carries per-plan µs/query, speedups against `uncached`, the
//! private-search (filter plan) pair, and the engine's cache counters, so
//! regressions in any layer of the fast path show up as a diff against the
//! committed baseline.

use ppwf_bench::{populated_repo, query_engine, standard_registry, E10_GROUPS, E10_QUERIES};
use ppwf_query::engine::Plan;
use ppwf_query::keyword::{search_filtered, search_filtered_with_cache, KeywordQuery};
use ppwf_query::privacy_exec::filter_then_search;
use ppwf_repo::keyword_index::KeywordIndex;
use ppwf_repo::view_cache::ViewCache;
use std::time::Instant;

const SEED: u64 = 91;

struct Config {
    out: String,
    specs: Vec<usize>,
    reps: usize,
}

fn parse_args() -> Config {
    let mut config =
        Config { out: "BENCH_e10_query_cache.json".to_string(), specs: vec![8, 16, 32], reps: 50 };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                config.out = args.get(i + 1).expect("--out needs a path").clone();
                i += 2;
            }
            "--specs" => {
                config.specs = args
                    .get(i + 1)
                    .expect("--specs needs a comma-separated list")
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad spec count"))
                    .collect();
                i += 2;
            }
            "--reps" => {
                config.reps =
                    args.get(i + 1).expect("--reps needs a count").parse().expect("bad rep count");
                i += 2;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    config
}

/// One measured serving plan: total requests and µs per request.
struct PlanResult {
    us_per_query: f64,
    hits_served: usize,
}

fn per_query_us(total_us: f64, requests: usize) -> f64 {
    total_us / requests as f64
}

fn main() {
    let config = parse_args();
    let mut sections = Vec::new();
    let mut min_keyword_speedup = f64::INFINITY;
    let mut min_private_speedup = f64::INFINITY;

    println!("== E10: query fast path — cached vs uncached serving ==");
    println!(
        "{:>6} {:>6} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "specs", "reqs", "uncached µs/q", "viewcache µs/q", "warm µs/q", "view ×", "warm ×"
    );

    for &specs in &config.specs {
        let repo = populated_repo(specs, 0, SEED);
        let index = KeywordIndex::build(&repo);
        let registry = standard_registry();
        let queries: Vec<KeywordQuery> =
            E10_QUERIES.iter().map(|q| KeywordQuery::parse(q)).collect();
        let requests = config.reps * E10_GROUPS.len() * queries.len();

        // Plan 1: no caching anywhere.
        let t = Instant::now();
        let mut uncached_hits = 0usize;
        for _ in 0..config.reps {
            for g in E10_GROUPS {
                let access = registry.access_map(&repo, g).unwrap();
                for q in &queries {
                    uncached_hits += search_filtered(&repo, &index, q, &access).len();
                }
            }
        }
        let uncached = PlanResult {
            us_per_query: per_query_us(t.elapsed().as_secs_f64() * 1e6, requests),
            hits_served: uncached_hits,
        };

        // Plan 2: only the view memo.
        let views = ViewCache::new(1024);
        let t = Instant::now();
        let mut view_hits = 0usize;
        for _ in 0..config.reps {
            for g in E10_GROUPS {
                let access = registry.access_map(&repo, g).unwrap();
                for q in &queries {
                    view_hits +=
                        search_filtered_with_cache(&repo, &index, q, &access, &views).len();
                }
            }
        }
        let view_cache = PlanResult {
            us_per_query: per_query_us(t.elapsed().as_secs_f64() * 1e6, requests),
            hits_served: view_hits,
        };

        // Plan 3: the full engine, result cache warm.
        let engine = query_engine(specs, 0, SEED);
        for g in E10_GROUPS {
            for q in E10_QUERIES {
                engine.search_as(g, q).unwrap();
                engine.private_search_as(g, q, Plan::FilterThenSearch).unwrap();
            }
        }
        let t = Instant::now();
        let mut warm_hits = 0usize;
        for _ in 0..config.reps {
            for g in E10_GROUPS {
                for q in E10_QUERIES {
                    warm_hits += engine.search_as(g, q).unwrap().len();
                }
            }
        }
        let warm_engine = PlanResult {
            us_per_query: per_query_us(t.elapsed().as_secs_f64() * 1e6, requests),
            hits_served: warm_hits,
        };

        assert_eq!(uncached.hits_served, view_cache.hits_served, "view cache changed answers");
        assert_eq!(uncached.hits_served, warm_engine.hits_served, "result cache changed answers");

        // Private-search pair (filter plan), uncached vs warm engine.
        let t = Instant::now();
        for _ in 0..config.reps {
            for g in E10_GROUPS {
                let access = registry.access_map(&repo, g).unwrap();
                for q in &queries {
                    std::hint::black_box(filter_then_search(&repo, &index, q, &access));
                }
            }
        }
        let private_uncached_us = per_query_us(t.elapsed().as_secs_f64() * 1e6, requests);
        let t = Instant::now();
        for _ in 0..config.reps {
            for g in E10_GROUPS {
                for q in E10_QUERIES {
                    std::hint::black_box(
                        engine.private_search_as(g, q, Plan::FilterThenSearch).unwrap(),
                    );
                }
            }
        }
        let private_warm_us = per_query_us(t.elapsed().as_secs_f64() * 1e6, requests);

        let view_speedup = uncached.us_per_query / view_cache.us_per_query;
        let warm_speedup = uncached.us_per_query / warm_engine.us_per_query;
        let private_speedup = private_uncached_us / private_warm_us;
        min_keyword_speedup = min_keyword_speedup.min(warm_speedup);
        min_private_speedup = min_private_speedup.min(private_speedup);

        let stats = engine.stats();
        println!(
            "{:>6} {:>6} {:>14.2} {:>14.2} {:>14.2} {:>9.1}x {:>9.1}x",
            specs,
            requests,
            uncached.us_per_query,
            view_cache.us_per_query,
            warm_engine.us_per_query,
            view_speedup,
            warm_speedup
        );

        sections.push(format!(
            r#"    {{
      "specs": {specs},
      "groups": {groups},
      "queries": {queries},
      "repetitions": {reps},
      "requests": {requests},
      "keyword": {{
        "uncached_us_per_query": {unc:.3},
        "view_cache_us_per_query": {vc:.3},
        "warm_engine_us_per_query": {we:.3},
        "view_cache_speedup": {vs:.2},
        "warm_engine_speedup": {ws:.2},
        "hits_served_per_pass": {hits}
      }},
      "private_filter_plan": {{
        "uncached_us_per_query": {punc:.3},
        "warm_engine_us_per_query": {pwe:.3},
        "warm_engine_speedup": {ps:.2}
      }},
      "engine_cache_stats": {{
        "view_hits": {vh}, "view_misses": {vm},
        "keyword_hits": {kh}, "keyword_misses": {km},
        "private_hits": {ph}, "private_misses": {pm},
        "keyword_hit_rate": {khr:.4}
      }}
    }}"#,
            specs = specs,
            groups = E10_GROUPS.len(),
            queries = queries.len(),
            reps = config.reps,
            requests = requests,
            unc = uncached.us_per_query,
            vc = view_cache.us_per_query,
            we = warm_engine.us_per_query,
            vs = view_speedup,
            ws = warm_speedup,
            hits = uncached.hits_served / config.reps,
            punc = private_uncached_us,
            pwe = private_warm_us,
            ps = private_speedup,
            vh = stats.views.hits,
            vm = stats.views.misses,
            kh = stats.keyword.hits,
            km = stats.keyword.misses,
            ph = stats.private.hits,
            pm = stats.private.misses,
            khr = stats.keyword.hit_rate(),
        ));
    }

    let json = format!(
        r#"{{
  "experiment": "E10",
  "title": "Query fast path: per-user-group result cache + (spec, prefix) view cache vs uncached serving",
  "seed": {SEED},
  "query_mix": [{}],
  "groups": [{}],
  "configs": [
{}
  ],
  "aggregate": {{
    "min_warm_keyword_speedup": {:.2},
    "min_warm_private_speedup": {:.2},
    "acceptance_threshold_speedup": 5.0
  }}
}}
"#,
        E10_QUERIES.iter().map(|q| format!("{q:?}")).collect::<Vec<_>>().join(", "),
        E10_GROUPS.iter().map(|g| format!("{g:?}")).collect::<Vec<_>>().join(", "),
        sections.join(",\n"),
        min_keyword_speedup,
        min_private_speedup,
    );

    std::fs::write(&config.out, &json).expect("write baseline JSON");
    println!("\nminimum warm-engine speedup: keyword {min_keyword_speedup:.1}x, private {min_private_speedup:.1}x");
    println!("baseline written to {}", config.out);
    assert!(
        min_keyword_speedup >= 5.0 && min_private_speedup >= 5.0,
        "E10 acceptance: warm cache must be ≥5x the uncached path"
    );
}
