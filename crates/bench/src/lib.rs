//! # ppwf-bench — shared workload setup for the experiment harnesses
//!
//! Every experiment (Criterion bench or the `experiments` table binary)
//! builds its inputs through these helpers so the measured configurations
//! are identical across harnesses and documented in one place. The
//! experiment ids (E1–E9) and their mapping to paper claims live in
//! DESIGN.md §3; EXPERIMENTS.md records the measured outcomes.

use ppwf_core::policy::{AccessLevel, Policy};
use ppwf_model::graph::DiGraph;
use ppwf_model::spec::Specification;
use ppwf_query::engine::QueryEngine;
use ppwf_repo::principals::{PrincipalRegistry, ViewRule};
use ppwf_repo::repository::Repository;
use ppwf_views::clustering::Clustering;
use ppwf_workloads::genexec::generate_executions;
use ppwf_workloads::genspec::{generate_spec, SpecParams};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Spec-size sweep points used by E1/E4/E5/E9 (approximate module counts).
pub const SIZES: [usize; 4] = [25, 50, 100, 200];

/// A specification of roughly `n` modules with deterministic seed.
pub fn sized_spec(seed: u64, n: usize) -> Specification {
    generate_spec(&SpecParams::sized(seed, n))
}

/// A specification shaped for deep hierarchies (E1's depth sweep).
pub fn deep_spec(seed: u64, depth: u32) -> Specification {
    generate_spec(&SpecParams {
        seed,
        modules_per_workflow: (3, 5),
        composite_fraction: 0.5,
        max_depth: depth,
        max_workflows: (depth as usize + 1) * 4,
        ..SpecParams::default()
    })
}

/// A repository with `specs` synthetic specifications and `execs` runs each.
pub fn populated_repo(specs: usize, execs: usize, seed: u64) -> Repository {
    let mut repo = Repository::new();
    for i in 0..specs as u64 {
        let spec = generate_spec(&SpecParams { seed: seed + i, ..SpecParams::default() });
        let runs = generate_executions(&spec, execs, seed + i);
        let id = repo.insert_spec(spec, Policy::public()).expect("generated spec valid");
        for r in runs {
            repo.add_execution(id, r).expect("generated exec valid");
        }
    }
    repo
}

/// The three-group registry every cache experiment serves: `public` sees
/// roots only, `analysts` one hierarchy level, `researchers` everything.
/// Three groups × one repository is the paper's "one store, many privilege
/// levels" setting in miniature.
pub fn standard_registry() -> PrincipalRegistry {
    let mut registry = PrincipalRegistry::new();
    registry.add_group("public", AccessLevel(0), ViewRule::RootOnly);
    registry.add_group("analysts", AccessLevel(2), ViewRule::MaxDepth(1));
    registry.add_group("researchers", AccessLevel(4), ViewRule::Full);
    registry
}

/// Group names of [`standard_registry`], in registration order.
pub const E10_GROUPS: [&str; 3] = ["public", "analysts", "researchers"];

/// The E10 query mix over the synthetic Zipf vocabulary (`kw0` most
/// common). Mixed arities exercise both the single-posting and the
/// minimal-cover paths.
pub const E10_QUERIES: [&str; 5] = ["kw0, kw1", "kw1", "kw2", "kw0, kw3", "kw1, kw2"];

/// A warm-capable query engine over [`populated_repo`] and
/// [`standard_registry`].
pub fn query_engine(specs: usize, execs: usize, seed: u64) -> QueryEngine {
    QueryEngine::new(populated_repo(specs, execs, seed), standard_registry())
}

/// The E11 corpus shape: many small specifications over a large keyword
/// vocabulary. Small specs keep per-hit view construction cheap, so the
/// per-request cost a server cannot avoid — resolving the group's access
/// views across the corpus — dominates; the large vocabulary gives the
/// Zipf annotation tail enough mass that realistic queries are *shard
/// selective*, which is what the cluster's index-gated scatter exploits.
pub fn e11_spec_params(seed: u64) -> ppwf_workloads::SpecParams {
    ppwf_workloads::SpecParams {
        seed,
        modules_per_workflow: (3, 4),
        max_workflows: 6,
        max_depth: 2,
        vocabulary: 16384,
        keywords_per_module: 2,
        // Mild skew: a broad selective vocabulary (most terms live in a
        // handful of specs) rather than a few corpus-wide head terms. Term
        // selectivity is the variable scatter pruning trades on; the E11
        // writeup documents how the gain degrades as skew concentrates.
        zipf_skew: 0.7,
        ..ppwf_workloads::SpecParams::default()
    }
}

/// The E11 corpus as raw specifications (the query-log generator samples
/// terms from these) with deterministic per-spec seeds.
pub fn e11_corpus(specs: usize, seed: u64) -> Vec<ppwf_model::spec::Specification> {
    (0..specs as u64).map(|i| ppwf_workloads::generate_spec(&e11_spec_params(seed + i))).collect()
}

/// The E11 corpus loaded into one repository (the single-engine baseline
/// and the cluster partition both start from this).
pub fn e11_repo(corpus: &[ppwf_model::spec::Specification]) -> Repository {
    let mut repo = Repository::new();
    for spec in corpus {
        repo.insert_spec(spec.clone(), Policy::public()).expect("generated spec valid");
    }
    repo
}

/// The E11 query log over a corpus: mixed arity, co-occurring and cross
/// term pairs, corpus-Zipf term popularity, all query strings distinct (so
/// one pass over the log measures the uncached path end to end).
pub fn e11_query_log(
    corpus: &[ppwf_model::spec::Specification],
    count: usize,
    seed: u64,
) -> Vec<String> {
    ppwf_workloads::generate_query_log(
        corpus,
        &ppwf_workloads::QueryLogParams {
            seed,
            count,
            two_term_fraction: 0.6,
            same_module_fraction: 0.5,
            // Flatter-than-content query popularity: the selective tail
            // carries real traffic, as in production search logs.
            flatten_popularity: 1.0,
            distinct: true,
        },
    )
}

/// The E16 query log: multi-term AND queries only (`two_term_fraction:
/// 1.0`), the cold-kernel target shape — each query's answer is the
/// *intersection* of its terms' candidate specs, usually far smaller than
/// either term's postings, so intersection-first evaluation has real
/// work to skip. Distinct strings keep one pass fully cold.
pub fn e16_query_log(
    corpus: &[ppwf_model::spec::Specification],
    count: usize,
    seed: u64,
) -> Vec<String> {
    ppwf_workloads::generate_query_log(
        corpus,
        &ppwf_workloads::QueryLogParams {
            seed,
            count,
            two_term_fraction: 1.0,
            same_module_fraction: 0.5,
            flatten_popularity: 1.0,
            distinct: true,
        },
    )
}

/// The E12 registry: the three standard groups plus `extra` tiers with
/// varied default rules and a sprinkle of per-spec overrides. "Large
/// registry" here means *many groups over a large corpus* — the eager plan
/// resolves one group's rules across the whole corpus per cold query, so
/// its cost scales with corpus size regardless of group count, while the
/// lazy resolver's per-group memos make the group dimension a working-set
/// question instead.
pub fn e12_registry(extra: usize, specs: usize) -> (PrincipalRegistry, Vec<String>) {
    let mut registry = standard_registry();
    let mut names: Vec<String> = E10_GROUPS.iter().map(|g| g.to_string()).collect();
    for i in 0..extra {
        let name = format!("tier{i}");
        let rule = match i % 3 {
            0 => ViewRule::MaxDepth((i % 4) as u32),
            1 => ViewRule::RootOnly,
            _ => ViewRule::Full,
        };
        let g = registry.add_group(name.clone(), AccessLevel((i % 5) as u8), rule);
        // A few per-spec overrides, spread across the corpus, so lazy
        // resolution must consult override tables, not just default rules.
        if specs > 0 {
            for k in 0..3usize {
                let sid = ((i * 37 + k * 101) % specs) as u32;
                registry.set_override(g, ppwf_repo::repository::SpecId(sid), ViewRule::MaxDepth(1));
            }
        }
        names.push(name);
    }
    (registry, names)
}

/// The E12 *boundary* corpus: the E11 shape with the vocabulary shrunk to
/// a few dozen terms, so head terms annotate a large fraction of all
/// specs. Queries over it have candidate postings ≈ corpus — the
/// selectivity knob's far end, where a cold lazy resolver must resolve
/// (nearly) everything and degenerates toward the eager plan by design.
pub fn e12_broad_corpus(specs: usize, seed: u64) -> Vec<ppwf_model::spec::Specification> {
    (0..specs as u64)
        .map(|i| {
            ppwf_workloads::generate_spec(&ppwf_workloads::SpecParams {
                vocabulary: 48,
                zipf_skew: 0.9,
                ..e11_spec_params(seed + i)
            })
        })
        .collect()
}

/// The E12 *broad* query log: head-heavy single-term queries (popularity
/// mirrors the content Zipf). Over [`e12_broad_corpus`] the candidate
/// postings approach the corpus — the honest boundary where a cold lazy
/// resolver approaches the eager plan's cost because it really must
/// resolve (nearly) everything.
pub fn e12_broad_query_log(
    corpus: &[ppwf_model::spec::Specification],
    count: usize,
    seed: u64,
) -> Vec<String> {
    ppwf_workloads::generate_query_log(
        corpus,
        &ppwf_workloads::QueryLogParams {
            seed,
            count,
            two_term_fraction: 0.0,
            same_module_fraction: 0.0,
            flatten_popularity: 0.0,
            distinct: true,
        },
    )
}

/// The E13 mixed write stream over an E11-shaped corpus: `exec_pct`% of
/// writes append an execution to a random base spec (the paper's dominant
/// write — provenance accruing over repeated executions), `policy_pct`%
/// swap a random base spec's policy, and the remainder insert fresh
/// specs of the same shape. Targets stay within the base corpus so the
/// stream can be replayed against any starting copy of it; executions are
/// generated up front, outside any timed region.
pub fn e13_write_stream(
    corpus: &[ppwf_model::spec::Specification],
    writes: usize,
    exec_pct: u32,
    policy_pct: u32,
    seed: u64,
) -> Vec<ppwf_repo::mutation::Mutation> {
    use ppwf_repo::mutation::Mutation;
    use ppwf_repo::repository::SpecId;
    assert!(exec_pct + policy_pct <= 100, "write mix percentages exceed 100");
    assert!(!corpus.is_empty(), "write stream needs a base corpus");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..writes)
        .map(|w| {
            let roll = rng.gen_range(0..100u32);
            let target = SpecId(rng.gen_range(0..corpus.len() as u32));
            if roll < exec_pct {
                let exec =
                    generate_executions(&corpus[target.index()], 1, seed ^ ((w as u64) << 8))
                        .pop()
                        .expect("one execution generated");
                Mutation::AddExecution { spec: target, exec }
            } else if roll < exec_pct + policy_pct {
                Mutation::SetPolicy { spec: target, policy: Policy::public() }
            } else {
                Mutation::InsertSpec {
                    spec: ppwf_workloads::generate_spec(&e11_spec_params(
                        seed ^ 0xE13 ^ ((w as u64) << 16),
                    )),
                    policy: Policy::public(),
                }
            }
        })
        .collect()
}

/// The E19 destructive write stream: `delete_pct`% spec deletes,
/// `edit_pct`% in-place text edits, the remainder fresh spec inserts,
/// generated against an *evolving* scratch copy seeded from
/// `corpus` — destructive targets must be drawn from the live slots the
/// stream itself leaves behind, so (unlike [`e13_write_stream`]) the
/// stream is replayable only against a starting copy of the same base
/// corpus. Target selection and degenerate cases (no live spec, no
/// editable module) follow [`ppwf_workloads::genmutation`].
pub fn e19_write_stream(
    corpus: &[ppwf_model::spec::Specification],
    writes: usize,
    delete_pct: u32,
    edit_pct: u32,
    seed: u64,
) -> Vec<ppwf_repo::mutation::Mutation> {
    assert!(delete_pct + edit_pct <= 100, "write mix percentages exceed 100");
    let mut scratch = e11_repo(corpus);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..writes)
        .map(|w| {
            let roll = rng.gen_range(0..100u32);
            let kind = if roll < delete_pct {
                3
            } else if roll < delete_pct + edit_pct {
                4
            } else {
                0
            };
            let mutation =
                ppwf_workloads::genmutation::mutation_of(kind, rng.next_u64(), w as u64, &scratch);
            scratch.apply(mutation.clone()).expect("generated mutation applies");
            mutation
        })
        .collect()
}

/// The E14 request stream: a warm-heavy serving mix scheduled over the
/// standard three groups. `distinct` controls the working set (the log
/// cycles, so a server's caches see production-like repetition);
/// `write_every` turns every n-th slot into a write marker the driver
/// fills from [`e13_write_stream`]. Closed-loop lanes carry the requested
/// `concurrency`.
pub fn e14_schedule(
    corpus: &[ppwf_model::spec::Specification],
    requests: usize,
    distinct: usize,
    concurrency: usize,
    write_every: usize,
    seed: u64,
) -> Vec<ppwf_workloads::ScheduledRequest> {
    let log = e11_query_log(corpus, distinct, seed ^ 0x5EED);
    assert!(!log.is_empty(), "E14 needs a nonempty query pool");
    ppwf_workloads::schedule_requests(
        &log,
        &ppwf_workloads::ScheduleParams {
            seed: seed ^ 0xE14,
            requests,
            groups: E10_GROUPS.len(),
            write_every,
            arrival: ppwf_workloads::ArrivalSchedule::ClosedLoop { clients: concurrency },
        },
    )
}

/// A random layered DAG with `n` nodes and edge probability `p` (%), plus
/// unit-ish random edge weights — the flat-graph substrate for E3/E4.
pub fn layered_dag(seed: u64, n: usize, p_percent: u32) -> (DiGraph<u32, ()>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g: DiGraph<u32, ()> = DiGraph::new();
    for i in 0..n as u32 {
        g.add_node(i);
    }
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            if rng.gen_range(0..100) < p_percent {
                g.add_edge(i, j, ());
            }
        }
    }
    // Ensure a spine so the graph is connected enough to be interesting.
    for i in 1..n as u32 {
        if g.in_degree(i) == 0 {
            g.add_edge(i - 1, i, ());
        }
    }
    let weights: Vec<u64> = (0..g.edge_count()).map(|_| rng.gen_range(1..=5)).collect();
    (g, weights)
}

/// Parallel pipelines: `chains` independent chains of length `len`, plus a
/// few forward cross links (`cross_percent`% of possible stage crossings),
/// clustered so that every *odd* stage is merged into one composite across
/// all chains while even-stage nodes stay singletons.
///
/// This is the paper's `{M11, M13}` example generalized: a merged stage
/// mixes otherwise-independent pipelines, so the view claims paths from a
/// chain-`c` singleton through the composite into a different chain —
/// false paths in abundance, making the clustering reliably unsound and a
/// real workout for detection and repair (E4).
pub fn parallel_chains(
    seed: u64,
    chains: usize,
    len: usize,
    cross_percent: u32,
) -> (DiGraph<u32, ()>, Clustering) {
    assert!(chains >= 2 && len >= 3, "need parallelism and a middle stage");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g: DiGraph<u32, ()> = DiGraph::new();
    let node = |c: usize, s: usize| (c * len + s) as u32;
    for i in 0..(chains * len) as u32 {
        g.add_node(i);
    }
    for c in 0..chains {
        for s in 0..len - 1 {
            g.add_edge(node(c, s), node(c, s + 1), ());
        }
    }
    for c in 0..chains {
        for c2 in 0..chains {
            for s in 0..len - 1 {
                if c != c2 && rng.gen_range(0..100) < cross_percent {
                    g.add_edge(node(c, s), node(c2, s + 1), ());
                }
            }
        }
    }
    // Merge odd stages across chains; even-stage nodes stay singletons.
    let groups: Vec<Vec<u32>> = (0..len)
        .filter(|s| s % 2 == 1)
        .map(|s| (0..chains).map(|c| node(c, s)).collect())
        .collect();
    (g, Clustering::from_groups(chains * len, &groups))
}

/// A reachable `(u, v)` pair of the graph, far apart when possible.
pub fn reachable_pair(g: &DiGraph<u32, ()>) -> Option<(u32, u32)> {
    let n = g.node_count() as u32;
    let mut best: Option<(u32, u32, usize)> = None;
    for u in 0..n.min(16) {
        let r = g.reachable_from(u);
        for v in r.iter() {
            if v as u32 != u {
                let dist = v.saturating_sub(u as usize);
                if best.map(|(_, _, d)| dist > d).unwrap_or(true) {
                    best = Some((u, v as u32, dist));
                }
            }
        }
    }
    best.map(|(u, v, _)| (u, v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_specs_scale() {
        let a = sized_spec(1, SIZES[0]);
        let b = sized_spec(1, SIZES[3]);
        assert!(b.module_count() > a.module_count());
    }

    #[test]
    fn deep_specs_deepen() {
        use ppwf_model::hierarchy::ExpansionHierarchy;
        let shallow = ExpansionHierarchy::of(&deep_spec(3, 1)).max_depth();
        let deep = ExpansionHierarchy::of(&deep_spec(3, 4)).max_depth();
        assert!(deep >= shallow);
    }

    #[test]
    fn repo_populates() {
        let repo = populated_repo(3, 2, 9);
        assert_eq!(repo.len(), 3);
        assert_eq!(repo.execution_count(), 6);
    }

    #[test]
    fn stage_clustering_is_unsound() {
        use ppwf_views::soundness::check_soundness;
        let (g, c) = parallel_chains(7, 3, 5, 5);
        assert!(g.is_dag());
        let report = check_soundness(&g, &c);
        assert!(!report.sound, "stage clustering over parallel chains must mislead");
    }

    #[test]
    fn dag_and_pair() {
        let (g, w) = layered_dag(5, 30, 20);
        assert!(g.is_dag());
        assert_eq!(w.len(), g.edge_count());
        let (u, v) = reachable_pair(&g).expect("connected enough");
        assert!(g.reaches(u, v));
    }
}
