//! Property tests for the privacy layer: masking totality and idempotence,
//! Γ-privacy monotonicity in the hidden set, structural-privacy guarantees
//! over random graphs, and Laplace symmetry.

use ppwf_core::data_privacy::{audit_masking, masked_clone};
use ppwf_core::dp::LaplaceMechanism;
use ppwf_core::module_privacy::Relation;
use ppwf_core::policy::{AccessLevel, Policy};
use ppwf_core::structural::{hide_by_clustering, hide_by_deletion, HideRequest};
use ppwf_model::bitset::BitSet;
use ppwf_model::exec::{Executor, HashOracle};
use ppwf_model::graph::DiGraph;
use ppwf_model::spec::SpecBuilder;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Γ-privacy is monotone: hiding more attributes never lowers the
    /// candidate count.
    #[test]
    fn gamma_monotone_in_hiding(seed in any::<u64>(), grow in 0usize..4) {
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let table: Vec<(u16, u16)> = (0..4).map(|_| ((next() % 2) as u16, (next() % 2) as u16)).collect();
        let mut k = 0usize;
        let rel = Relation::from_fn("rnd", &[2, 2], &[2, 2], move |_| {
            let row = table[k % 4];
            k += 1;
            vec![row.0, row.1]
        });
        // Random nested visible sets V2 ⊆ V1.
        let mut v1 = BitSet::full(4);
        let mut v2 = BitSet::full(4);
        for a in 0..4usize {
            if next() % 2 == 0 {
                v1.remove(a);
                v2.remove(a);
            }
        }
        for _ in 0..grow {
            let a = (next() % 4) as usize;
            v2.remove(a); // v2 hides at least as much as v1
        }
        prop_assert!(v2.is_subset_of(&v1));
        prop_assert!(
            rel.min_possible_outputs(&v2) >= rel.min_possible_outputs(&v1),
            "hiding more lowered privacy"
        );
    }

    /// Masking is total and idempotent on arbitrary linear pipelines with
    /// arbitrary channel protections.
    #[test]
    fn masking_total_and_idempotent(
        n in 1usize..6,
        protected in proptest::collection::vec(any::<bool>(), 8),
        level in 0u8..3,
    ) {
        let mut b = SpecBuilder::new("mask");
        let w = b.root_workflow("W1");
        let mut prev = b.input(w);
        for i in 0..n {
            let m = b.atomic(w, &format!("A{i}"), &[]);
            b.edge(w, prev, m, &[&format!("c{i}")]);
            prev = m;
        }
        b.edge(w, prev, b.output(w), &["out"]);
        let spec = b.build().unwrap();
        let exec = Executor::new(&spec).run(&mut HashOracle).unwrap();
        let mut policy = Policy::public();
        for (i, &p) in protected.iter().enumerate() {
            if p {
                policy.protect_channel(format!("c{i}"), AccessLevel(2));
            }
        }
        let (masked, report) = masked_clone(&exec, &policy, AccessLevel(level));
        audit_masking(&masked, &policy, AccessLevel(level)).unwrap();
        prop_assert_eq!(report.masked.len() + report.visible.len(), exec.data_count());
        let (masked2, report2) = masked_clone(&masked, &policy, AccessLevel(level));
        prop_assert_eq!(report.masked, report2.masked);
        audit_masking(&masked2, &policy, AccessLevel(level)).unwrap();
    }

    /// Both structural mechanisms always hide every requested pair on
    /// random DAGs with multiple pairs.
    #[test]
    fn structural_mechanisms_always_hide(n in 4usize..12, seed in any::<u64>()) {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        for _ in 0..n {
            g.add_node(());
        }
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if next() % 10 < 4 {
                    g.add_edge(i, j, ());
                }
            }
        }
        // Collect up to 2 reachable pairs.
        let mut pairs = Vec::new();
        'outer: for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u != v && g.reaches(u, v) {
                    pairs.push((u, v));
                    if pairs.len() == 2 {
                        break 'outer;
                    }
                }
            }
        }
        prop_assume!(!pairs.is_empty());
        let req = HideRequest { pairs: pairs.clone() };
        let weights = vec![1u64; g.edge_count()];
        let del = hide_by_deletion(&g, &weights, &req);
        prop_assert!(del.hidden_ok);
        for &(u, v) in &pairs {
            prop_assert!(!del.graph.reaches(u, v));
        }
        let clu = hide_by_clustering(&g, &req);
        prop_assert!(clu.hidden_ok);
        // Clustering never destroys true pairs: correct + hidden = total.
        prop_assert_eq!(
            clu.report.correct_pairs + clu.report.hidden_pairs,
            g.reachability_pair_count()
        );
    }

    /// Laplace noise is sign-symmetric and scale-monotone in expectation.
    #[test]
    fn laplace_symmetry(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mech = LaplaceMechanism::counting(1.0);
        let n = 2000;
        let pos = (0..n).filter(|_| mech.sample_noise(&mut rng) > 0.0).count();
        // Binomial(2000, .5): allow ±6 sigma ≈ 134.
        prop_assert!((pos as i64 - 1000).abs() < 140, "positives: {pos}");
    }
}
