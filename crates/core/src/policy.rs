//! Privacy policies and principals.
//!
//! The paper ties privacy to the three workflow components (Sec. 3): data
//! items, modules, and structure. A [`Policy`] records, per specification:
//!
//! * which data **channels** are sensitive and from which [`AccessLevel`]
//!   their values become visible (data privacy),
//! * which **modules** are private, each with its Γ requirement (module
//!   privacy, ref \[4\]),
//! * which **reachability pairs** must stay hidden (structural privacy).
//!
//! A [`Principal`] carries an ordered access level plus an *access view* —
//! "the finest grained view that s/he can access" (Sec. 2) — expressed as a
//! prefix of the expansion hierarchy. All privacy guarantees are required
//! to hold **over repeated executions** (Sec. 3), which is why the policy
//! is defined against the specification, not a single run.

use ppwf_model::hierarchy::{ExpansionHierarchy, Prefix};
use ppwf_model::ids::ModuleId;
use ppwf_model::spec::Specification;
use ppwf_model::{ModelError, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An ordered clearance level; 0 is public, higher sees more.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct AccessLevel(pub u8);

impl AccessLevel {
    /// The public level (sees only unclassified artifacts).
    pub const PUBLIC: AccessLevel = AccessLevel(0);

    /// Whether this level clears `required`.
    #[inline]
    pub fn clears(self, required: AccessLevel) -> bool {
        self >= required
    }
}

/// Module-privacy requirement: the module's input→output mapping must not
/// be determinable beyond a candidate set of `gamma` outputs per input
/// (ref \[4\]) for principals below `level`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleRequirement {
    /// Minimum candidate-set size Γ.
    pub gamma: u32,
    /// Principals at or above this level may see the module in full.
    pub level: AccessLevel,
}

/// Structural-privacy requirement: principals below `level` must not learn
/// that `from` contributes to `to` (Sec. 3's `M13 → M11` example).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HidePair {
    /// Upstream module.
    pub from: ModuleId,
    /// Downstream module.
    pub to: ModuleId,
    /// Principals at or above this level may see the connection.
    pub level: AccessLevel,
}

/// A complete privacy policy for one specification.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Policy {
    /// Channel name → level required to see values on that channel.
    /// Channels not listed are public.
    pub channel_levels: HashMap<String, AccessLevel>,
    /// Private modules and their Γ requirements.
    pub private_modules: HashMap<ModuleId, ModuleRequirement>,
    /// Structural hide-pairs.
    pub hide_pairs: Vec<HidePair>,
}

impl Policy {
    /// An empty (everything-public) policy.
    pub fn public() -> Self {
        Policy::default()
    }

    /// Mark a channel sensitive from `level` upward.
    pub fn protect_channel(&mut self, channel: impl Into<String>, level: AccessLevel) -> &mut Self {
        self.channel_levels.insert(channel.into(), level);
        self
    }

    /// Mark a module Γ-private below `level`.
    pub fn protect_module(&mut self, m: ModuleId, gamma: u32, level: AccessLevel) -> &mut Self {
        self.private_modules.insert(m, ModuleRequirement { gamma, level });
        self
    }

    /// Hide the fact that `from` contributes to `to` below `level`.
    pub fn hide_pair(&mut self, from: ModuleId, to: ModuleId, level: AccessLevel) -> &mut Self {
        self.hide_pairs.push(HidePair { from, to, level });
        self
    }

    /// Level required to see values on `channel` (public if unlisted).
    pub fn channel_level(&self, channel: &str) -> AccessLevel {
        self.channel_levels.get(channel).copied().unwrap_or(AccessLevel::PUBLIC)
    }

    /// Whether `level` may see values on `channel`.
    pub fn channel_visible(&self, channel: &str, level: AccessLevel) -> bool {
        level.clears(self.channel_level(channel))
    }

    /// The hide-pairs binding for a principal at `level`.
    pub fn active_hide_pairs(&self, level: AccessLevel) -> impl Iterator<Item = &HidePair> {
        self.hide_pairs.iter().filter(move |hp| !level.clears(hp.level))
    }

    /// Validate the policy against a specification: referenced modules must
    /// exist and hide-pairs must be between distinct proper modules.
    pub fn validate(&self, spec: &Specification) -> Result<()> {
        for (&m, req) in &self.private_modules {
            if m.index() >= spec.module_count() {
                return Err(ModelError::BadId {
                    kind: "module",
                    index: m.index(),
                    len: spec.module_count(),
                });
            }
            if req.gamma == 0 {
                return Err(ModelError::invalid("Γ must be at least 1"));
            }
            if spec.module(m).kind.is_distinguished() {
                return Err(ModelError::invalid(format!(
                    "pseudo-module {} cannot be private",
                    spec.module(m).code
                )));
            }
        }
        for hp in &self.hide_pairs {
            for m in [hp.from, hp.to] {
                if m.index() >= spec.module_count() {
                    return Err(ModelError::BadId {
                        kind: "module",
                        index: m.index(),
                        len: spec.module_count(),
                    });
                }
            }
            if hp.from == hp.to {
                return Err(ModelError::invalid("hide-pair endpoints must differ"));
            }
        }
        Ok(())
    }
}

/// A user of the repository: clearance level plus access view.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Principal {
    /// Display name.
    pub name: String,
    /// Clearance for data values and module/structure requirements.
    pub level: AccessLevel,
    /// The finest hierarchy prefix this principal may see (Sec. 2's
    /// "access view").
    pub access_view: Prefix,
}

impl Principal {
    /// A fully-privileged principal (sees everything).
    pub fn admin(h: &ExpansionHierarchy) -> Self {
        Principal {
            name: "admin".into(),
            level: AccessLevel(u8::MAX),
            access_view: Prefix::full(h),
        }
    }

    /// A public principal (level 0, root-only view).
    pub fn public(h: &ExpansionHierarchy) -> Self {
        Principal {
            name: "public".into(),
            level: AccessLevel::PUBLIC,
            access_view: Prefix::root_only(h),
        }
    }

    /// Construct with explicit level and view.
    pub fn new(name: impl Into<String>, level: AccessLevel, access_view: Prefix) -> Self {
        Principal { name: name.into(), level, access_view }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppwf_model::fixtures;

    #[test]
    fn levels_order() {
        assert!(AccessLevel(3).clears(AccessLevel(3)));
        assert!(AccessLevel(3).clears(AccessLevel(1)));
        assert!(!AccessLevel(0).clears(AccessLevel(1)));
    }

    #[test]
    fn channel_protection() {
        let mut p = Policy::public();
        p.protect_channel("disorders", AccessLevel(2));
        assert!(!p.channel_visible("disorders", AccessLevel(1)));
        assert!(p.channel_visible("disorders", AccessLevel(2)));
        assert!(p.channel_visible("anything else", AccessLevel::PUBLIC));
        assert_eq!(p.channel_level("disorders"), AccessLevel(2));
    }

    #[test]
    fn hide_pairs_active_below_level() {
        let (spec, m) = fixtures::disease_susceptibility();
        let mut p = Policy::public();
        p.hide_pair(m.m13, m.m11, AccessLevel(3));
        assert_eq!(p.active_hide_pairs(AccessLevel(1)).count(), 1);
        assert_eq!(p.active_hide_pairs(AccessLevel(3)).count(), 0);
        p.validate(&spec).unwrap();
    }

    #[test]
    fn validation_catches_bad_policies() {
        let (spec, m) = fixtures::disease_susceptibility();
        let mut p = Policy::public();
        p.protect_module(m.m1, 0, AccessLevel(1));
        assert!(p.validate(&spec).is_err(), "Γ = 0 rejected");

        let mut p = Policy::public();
        p.hide_pair(m.m13, m.m13, AccessLevel(1));
        assert!(p.validate(&spec).is_err(), "self hide-pair rejected");

        let mut p = Policy::public();
        p.protect_module(ModuleId::new(9999), 2, AccessLevel(1));
        assert!(p.validate(&spec).is_err(), "unknown module rejected");

        let input = spec.workflow(spec.root()).input;
        let mut p = Policy::public();
        p.protect_module(input, 2, AccessLevel(1));
        assert!(p.validate(&spec).is_err(), "pseudo-module rejected");
    }

    #[test]
    fn principals() {
        let (spec, _) = fixtures::disease_susceptibility();
        let h = ExpansionHierarchy::of(&spec);
        let admin = Principal::admin(&h);
        let public = Principal::public(&h);
        assert!(admin.level > public.level);
        assert!(public.access_view.coarser_or_equal(&admin.access_view));
        let custom = Principal::new("bio", AccessLevel(2), Prefix::root_only(&h));
        assert_eq!(custom.name, "bio");
    }
}
