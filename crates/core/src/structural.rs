//! Structural privacy: hiding the fact that one module contributes to
//! another (Sec. 3 of the paper).
//!
//! The paper sketches two mechanisms for a *hide-pair* `(u, v)` ("users
//! should not learn that `u` contributes to `v`") and identifies the flaw
//! of each — this module implements both so the trade-off can be measured
//! (experiment E3):
//!
//! 1. **Edge deletion** — remove dataflow edges until no `u → v` path
//!    remains. Guaranteed to hide the pair, but *"we may hide additional
//!    provenance information that does not need be hidden"*: every true
//!    reachability fact destroyed beyond the target pair is collateral
//!    damage. We delete a minimum-weight edge cut (max-flow/min-cut), the
//!    least-collateral deletion a per-pair mechanism can make.
//! 2. **Clustering** — group `u` and `v` (with connector nodes) into one
//!    composite so their connection becomes internal and invisible. Nothing
//!    true is destroyed, but the view may become *unsound*, showing **false
//!    paths** (the `M10 → M14` example); the clustering outcome carries the
//!    full soundness accounting of [`ppwf_views::soundness`].
//!
//! Both outcomes expose the Sec. 4 utility measure (correct connectivity
//! kept + modules disclosed) so the benchmarks can chart the frontier.

use ppwf_model::bitset::BitSet;
use ppwf_model::flow::min_edge_cut;
use ppwf_model::graph::DiGraph;
use ppwf_views::clustering::Clustering;
use ppwf_views::repair::repair;
use ppwf_views::soundness::{check_soundness, SoundnessReport};

/// A structural hide request over a flat dataflow graph: ordered node pairs
/// whose connectivity must become invisible.
#[derive(Clone, Debug, Default)]
pub struct HideRequest {
    /// Pairs `(u, v)`: `u`'s contribution to `v` must be hidden.
    pub pairs: Vec<(u32, u32)>,
}

impl HideRequest {
    /// Single-pair request.
    pub fn pair(u: u32, v: u32) -> Self {
        HideRequest { pairs: vec![(u, v)] }
    }
}

/// Outcome of the edge-deletion mechanism.
#[derive(Clone, Debug)]
pub struct DeletionOutcome {
    /// Dense indices (in the input graph) of deleted edges.
    pub removed_edges: Vec<usize>,
    /// Total weight of deleted edges.
    pub removed_weight: u64,
    /// The redacted graph.
    pub graph: DiGraph<u32, u64>,
    /// True reachability pairs in the original graph.
    pub pairs_before: usize,
    /// True reachability pairs surviving redaction.
    pub pairs_after: usize,
    /// Requested pairs actually hidden (all, for this mechanism).
    pub hidden_ok: bool,
}

impl DeletionOutcome {
    /// Collateral damage: true pairs destroyed beyond the requested ones.
    pub fn excess_hidden_pairs(&self, requested: usize) -> usize {
        (self.pairs_before - self.pairs_after).saturating_sub(requested)
    }

    /// The Sec. 4 utility of the redacted graph (every node stays
    /// disclosed; connectivity shrinks).
    pub fn utility(&self, alpha: f64, beta: f64) -> f64 {
        alpha * self.pairs_after as f64 + beta * self.graph.node_count() as f64
    }
}

/// Hide the requested pairs by deleting a minimum-weight edge cut per pair,
/// sequentially (the joint problem is multicut, NP-hard; sequential min-cuts
/// are the standard greedy). `weights[e]` is the provenance utility of edge
/// `e` — higher-utility edges are preserved preferentially.
pub fn hide_by_deletion<N: Clone, E: Clone>(
    g: &DiGraph<N, E>,
    weights: &[u64],
    request: &HideRequest,
) -> DeletionOutcome {
    assert_eq!(weights.len(), g.edge_count(), "one weight per edge");
    // Work on an index-preserving skeleton: nodes carry their index, edges
    // their weight; removed edges are tracked against original indices.
    let mut alive: Vec<bool> = vec![true; g.edge_count()];
    let pairs_before = g.reachability_pair_count();
    let mut removed = Vec::new();
    let mut removed_weight = 0u64;

    for &(u, v) in &request.pairs {
        // Build the current residual edge list.
        let edges: Vec<(u32, u32, u64, usize)> = g
            .edges()
            .filter(|(i, _)| alive[*i as usize])
            .map(|(i, e)| (e.from, e.to, weights[i as usize], i as usize))
            .collect();
        let triples: Vec<(u32, u32, u64)> = edges.iter().map(|&(a, b, w, _)| (a, b, w)).collect();
        let (_, cut) = min_edge_cut(g.node_count(), &triples, u, v);
        for ci in cut {
            let orig = edges[ci].3;
            if alive[orig] {
                alive[orig] = false;
                removed.push(orig);
                removed_weight += weights[orig];
            }
        }
    }
    removed.sort_unstable();

    let drop = BitSet::from_iter(g.edge_count(), removed.iter().copied());
    let skeleton = g.map(|i, _| i, |i, _| weights[i as usize]);
    let redacted = skeleton.without_edges(&drop);
    let pairs_after = redacted.reachability_pair_count();
    let hidden_ok = request.pairs.iter().all(|&(u, v)| !redacted.reaches(u, v));
    DeletionOutcome {
        removed_edges: removed,
        removed_weight,
        graph: redacted,
        pairs_before,
        pairs_after,
        hidden_ok,
    }
}

/// Outcome of the clustering mechanism.
#[derive(Clone, Debug)]
pub struct ClusteringOutcome {
    /// The clustering that hides the request.
    pub clustering: Clustering,
    /// Soundness/connectivity accounting of the resulting view.
    pub report: SoundnessReport,
    /// Whether every requested pair is hidden in the view (same group, or
    /// group-level reachability absent).
    pub hidden_ok: bool,
}

impl ClusteringOutcome {
    /// The Sec. 4 utility of the view.
    pub fn utility(&self, alpha: f64, beta: f64) -> f64 {
        self.report.utility(alpha, beta)
    }
}

/// Hide the requested pairs by clustering each pair (and, transitively,
/// previously formed groups) into a composite. The connection becomes
/// internal — invisible to the viewer — at the risk of unsoundness, which
/// the returned report quantifies.
pub fn hide_by_clustering<N, E>(g: &DiGraph<N, E>, request: &HideRequest) -> ClusteringOutcome {
    let mut c = Clustering::identity(g.node_count());
    for &(u, v) in &request.pairs {
        c = c.merged(u, v);
    }
    finish_clustering(g, c, request)
}

/// Like [`hide_by_clustering`], followed by soundness repair that preserves
/// the hide guarantee: repair splits are accepted only while every
/// requested pair stays hidden; if repair would re-reveal a pair, the
/// unsound-but-private clustering is kept for that pair (reported via
/// `report.sound`).
pub fn hide_by_clustering_repaired<N, E>(
    g: &DiGraph<N, E>,
    request: &HideRequest,
) -> ClusteringOutcome {
    let base = hide_by_clustering(g, request);
    let repaired = repair(g, &base.clustering);
    let candidate = finish_clustering(g, repaired.clustering, request);
    if candidate.hidden_ok {
        candidate
    } else {
        base
    }
}

fn finish_clustering<N, E>(
    g: &DiGraph<N, E>,
    c: Clustering,
    request: &HideRequest,
) -> ClusteringOutcome {
    let report = check_soundness(g, &c);
    let q = c.quotient(g);
    let hidden_ok = request.pairs.iter().all(|&(u, v)| {
        let (gu, gv) = (c.group_of(u), c.group_of(v));
        gu == gv || !q.reaches(gu, gv)
    });
    ClusteringOutcome { clustering: c, report, hidden_ok }
}

/// Side-by-side comparison of the two mechanisms for one request — the row
/// format of experiment E3.
#[derive(Clone, Debug)]
pub struct MechanismComparison {
    /// Edge-deletion outcome.
    pub deletion: DeletionOutcome,
    /// Plain clustering outcome.
    pub clustering: ClusteringOutcome,
    /// Clustering + privacy-preserving repair.
    pub repaired: ClusteringOutcome,
}

/// Run both mechanisms (and the repaired-clustering variant) on a request.
pub fn compare_mechanisms<N: Clone, E: Clone>(
    g: &DiGraph<N, E>,
    weights: &[u64],
    request: &HideRequest,
) -> MechanismComparison {
    MechanismComparison {
        deletion: hide_by_deletion(g, weights, request),
        clustering: hide_by_clustering(g, request),
        repaired: hide_by_clustering_repaired(g, request),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's W3 fragment: 0:M10, 1:M11, 2:M12, 3:M13, 4:M14 with
    /// M10→M11, M12→M13, M13→M11, M13→M14.
    fn w3() -> (DiGraph<&'static str, ()>, Vec<u64>) {
        let mut g = DiGraph::new();
        for name in ["M10", "M11", "M12", "M13", "M14"] {
            g.add_node(name);
        }
        g.add_edge(0, 1, ());
        g.add_edge(2, 3, ());
        g.add_edge(3, 1, ());
        g.add_edge(3, 4, ());
        (g, vec![1; 4])
    }

    #[test]
    fn deletion_hides_the_paper_pair() {
        // Sec. 3: hide that M13 contributes to M11.
        let (g, w) = w3();
        let out = hide_by_deletion(&g, &w, &HideRequest::pair(3, 1));
        assert!(out.hidden_ok);
        assert!(!out.graph.reaches(3, 1));
        // The min cut is exactly the edge M13 → M11.
        assert_eq!(out.removed_edges, vec![2]);
        assert_eq!(out.removed_weight, 1);
        // Collateral: cutting M13 → M11 also severs the transitive pair
        // M12 → M11 — deletion hides more than requested even at its best,
        // exactly the drawback Sec. 3 points out.
        assert_eq!(out.pairs_before, 6);
        assert_eq!(out.pairs_after, 4);
        assert_eq!(out.excess_hidden_pairs(1), 1);
    }

    #[test]
    fn deletion_collateral_on_transitive_paths() {
        // Chain 0→1→2→3: hiding (0,3) by cutting one edge destroys several
        // true pairs — the paper's "hide additional provenance" complaint.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        for _ in 0..4 {
            g.add_node(());
        }
        g.add_edge(0, 1, ());
        g.add_edge(1, 2, ());
        g.add_edge(2, 3, ());
        let out = hide_by_deletion(&g, &[1; 3], &HideRequest::pair(0, 3));
        assert!(out.hidden_ok);
        assert_eq!(out.pairs_before, 6);
        // One cut edge kills 3 pairs: requested (0,3) plus 2 collateral.
        assert_eq!(out.pairs_after, 3);
        assert_eq!(out.excess_hidden_pairs(1), 2);
    }

    #[test]
    fn deletion_respects_weights() {
        // Two parallel routes 0→1→3 (cheap edges) and 0→2→3 (expensive):
        // hiding (0,3) must cut the cheap route's bottleneck plus the cheap
        // side of the expensive route.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        for _ in 0..4 {
            g.add_node(());
        }
        g.add_edge(0, 1, ()); // w=1
        g.add_edge(1, 3, ()); // w=9
        g.add_edge(0, 2, ()); // w=9
        g.add_edge(2, 3, ()); // w=1
        let out = hide_by_deletion(&g, &[1, 9, 9, 1], &HideRequest::pair(0, 3));
        assert!(out.hidden_ok);
        assert_eq!(out.removed_weight, 2, "cuts the two weight-1 edges");
        assert_eq!(out.removed_edges, vec![0, 3]);
    }

    #[test]
    fn clustering_hides_but_misleads() {
        // The paper's example: clustering M11 and M13 hides M13→M11 but
        // falsely implies M10 → M14.
        let (g, _w) = w3();
        let out = hide_by_clustering(&g, &HideRequest::pair(3, 1));
        assert!(out.hidden_ok, "pair inside one composite is hidden");
        assert!(!out.report.sound, "exactly the unsound view of Sec. 3");
        assert!(out.report.false_pairs > 0);
        // Nothing true was destroyed: correct + hidden = all 6 true pairs.
        assert_eq!(out.report.correct_pairs + out.report.hidden_pairs, 6);
    }

    #[test]
    fn repaired_clustering_keeps_privacy_or_reports() {
        let (g, _w) = w3();
        let out = hide_by_clustering_repaired(&g, &HideRequest::pair(3, 1));
        // For this graph, the only sound repair separates M11 and M13 —
        // which would re-reveal the pair — so the mechanism must keep the
        // unsound-but-private view.
        assert!(out.hidden_ok);
        assert!(!out.report.sound);
    }

    #[test]
    fn repaired_clustering_can_win() {
        // Hiding (2,1) (M12 contributes to M11): cluster {M12, M11}; a
        // quotient path M12→M13→{group} keeps them connected... check the
        // mechanics on the comparison entry point.
        let (g, w) = w3();
        let cmp = compare_mechanisms(&g, &w, &HideRequest::pair(2, 1));
        assert!(cmp.deletion.hidden_ok);
        assert!(cmp.clustering.hidden_ok);
        assert!(cmp.repaired.hidden_ok);
        // Deletion destroys true pairs; clustering keeps them all.
        assert!(cmp.deletion.pairs_after < cmp.deletion.pairs_before);
        assert_eq!(cmp.clustering.report.correct_pairs + cmp.clustering.report.hidden_pairs, 6);
    }

    #[test]
    fn multi_pair_requests() {
        let (g, w) = w3();
        let req = HideRequest { pairs: vec![(3, 1), (3, 4)] };
        let del = hide_by_deletion(&g, &w, &req);
        assert!(del.hidden_ok);
        assert!(!del.graph.reaches(3, 1) && !del.graph.reaches(3, 4));
        let clu = hide_by_clustering(&g, &req);
        assert!(clu.hidden_ok);
        // {M11, M13, M14} end up in one group.
        let c = &clu.clustering;
        assert_eq!(c.group_of(1), c.group_of(3));
        assert_eq!(c.group_of(3), c.group_of(4));
    }

    #[test]
    fn utility_frontier_shape() {
        // With α weighting connectivity, clustering dominates deletion on
        // kept-true-pairs; with β weighting disclosure, deletion (which
        // keeps all nodes distinct) dominates on module count.
        let (g, w) = w3();
        let cmp = compare_mechanisms(&g, &w, &HideRequest::pair(3, 1));
        let del_u = cmp.deletion.utility(1.0, 0.0);
        let clu_u = cmp.clustering.utility(1.0, 0.0);
        assert!(clu_u >= del_u - 1e-9);
        let del_m = cmp.deletion.utility(0.0, 1.0);
        let clu_m = cmp.clustering.utility(0.0, 1.0);
        assert!(del_m > clu_m, "deletion keeps 5 modules, clustering 4");
    }
}
