//! # ppwf-core — the privacy layer for provenance-aware workflow systems
//!
//! This crate implements the contribution of *Davidson et al., CIDR 2011*:
//! the three privacy notions of Sec. 3 with provable-guarantee mechanisms,
//! and the privacy-controlled disclosure semantics of Sec. 4.
//!
//! * [`policy`] — privacy policies (sensitive data channels, private
//!   modules with a privacy parameter Γ, structural hide-pairs) and
//!   principals with ordered access levels and *access views* (hierarchy
//!   prefixes).
//! * [`data_privacy`] — value masking across all executions, with audit
//!   checks that masked values can never be recovered from any visible
//!   artifact.
//! * [`module_privacy`] — Γ-privacy of module functionality (paper ref \[4\],
//!   Davidson et al., *Preserving Module Privacy in Workflow Provenance*):
//!   modules as relations, possible-output analysis under partial hiding,
//!   the min-cost safe-hiding optimization (exact and greedy), and hiding
//!   propagation through module networks.
//! * [`structural`] — structural privacy: hiding reachability facts by
//!   minimum-cut **edge deletion** or by **clustering** into composites,
//!   with the soundness/false-path accounting of Sec. 3 and the utility
//!   measures of Sec. 4.
//! * [`dp`] — the Sec. 5 discussion made concrete: a Laplace mechanism for
//!   provenance counting queries and the reproducibility-failure metric
//!   showing why output perturbation clashes with provenance's purpose.
//! * [`enforce`] — privacy-controlled disclosure: given a principal, a
//!   policy and an execution, produce the coarsest-necessary view with
//!   masked data ("zoom out until privacy is achieved").

pub mod data_privacy;
pub mod dp;
pub mod enforce;
pub mod module_privacy;
pub mod network_hiding;
pub mod policy;
pub mod structural;

pub use enforce::{disclose, disclose_exact, Disclosure};
pub use policy::{AccessLevel, Policy, Principal};
