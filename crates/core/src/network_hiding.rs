//! Workflow-level hiding: composing per-module safe subsets into a
//! repository-wide hiding plan (the "workflows" half of paper ref \[4\]).
//!
//! Standalone analysis ([`crate::module_privacy`]) answers *what to hide
//! for one module*; in a workflow, data items are shared — one module's
//! output is another's input — so hiding must be **propagated**: an item is
//! hidden everywhere or nowhere. [`plan_network_hiding`] runs the greedy
//! standalone optimizer per private module over *item* weights, unions the
//! propagated hiding sets, then iterates: if propagation exposed a module
//! below its Γ (because a previously hidden attribute got re-weighted) the
//! module is re-solved against the already-hidden items until a fixpoint.
//! The achieved guarantee is then *measured*, both under the \[4\]-style
//! surrogate adversary and under the strict known-function adversary.
//!
//! [`branch_and_bound_min_hiding`] complements the exhaustive solver with a
//! best-first exact search that prunes by cost lower bounds — the same
//! optimum, usable at attribute counts where 2^k enumeration hurts.

use crate::module_privacy::{greedy_min_hiding, HidingSolution, Network, Relation};
use ppwf_model::bitset::BitSet;
use std::collections::BinaryHeap;

/// A per-module privacy requirement inside a network.
#[derive(Clone, Copy, Debug)]
pub struct NetworkRequirement {
    /// Module index within the network.
    pub module: usize,
    /// Required candidate-set size Γ.
    pub gamma: u64,
}

/// A workflow-wide hiding plan.
#[derive(Clone, Debug)]
pub struct NetworkHidingPlan {
    /// Hidden data items (network item indices).
    pub hidden_items: BitSet,
    /// Total weight of hidden items.
    pub cost: u64,
    /// Per-requirement achieved Γ under the \[4\]-style surrogate adversary.
    pub surrogate_gamma: Vec<u64>,
    /// Per-requirement achieved Γ under the strict adversary.
    pub strict_gamma: Vec<u64>,
    /// Fixpoint rounds taken.
    pub rounds: usize,
}

impl NetworkHidingPlan {
    /// Whether every requirement is met under the surrogate adversary (the
    /// guarantee \[4\] proves for all-private workflows).
    pub fn satisfies_surrogate(&self, reqs: &[NetworkRequirement]) -> bool {
        reqs.iter().zip(&self.surrogate_gamma).all(|(r, &g)| g >= r.gamma)
    }

    /// Whether every requirement is met even against the strict adversary.
    pub fn satisfies_strict(&self, reqs: &[NetworkRequirement]) -> bool {
        reqs.iter().zip(&self.strict_gamma).all(|(r, &g)| g >= r.gamma)
    }
}

/// Compute a propagated hiding plan for `reqs` over `network`, with one
/// weight per data item (items hidden once are free for later modules).
pub fn plan_network_hiding(
    network: &Network,
    reqs: &[NetworkRequirement],
    item_weights: &[u64],
) -> Option<NetworkHidingPlan> {
    assert_eq!(item_weights.len(), network.item_count(), "one weight per item");
    let mut hidden_items = BitSet::new(network.item_count());
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut changed = false;
        for req in reqs {
            let rel = network.relation(req.module);
            // Current module-local view of the hiding.
            let local_hidden = network.module_hidden_attrs(req.module, &hidden_items);
            let mut visible = BitSet::full(rel.attr_count());
            visible.difference_with(&local_hidden);
            if rel.min_possible_outputs(&visible) >= req.gamma {
                continue; // already satisfied standalone
            }
            // Re-solve with already-hidden attributes free (weight 0 → 1 is
            // the solver floor; emulate by weighting via item weights and
            // zeroing hidden ones).
            let weights: Vec<u64> = (0..rel.attr_count())
                .map(|a| {
                    let item = attr_item(network, req.module, a);
                    if hidden_items.contains(item) {
                        1 // already paid; minimal residual weight
                    } else {
                        item_weights[item].max(1)
                    }
                })
                .collect();
            let sol = greedy_min_hiding(rel, &weights, req.gamma)?;
            for a in sol.hidden.iter() {
                let item = attr_item(network, req.module, a);
                if hidden_items.insert(item) {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
        if rounds > reqs.len() + network.item_count() {
            break; // defensive: propagation must have converged by now
        }
    }

    let cost = hidden_items.iter().map(|i| item_weights[i]).sum();
    let surrogate_gamma: Vec<u64> =
        reqs.iter().map(|r| network.empirical_gamma(r.module, &hidden_items)).collect();
    let strict_gamma: Vec<u64> =
        reqs.iter().map(|r| network.empirical_gamma_strict(r.module, &hidden_items)).collect();
    Some(NetworkHidingPlan { hidden_items, cost, surrogate_gamma, strict_gamma, rounds })
}

fn attr_item(network: &Network, module: usize, attr: usize) -> usize {
    let rel = network.relation(module);
    if attr < rel.in_arity() {
        network.input_item(module, attr)
    } else {
        network.output_item(module, attr - rel.in_arity())
    }
}

// ---------------------------------------------------------------------------
// Branch and bound
// ---------------------------------------------------------------------------

#[derive(PartialEq)]
struct BbNode {
    cost: u64,
    depth: usize,
    hidden: BitSet,
}

impl Eq for BbNode {}
impl Ord for BbNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by cost (then prefer deeper nodes: closer to decided).
        other.cost.cmp(&self.cost).then_with(|| self.depth.cmp(&other.depth))
    }
}
impl PartialOrd for BbNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Exact minimum-cost Γ-private hiding via best-first branch and bound.
///
/// Nodes fix a prefix of the attribute order (hidden or visible); the bound
/// is the cost of already-hidden attributes (all remaining decisions can
/// only add cost, so the partial cost is an admissible lower bound). A node
/// is expanded only if hiding *all* undecided attributes would satisfy Γ —
/// otherwise the subtree is infeasible and pruned. Returns the same optimum
/// as [`crate::module_privacy::exhaustive_min_hiding`] (tested), typically
/// visiting far fewer states on structured inputs.
pub fn branch_and_bound_min_hiding(
    rel: &Relation,
    weights: &[u64],
    gamma: u64,
) -> Option<HidingSolution> {
    let k = rel.attr_count();
    assert_eq!(weights.len(), k);
    if rel.output_space() < gamma {
        return None;
    }
    // Decide attributes in descending weight order so costly choices are
    // made early and pruned hard.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&a| std::cmp::Reverse(weights[a]));

    let mut evaluations = 0usize;
    let mut best: Option<(u64, BitSet)> = None;
    let mut heap = BinaryHeap::new();
    heap.push(BbNode { cost: 0, depth: 0, hidden: BitSet::new(k) });
    while let Some(node) = heap.pop() {
        if let Some((bc, _)) = &best {
            if node.cost >= *bc {
                continue; // bound
            }
        }
        // Feasibility of the subtree: hide everything undecided.
        let mut max_hidden = node.hidden.clone();
        for &a in &order[node.depth..] {
            max_hidden.insert(a);
        }
        let mut min_visible = BitSet::full(k);
        min_visible.difference_with(&max_hidden);
        evaluations += 1;
        if !rel.is_gamma_private(&min_visible, gamma) {
            continue; // even maximal hiding below this node fails
        }
        // Is the node itself already a solution (hide only its set)?
        let mut visible = BitSet::full(k);
        visible.difference_with(&node.hidden);
        evaluations += 1;
        if rel.is_gamma_private(&visible, gamma) {
            if best.as_ref().map(|(bc, _)| node.cost < *bc).unwrap_or(true) {
                best = Some((node.cost, node.hidden.clone()));
            }
            continue; // any extension only adds cost
        }
        if node.depth == k {
            continue;
        }
        let a = order[node.depth];
        // Branch 1: keep `a` visible.
        heap.push(BbNode { cost: node.cost, depth: node.depth + 1, hidden: node.hidden.clone() });
        // Branch 2: hide `a`.
        let mut h = node.hidden;
        h.insert(a);
        heap.push(BbNode { cost: node.cost + weights[a], depth: node.depth + 1, hidden: h });
    }
    best.map(|(cost, hidden)| HidingSolution { hidden, cost, evaluations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module_privacy::{exhaustive_min_hiding, Source};

    fn xor_copy() -> Relation {
        Relation::from_fn("xor_copy", &[2, 2], &[2, 2], |x| vec![x[0] ^ x[1], x[0]])
    }

    #[test]
    fn bnb_matches_exhaustive() {
        let rels = [
            xor_copy(),
            Relation::from_fn("proj", &[2, 2, 2], &[2, 2], |x| vec![x[0], x[2]]),
            Relation::from_fn("mix", &[2, 2], &[2, 2, 2], |x| {
                vec![x[0] ^ x[1], x[0] & x[1], x[0] | x[1]]
            }),
        ];
        for rel in &rels {
            for gamma in [1u64, 2, 4] {
                for wseed in 0..4u64 {
                    let weights: Vec<u64> =
                        (0..rel.attr_count()).map(|a| 1 + ((a as u64 + wseed) % 7)).collect();
                    let ex = exhaustive_min_hiding(rel, &weights, gamma);
                    let bb = branch_and_bound_min_hiding(rel, &weights, gamma);
                    match (ex, bb) {
                        (Some(e), Some(b)) => {
                            assert_eq!(e.cost, b.cost, "{} Γ={gamma} w={wseed}", rel.name())
                        }
                        (None, None) => {}
                        (e, b) => panic!("disagreement: {e:?} vs {b:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn bnb_prunes_relative_to_exhaustive() {
        let rel = Relation::from_fn("wide", &[2, 2, 2], &[2, 2, 2], |x| vec![x[0], x[1], x[2]]);
        let weights = vec![5, 4, 3, 2, 2, 2];
        let ex = exhaustive_min_hiding(&rel, &weights, 4).unwrap();
        let bb = branch_and_bound_min_hiding(&rel, &weights, 4).unwrap();
        assert_eq!(ex.cost, bb.cost);
        assert!(
            bb.evaluations < (1usize << rel.attr_count()) * 2,
            "bnb evaluated {} states",
            bb.evaluations
        );
    }

    #[test]
    fn unattainable_gamma_rejected() {
        let rel = Relation::from_fn("const", &[2], &[2], |_| vec![0]);
        assert!(branch_and_bound_min_hiding(&rel, &[1, 1], 4).is_none());
    }

    // -- network planning ---------------------------------------------------

    fn chain2() -> Network {
        Network::new(
            vec![xor_copy(), xor_copy()],
            vec![
                vec![Source::External(0), Source::External(1)],
                vec![Source::Wire { module: 0, out_attr: 0 }, Source::External(2)],
            ],
            vec![2, 2, 2],
        )
    }

    #[test]
    fn plan_meets_surrogate_requirements() {
        let net = chain2();
        let reqs = [
            NetworkRequirement { module: 0, gamma: 4 },
            NetworkRequirement { module: 1, gamma: 4 },
        ];
        let weights = vec![1u64; net.item_count()];
        let plan = plan_network_hiding(&net, &reqs, &weights).expect("attainable");
        assert!(plan.satisfies_surrogate(&reqs), "plan: {plan:?}");
        assert!(plan.rounds >= 1);
        assert!(plan.cost >= 1);
        // Propagation: hidden attrs map to hidden items on both endpoints.
        for i in 0..net.module_count() {
            let local = net.module_hidden_attrs(i, &plan.hidden_items);
            let mut visible = BitSet::full(net.relation(i).attr_count());
            visible.difference_with(&local);
            assert!(net.relation(i).min_possible_outputs(&visible) >= 4);
        }
    }

    #[test]
    fn strict_adversary_may_need_more() {
        // The surrogate plan need not satisfy the strict adversary — the
        // measured gap is the point of the ablation.
        let net = chain2();
        let reqs = [NetworkRequirement { module: 0, gamma: 4 }];
        let weights = vec![1u64; net.item_count()];
        let plan = plan_network_hiding(&net, &reqs, &weights).unwrap();
        assert!(plan.satisfies_surrogate(&reqs));
        assert!(plan.strict_gamma[0] <= plan.surrogate_gamma[0]);
    }

    #[test]
    fn zero_requirements_plan_is_empty() {
        let net = chain2();
        let plan = plan_network_hiding(&net, &[], &vec![1; net.item_count()]).unwrap();
        assert!(plan.hidden_items.is_empty());
        assert_eq!(plan.cost, 0);
    }

    #[test]
    fn shared_items_paid_once() {
        // Item weights: make the wire item expensive; both modules needing
        // hiding should reuse it rather than hide two expensive items.
        let net = chain2();
        let reqs = [
            NetworkRequirement { module: 0, gamma: 2 },
            NetworkRequirement { module: 1, gamma: 2 },
        ];
        let mut weights = vec![3u64; net.item_count()];
        weights[net.output_item(0, 0)] = 1; // the shared wire is cheap
        let plan = plan_network_hiding(&net, &reqs, &weights).unwrap();
        assert!(plan.satisfies_surrogate(&reqs));
        // Cost accounts each hidden item once.
        let recount: u64 = plan.hidden_items.iter().map(|i| weights[i]).sum();
        assert_eq!(plan.cost, recount);
    }
}
