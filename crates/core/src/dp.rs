//! Differential privacy for provenance queries — the Sec. 5 discussion made
//! measurable.
//!
//! The paper closes by asking whether differential privacy could apply to
//! workflow provenance, and is skeptical: *"provenance in scientific
//! workflows is used to ensure reproducibility of experiments, and adding
//! random noise to provenance information may render it useless."* This
//! module implements the standard Laplace mechanism over provenance
//! **counting queries** (how many executions route data through module M?
//! how many items derive from input d?) and the metric that quantifies the
//! paper's concern: the *reproducibility failure rate* — how often the
//! noisy answer, used the way a scientist would use it, differs from the
//! truth.
//!
//! Experiment E8 sweeps ε and charts both relative error and failure rate.

use rand::Rng;

/// The Laplace mechanism for counting queries of sensitivity `sensitivity`.
#[derive(Clone, Copy, Debug)]
pub struct LaplaceMechanism {
    /// Privacy budget ε (> 0); smaller is more private and noisier.
    pub epsilon: f64,
    /// L1 sensitivity of the query (1 for counting queries).
    pub sensitivity: f64,
}

impl LaplaceMechanism {
    /// Counting-query mechanism (sensitivity 1).
    pub fn counting(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "ε must be positive");
        LaplaceMechanism { epsilon, sensitivity: 1.0 }
    }

    /// The noise scale b = sensitivity / ε.
    pub fn scale(&self) -> f64 {
        self.sensitivity / self.epsilon
    }

    /// Draw one Laplace(0, b) sample via inverse CDF.
    pub fn sample_noise(&self, rng: &mut impl Rng) -> f64 {
        let u: f64 = rng.gen_range(-0.5..0.5);
        let b = self.scale();
        -b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// A noisy release of `true_count`.
    pub fn noisy_count(&self, true_count: u64, rng: &mut impl Rng) -> f64 {
        true_count as f64 + self.sample_noise(rng)
    }

    /// A noisy release rounded and clamped the way a consumer would read a
    /// count (non-negative integer).
    pub fn noisy_count_rounded(&self, true_count: u64, rng: &mut impl Rng) -> u64 {
        self.noisy_count(true_count, rng).round().max(0.0) as u64
    }
}

/// Aggregate accuracy of the mechanism over a batch of true counts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DpAccuracy {
    /// Mean |noisy − true| / max(true, 1).
    pub mean_relative_error: f64,
    /// Fraction of releases whose rounded value differs from the truth —
    /// the reproducibility failure rate of Sec. 5.
    pub failure_rate: f64,
}

/// Evaluate the mechanism on `counts`, releasing each `trials` times.
pub fn evaluate_mechanism(
    mech: &LaplaceMechanism,
    counts: &[u64],
    trials: usize,
    rng: &mut impl Rng,
) -> DpAccuracy {
    assert!(trials > 0 && !counts.is_empty());
    let mut err_sum = 0.0;
    let mut failures = 0usize;
    let total = counts.len() * trials;
    for &c in counts {
        for _ in 0..trials {
            let noisy = mech.noisy_count(c, rng);
            err_sum += (noisy - c as f64).abs() / (c.max(1) as f64);
            if noisy.round().max(0.0) as u64 != c {
                failures += 1;
            }
        }
    }
    DpAccuracy {
        mean_relative_error: err_sum / total as f64,
        failure_rate: failures as f64 / total as f64,
    }
}

/// Theoretical failure probability of a rounded Laplace release:
/// `P(|noise| > 0.5) = exp(−ε/2)` for sensitivity-1 counting queries.
pub fn theoretical_failure_rate(epsilon: f64) -> f64 {
    (-epsilon * 0.5).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noise_is_centered_and_scaled() {
        let mech = LaplaceMechanism::counting(1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| mech.sample_noise(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} should be ~0");
        // Laplace(0, 1) has E|X| = b = 1.
        let mad = samples.iter().map(|x| x.abs()).sum::<f64>() / n as f64;
        assert!((mad - 1.0).abs() < 0.05, "mean abs dev {mad} should be ~1");
    }

    #[test]
    fn smaller_epsilon_is_noisier() {
        let mut rng = StdRng::seed_from_u64(11);
        let tight = LaplaceMechanism::counting(4.0);
        let loose = LaplaceMechanism::counting(0.25);
        let counts = [5u64, 10, 100];
        let at = evaluate_mechanism(&tight, &counts, 2000, &mut rng);
        let al = evaluate_mechanism(&loose, &counts, 2000, &mut rng);
        assert!(al.mean_relative_error > at.mean_relative_error * 2.0);
        assert!(al.failure_rate > at.failure_rate);
    }

    #[test]
    fn failure_rate_matches_theory() {
        let mut rng = StdRng::seed_from_u64(13);
        for eps in [0.5f64, 1.0, 2.0] {
            let mech = LaplaceMechanism::counting(eps);
            let acc = evaluate_mechanism(&mech, &[42], 30_000, &mut rng);
            let theory = theoretical_failure_rate(eps);
            assert!(
                (acc.failure_rate - theory).abs() < 0.02,
                "ε={eps}: measured {} vs theory {theory}",
                acc.failure_rate
            );
        }
    }

    #[test]
    fn supports_paper_skepticism_at_small_epsilon() {
        // At strong privacy (ε = 0.1) virtually every provenance count is
        // wrong after rounding — "render it useless".
        assert!(theoretical_failure_rate(0.1) > 0.95);
        // At weak privacy (ε = 10) counts are usually exact.
        assert!(theoretical_failure_rate(10.0) < 0.01);
    }

    #[test]
    fn rounded_release_clamps_at_zero() {
        let mech = LaplaceMechanism::counting(0.01);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            let _ = mech.noisy_count_rounded(0, &mut rng); // must not underflow
        }
    }

    #[test]
    #[should_panic(expected = "ε must be positive")]
    fn zero_epsilon_rejected() {
        LaplaceMechanism::counting(0.0);
    }
}
