//! Data privacy: masking sensitive values across all executions (Sec. 3).
//!
//! *"Intermediate data within an execution may contain sensitive
//! information... Although users with the appropriate access level may be
//! allowed to see such confidential data, making it available to all users
//! ... is an unacceptable breach of privacy."*
//!
//! The mechanism is in-place masking: the execution's shape (nodes, edges,
//! data-item identities) is preserved — provenance structure remains
//! queryable — but values on channels above the principal's level are
//! replaced with [`Value::Masked`]. Masking is *by channel over all
//! executions*, matching the paper's requirement that guarantees hold over
//! repeated executions with varied inputs.

use crate::policy::{AccessLevel, Policy};
use ppwf_model::exec::Execution;
use ppwf_model::ids::DataId;
use ppwf_model::value::Value;
use ppwf_model::{ModelError, Result};

/// Outcome of masking: which items were hidden.
#[derive(Clone, Debug, Default)]
pub struct MaskReport {
    /// Items whose values were masked, ascending.
    pub masked: Vec<DataId>,
    /// Items left visible, ascending.
    pub visible: Vec<DataId>,
}

impl MaskReport {
    /// Fraction of items masked (0.0 if the execution has no data).
    pub fn masked_fraction(&self) -> f64 {
        let total = self.masked.len() + self.visible.len();
        if total == 0 {
            0.0
        } else {
            self.masked.len() as f64 / total as f64
        }
    }
}

/// Mask (in place) every data value whose channel requires more clearance
/// than `level`. Returns the mask report.
pub fn mask_execution(exec: &mut Execution, policy: &Policy, level: AccessLevel) -> MaskReport {
    let mut report = MaskReport::default();
    let ids: Vec<DataId> = exec.data_items().map(|d| d.id).collect();
    for id in ids {
        let channel = exec.data(id).channel.clone();
        if policy.channel_visible(&channel, level) {
            report.visible.push(id);
        } else {
            exec.data_mut(id).value = Value::Masked;
            report.masked.push(id);
        }
    }
    report
}

/// Clone-and-mask convenience.
pub fn masked_clone(
    exec: &Execution,
    policy: &Policy,
    level: AccessLevel,
) -> (Execution, MaskReport) {
    let mut clone = exec.clone();
    let report = mask_execution(&mut clone, policy, level);
    (clone, report)
}

/// Audit that an execution leaks nothing to `level`: every item on a
/// protected channel must be masked. Returns the ids of leaking items on
/// failure.
pub fn audit_masking(exec: &Execution, policy: &Policy, level: AccessLevel) -> Result<()> {
    let leaks: Vec<DataId> = exec
        .data_items()
        .filter(|d| !policy.channel_visible(&d.channel, level) && !d.value.is_masked())
        .map(|d| d.id)
        .collect();
    if leaks.is_empty() {
        Ok(())
    } else {
        Err(ModelError::invalid(format!(
            "data-privacy leak: {} unmasked sensitive item(s), first {}",
            leaks.len(),
            leaks[0]
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppwf_model::fixtures;

    fn setup() -> (Execution, Policy) {
        let (spec, _m) = fixtures::disease_susceptibility();
        let exec = fixtures::disease_susceptibility_execution(&spec);
        let mut policy = Policy::public();
        // The paper's data-privacy example: the disorders M1 outputs are
        // sensitive.
        policy.protect_channel("disorders", AccessLevel(2));
        policy.protect_channel("SNPs", AccessLevel(1));
        (exec, policy)
    }

    #[test]
    fn masks_by_channel_and_level() {
        let (exec, policy) = setup();
        let (public_view, report) = masked_clone(&exec, &policy, AccessLevel::PUBLIC);
        // Channels: "disorders" ×4 items (d8, d9, d10 + none others? d8,d9,
        // d10 are "disorders") and "SNPs" ×2 (d0, d5).
        let masked_channels: Vec<&str> =
            report.masked.iter().map(|&d| exec.data(d).channel.as_str()).collect();
        assert!(masked_channels.iter().all(|c| *c == "disorders" || *c == "SNPs"));
        assert_eq!(masked_channels.iter().filter(|c| **c == "disorders").count(), 3);
        assert_eq!(masked_channels.iter().filter(|c| **c == "SNPs").count(), 2);
        audit_masking(&public_view, &policy, AccessLevel::PUBLIC).unwrap();
        // Shape is untouched.
        assert_eq!(public_view.graph().edge_count(), exec.graph().edge_count());
        assert_eq!(public_view.data_count(), exec.data_count());
    }

    #[test]
    fn intermediate_level_sees_partially() {
        let (exec, policy) = setup();
        let (v1, r1) = masked_clone(&exec, &policy, AccessLevel(1));
        // Level 1 clears SNPs but not disorders.
        assert!(r1.masked.iter().all(|&d| exec.data(d).channel == "disorders"));
        audit_masking(&v1, &policy, AccessLevel(1)).unwrap();
        let (_v2, r2) = masked_clone(&exec, &policy, AccessLevel(2));
        assert!(r2.masked.is_empty(), "level 2 clears everything");
    }

    #[test]
    fn audit_detects_leaks() {
        let (exec, policy) = setup();
        // Unmasked original must fail the public audit.
        assert!(audit_masking(&exec, &policy, AccessLevel::PUBLIC).is_err());
        assert!(audit_masking(&exec, &policy, AccessLevel(2)).is_ok());
    }

    #[test]
    fn masked_fraction() {
        let (exec, policy) = setup();
        let (_, report) = masked_clone(&exec, &policy, AccessLevel::PUBLIC);
        let f = report.masked_fraction();
        assert!((f - 5.0 / 20.0).abs() < 1e-9, "5 of 20 items masked, got {f}");
    }

    #[test]
    fn masking_is_idempotent() {
        let (exec, policy) = setup();
        let (mut v, r1) = masked_clone(&exec, &policy, AccessLevel::PUBLIC);
        let r2 = mask_execution(&mut v, &policy, AccessLevel::PUBLIC);
        assert_eq!(r1.masked, r2.masked);
        audit_masking(&v, &policy, AccessLevel::PUBLIC).unwrap();
    }
}
