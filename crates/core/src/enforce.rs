//! Privacy-controlled disclosure (Sec. 4 of the paper).
//!
//! Given an execution, a policy and a principal, [`disclose`] produces what
//! that principal is allowed to see:
//!
//! 1. start from the principal's **access view** (the finest prefix they may
//!    access, Sec. 2),
//! 2. **mask** data values above their clearance on every edge
//!    ([`crate::data_privacy`]),
//! 3. **zoom out** — coarsen the prefix composite-by-composite — until no
//!    active structural hide-pair is identifiable in the view (the paper's
//!    *"gradually zoom-out the view ... until privacy is achieved"*),
//! 4. audit the result before release.
//!
//! A hide-pair `(u, v)` counts as *revealed* when both modules are
//! individually identifiable in the view (shown as themselves, not absorbed
//! into some other composite) and the view graph connects them. Absorbing
//! either endpoint into a coarser composite de-identifies it, which is
//! exactly how prefix views hide structure.

use crate::data_privacy::{audit_masking, mask_execution, MaskReport};
use crate::policy::{Policy, Principal};
use ppwf_model::exec::Execution;
use ppwf_model::hierarchy::{ExpansionHierarchy, Prefix};
use ppwf_model::ids::ModuleId;
use ppwf_model::spec::Specification;
use ppwf_model::{ModelError, Result};
use ppwf_views::exec_view::{ExecView, ExecViewNode};
use ppwf_views::zoom::zoom_out_until;

/// What a principal receives for one execution.
#[derive(Clone, Debug)]
pub struct Disclosure {
    /// The prefix actually used (≤ the principal's access view).
    pub prefix: Prefix,
    /// The collapsed execution view at that prefix.
    pub view: ExecView,
    /// The masked execution backing the view (values above clearance are
    /// [`ppwf_model::value::Value::Masked`]).
    pub execution: Execution,
    /// Which data items were masked / visible.
    pub mask: MaskReport,
    /// Zoom-out steps taken to satisfy structural privacy.
    pub zoom_steps: usize,
}

/// Whether view node `n` identifiably shows module `m`.
fn identifies(view: &ExecView, exec: &Execution, n: u32, m: ModuleId) -> bool {
    match view.graph().node(n) {
        ExecViewNode::Kept(orig) => exec.graph().node(orig.index() as u32).kind.module() == Some(m),
        ExecViewNode::Collapsed(_, mm) => *mm == m,
        _ => false,
    }
}

/// Whether the view reveals that `u` contributes to `v`.
pub fn pair_revealed(view: &ExecView, exec: &Execution, u: ModuleId, v: ModuleId) -> bool {
    let (Some(pu), Some(pv)) = (exec.proc_of(u), exec.proc_of(v)) else {
        return false;
    };
    let (Some(nu), Some(nv)) = (view.node_of_proc(pu), view.node_of_proc(pv)) else {
        return false;
    };
    nu != nv
        && identifies(view, exec, nu, u)
        && identifies(view, exec, nv, v)
        && view.graph().reaches(nu, nv)
}

/// Disclose `exec` to `principal` under `policy`.
///
/// Errors if the policy is invalid for the specification, or if structural
/// privacy cannot be satisfied even at the root-only view (in which case no
/// prefix view of this execution may be released to this principal).
pub fn disclose(
    spec: &Specification,
    h: &ExpansionHierarchy,
    exec: &Execution,
    policy: &Policy,
    principal: &Principal,
) -> Result<Disclosure> {
    policy.validate(spec)?;
    principal.access_view.validate(h)?;

    let mut masked = exec.clone();
    let mask = mask_execution(&mut masked, policy, principal.level);
    audit_masking(&masked, policy, principal.level)?;

    let active: Vec<(ModuleId, ModuleId)> =
        policy.active_hide_pairs(principal.level).map(|hp| (hp.from, hp.to)).collect();

    let outcome = zoom_out_until(h, &principal.access_view, |p| {
        let view = ExecView::build(spec, h, &masked, p).expect("valid prefix");
        active.iter().all(|&(u, v)| !pair_revealed(&view, &masked, u, v))
    });
    let Some(prefix) = outcome.prefix else {
        return Err(ModelError::invalid(format!(
            "structural privacy for principal `{}` cannot be satisfied by any prefix view",
            principal.name
        )));
    };
    let view = ExecView::build(spec, h, &masked, &prefix)?;
    Ok(Disclosure { prefix, view, execution: masked, mask, zoom_steps: outcome.steps })
}

/// Like [`disclose`], but maximizes utility exactly: instead of the greedy
/// deepest-first zoom-out walk, search **all** prefixes under the access
/// view for the finest one that satisfies structural privacy — the paper's
/// *"maximizing utility with respect to provenance queries"* objective made
/// literal. Exponential in hierarchy width in the worst case, fine at the
/// hierarchy sizes real workflows have; the greedy [`disclose`] is the
/// production path and this is its quality baseline (their gap is tested).
pub fn disclose_exact(
    spec: &Specification,
    h: &ExpansionHierarchy,
    exec: &Execution,
    policy: &Policy,
    principal: &Principal,
) -> Result<Disclosure> {
    policy.validate(spec)?;
    principal.access_view.validate(h)?;

    let mut masked = exec.clone();
    let mask = mask_execution(&mut masked, policy, principal.level);
    audit_masking(&masked, policy, principal.level)?;

    let active: Vec<(ModuleId, ModuleId)> =
        policy.active_hide_pairs(principal.level).map(|hp| (hp.from, hp.to)).collect();

    let best = ppwf_views::zoom::finest_satisfying(h, &principal.access_view, |p| {
        let view = ExecView::build(spec, h, &masked, p).expect("valid prefix");
        active.iter().all(|&(u, v)| !pair_revealed(&view, &masked, u, v))
    });
    let Some(prefix) = best else {
        return Err(ModelError::invalid(format!(
            "structural privacy for principal `{}` cannot be satisfied by any prefix view",
            principal.name
        )));
    };
    let view = ExecView::build(spec, h, &masked, &prefix)?;
    Ok(Disclosure { prefix, view, execution: masked, mask, zoom_steps: 0 })
}

/// Post-release audit: re-verify every guarantee on a disclosure (defense
/// in depth for the repository layer).
pub fn audit_disclosure(
    spec: &Specification,
    policy: &Policy,
    principal: &Principal,
    d: &Disclosure,
) -> Result<()> {
    audit_masking(&d.execution, policy, principal.level)?;
    if !d.prefix.coarser_or_equal(&principal.access_view) {
        return Err(ModelError::invalid("disclosure prefix exceeds access view"));
    }
    for hp in policy.active_hide_pairs(principal.level) {
        if pair_revealed(&d.view, &d.execution, hp.from, hp.to) {
            return Err(ModelError::invalid(format!(
                "structural leak: {} → {} visible",
                spec.module(hp.from).code,
                spec.module(hp.to).code
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AccessLevel;
    use ppwf_model::fixtures;
    use ppwf_model::ids::WorkflowId;

    fn setup() -> (Specification, ExpansionHierarchy, Execution) {
        let (spec, _) = fixtures::disease_susceptibility();
        let h = ExpansionHierarchy::of(&spec);
        let exec = fixtures::disease_susceptibility_execution(&spec);
        (spec, h, exec)
    }

    #[test]
    fn public_policy_full_access_needs_no_zoom() {
        let (spec, h, exec) = setup();
        let policy = Policy::public();
        let admin = Principal::admin(&h);
        let d = disclose(&spec, &h, &exec, &policy, &admin).unwrap();
        assert_eq!(d.zoom_steps, 0);
        assert!(d.mask.masked.is_empty());
        assert_eq!(d.view.graph().node_count(), exec.graph().node_count());
        audit_disclosure(&spec, &policy, &admin, &d).unwrap();
    }

    #[test]
    fn data_masking_applies_at_disclosure() {
        let (spec, h, exec) = setup();
        let mut policy = Policy::public();
        policy.protect_channel("disorders", AccessLevel(3));
        let user = Principal::new("user", AccessLevel(1), Prefix::full(&h));
        let d = disclose(&spec, &h, &exec, &policy, &user).unwrap();
        assert_eq!(d.mask.masked.len(), 3, "d8, d9, d10 masked");
        assert!(d
            .execution
            .data_items()
            .filter(|x| x.channel == "disorders")
            .all(|x| x.value.is_masked()));
        audit_disclosure(&spec, &policy, &user, &d).unwrap();
    }

    #[test]
    fn structural_zoom_hides_m13_m11() {
        // The Sec. 3 example: hide that M13 (Reformat) feeds M11 (Update
        // Private Datasets). Both live in W3; zooming W3 out collapses them
        // into S8:M2, de-identifying the pair.
        let (spec, h, exec) = setup();
        let m = fixtures::handles(&spec);
        let mut policy = Policy::public();
        policy.hide_pair(m.m13, m.m11, AccessLevel(5));
        let user = Principal::new("user", AccessLevel(1), Prefix::full(&h));
        let d = disclose(&spec, &h, &exec, &policy, &user).unwrap();
        assert!(d.zoom_steps > 0);
        assert!(!d.prefix.contains(WorkflowId::new(2)), "W3 zoomed out");
        assert!(d.prefix.contains(WorkflowId::new(0)));
        assert!(!pair_revealed(&d.view, &d.execution, m.m13, m.m11));
        audit_disclosure(&spec, &policy, &user, &d).unwrap();

        // A cleared principal sees everything without zooming.
        let boss = Principal::new("boss", AccessLevel(5), Prefix::full(&h));
        let d2 = disclose(&spec, &h, &exec, &policy, &boss).unwrap();
        assert_eq!(d2.zoom_steps, 0);
        assert!(pair_revealed(&d2.view, &d2.execution, m.m13, m.m11));
    }

    #[test]
    fn zoom_keeps_unrelated_detail_when_possible() {
        // Hiding a W4-internal pair must not force W3 out of the view: the
        // zoom policy peels deepest-first and stops as soon as privacy
        // holds... W4 (deepest) goes first, W3 stays.
        let (spec, h, exec) = setup();
        let m = fixtures::handles(&spec);
        let mut policy = Policy::public();
        policy.hide_pair(m.m5, m.m6, AccessLevel(5));
        let user = Principal::new("user", AccessLevel(0), Prefix::full(&h));
        let d = disclose(&spec, &h, &exec, &policy, &user).unwrap();
        assert!(!d.prefix.contains(WorkflowId::new(3)), "W4 removed");
        assert!(d.prefix.contains(WorkflowId::new(2)), "W3 kept");
        audit_disclosure(&spec, &policy, &user, &d).unwrap();
    }

    #[test]
    fn top_level_pair_cannot_be_hidden_by_zoom() {
        // M1 → M2 sits in the root workflow: no prefix hides it.
        let (spec, h, exec) = setup();
        let m = fixtures::handles(&spec);
        let mut policy = Policy::public();
        policy.hide_pair(m.m1, m.m2, AccessLevel(5));
        let user = Principal::new("user", AccessLevel(0), Prefix::full(&h));
        let err = disclose(&spec, &h, &exec, &policy, &user).unwrap_err();
        assert!(err.to_string().contains("cannot be satisfied"));
    }

    #[test]
    fn access_view_caps_disclosure() {
        // Principal with a root-only access view never sees inside M1/M2,
        // regardless of policy.
        let (spec, h, exec) = setup();
        let policy = Policy::public();
        let user = Principal::new("user", AccessLevel(9), Prefix::root_only(&h));
        let d = disclose(&spec, &h, &exec, &policy, &user).unwrap();
        assert_eq!(d.view.graph().node_count(), 4, "I, S1:M1, S8:M2, O");
        audit_disclosure(&spec, &policy, &user, &d).unwrap();
    }

    #[test]
    fn exact_disclosure_dominates_greedy() {
        // The greedy walk peels deepest-first and can discard unrelated
        // detail; the exact search keeps the finest private prefix. For a
        // hide-pair spanning W2's M8 and W3's M9, de-identifying *either*
        // endpoint suffices: exact keeps 3 workflows, greedy keeps 2.
        let (spec, h, exec) = setup();
        let m = fixtures::handles(&spec);
        let mut policy = Policy::public();
        policy.hide_pair(m.m8, m.m9, AccessLevel(5));
        let user = Principal::new("user", AccessLevel(0), Prefix::full(&h));
        let greedy = disclose(&spec, &h, &exec, &policy, &user).unwrap();
        let exact = disclose_exact(&spec, &h, &exec, &policy, &user).unwrap();
        audit_disclosure(&spec, &policy, &user, &exact).unwrap();
        assert!(exact.prefix.len() >= greedy.prefix.len(), "exact keeps at least as much detail");
        assert_eq!(exact.prefix.len(), 3, "exact drops only W3 (or only W2)");
        assert_eq!(greedy.prefix.len(), 2, "greedy also peeled W4 on the way");
        assert!(!pair_revealed(&exact.view, &exact.execution, m.m8, m.m9));
    }

    #[test]
    fn exact_disclosure_errors_when_unsatisfiable() {
        let (spec, h, exec) = setup();
        let m = fixtures::handles(&spec);
        let mut policy = Policy::public();
        policy.hide_pair(m.m1, m.m2, AccessLevel(5));
        let user = Principal::new("user", AccessLevel(0), Prefix::full(&h));
        assert!(disclose_exact(&spec, &h, &exec, &policy, &user).is_err());
    }

    #[test]
    fn cross_composite_pair_zooms_until_deidentified() {
        // Hide that M8 (in W2) contributes to M9 (in W3): collapsing either
        // endpoint's workflow de-identifies that endpoint.
        let (spec, h, exec) = setup();
        let m = fixtures::handles(&spec);
        let mut policy = Policy::public();
        policy.hide_pair(m.m8, m.m9, AccessLevel(5));
        let user = Principal::new("user", AccessLevel(0), Prefix::full(&h));
        let d = disclose(&spec, &h, &exec, &policy, &user).unwrap();
        assert!(!pair_revealed(&d.view, &d.execution, m.m8, m.m9));
        // Deepest-first peeling removes W4 first (no help), then W3 —
        // de-identifying M9 and stopping there.
        assert!(!d.prefix.contains(WorkflowId::new(2)));
        assert_eq!(d.zoom_steps, 2);
        audit_disclosure(&spec, &policy, &user, &d).unwrap();
    }
}
