//! Module privacy — Γ-privacy of module functionality (paper ref \[4\]:
//! Davidson, Khanna, Panigrahi, Roy, *Preserving Module Privacy in Workflow
//! Provenance*, arXiv:1005.5543).
//!
//! A module is modeled as a **relation**: a total function from a product of
//! small discrete input domains to a product of output domains. Provenance
//! normally publishes every input/output value of every execution, which —
//! repeated over many runs — reconstructs the function. The mechanism of
//! \[4\] hides a carefully chosen subset of the module's input/output
//! *attributes* in **all** executions so that for every input `x` the
//! adversary's candidate set of possible outputs keeps size at least Γ:
//!
//! > `OUT_x = { y : y is consistent with the visible attributes of some
//! > execution whose visible input projection matches x }`, and the module
//! > is Γ-private under visible set `V` iff `|OUT_x| ≥ Γ` for **every** `x`.
//!
//! Since attributes have different utility to provenance consumers, hiding
//! is weighted, and the optimization problem is: *find a minimum-cost hidden
//! subset achieving Γ-privacy* (NP-hard in general — it generalizes
//! set-cover-style problems). This module provides the exact exponential
//! search ([`exhaustive_min_hiding`]) for small modules and the greedy
//! marginal-gain heuristic ([`greedy_min_hiding`]) the benchmarks compare
//! against it (experiment E2).
//!
//! For privacy **in workflows**, hidden attributes propagate along shared
//! data: an item hidden as one module's output must also be hidden as its
//! consumers' input. [`Network`] wires relations into a DAG, propagates
//! hiding sets, and [`Network::empirical_gamma`] measures the privacy level
//! actually achieved against a full-visible-row adversary (which captures
//! downstream-correlation leakage that per-module analysis misses).

use ppwf_model::bitset::BitSet;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A module as a total function over discrete attribute domains.
///
/// Attributes are indexed `0..in_arity` (inputs) then
/// `in_arity..in_arity+out_arity` (outputs).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Relation {
    name: String,
    in_domains: Vec<u16>,
    out_domains: Vec<u16>,
    /// Output tuple per input index (mixed-radix encoding of input tuples).
    rows: Vec<Vec<u16>>,
}

impl Relation {
    /// Build from an explicit function. `f` receives each input tuple and
    /// must return `out_domains.len()` values, each within its domain.
    pub fn from_fn(
        name: impl Into<String>,
        in_domains: &[u16],
        out_domains: &[u16],
        mut f: impl FnMut(&[u16]) -> Vec<u16>,
    ) -> Self {
        assert!(!in_domains.is_empty(), "relation needs at least one input");
        assert!(!out_domains.is_empty(), "relation needs at least one output");
        assert!(in_domains.iter().all(|&d| d >= 1));
        assert!(out_domains.iter().all(|&d| d >= 1));
        let n: usize = in_domains.iter().map(|&d| d as usize).product();
        assert!(n <= 1 << 22, "input space too large to tabulate");
        let mut rows = Vec::with_capacity(n);
        let mut x = vec![0u16; in_domains.len()];
        for idx in 0..n {
            decode_mixed(idx, in_domains, &mut x);
            let y = f(&x);
            assert_eq!(y.len(), out_domains.len(), "wrong output arity from f");
            for (v, &d) in y.iter().zip(out_domains) {
                assert!(*v < d, "output value {v} outside domain {d}");
            }
            rows.push(y);
        }
        Relation {
            name: name.into(),
            in_domains: in_domains.to_vec(),
            out_domains: out_domains.to_vec(),
            rows,
        }
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of input attributes.
    pub fn in_arity(&self) -> usize {
        self.in_domains.len()
    }

    /// Number of output attributes.
    pub fn out_arity(&self) -> usize {
        self.out_domains.len()
    }

    /// Total number of attributes (inputs then outputs).
    pub fn attr_count(&self) -> usize {
        self.in_arity() + self.out_arity()
    }

    /// Domain size of attribute `a`.
    pub fn domain(&self, a: usize) -> u16 {
        if a < self.in_arity() {
            self.in_domains[a]
        } else {
            self.out_domains[a - self.in_arity()]
        }
    }

    /// Number of distinct input tuples.
    pub fn input_count(&self) -> usize {
        self.rows.len()
    }

    /// Evaluate on the input tuple with mixed-radix index `idx`.
    pub fn eval_index(&self, idx: usize) -> &[u16] {
        &self.rows[idx]
    }

    /// Evaluate on an explicit input tuple.
    pub fn eval(&self, x: &[u16]) -> &[u16] {
        &self.rows[encode_mixed(x, &self.in_domains)]
    }

    /// Decode input index `idx` into a tuple.
    pub fn decode_input(&self, idx: usize) -> Vec<u16> {
        let mut x = vec![0u16; self.in_arity()];
        decode_mixed(idx, &self.in_domains, &mut x);
        x
    }

    /// Product of the domains of **hidden output** attributes under
    /// `visible` — the free-completion factor of `|OUT_x|`.
    fn hidden_out_product(&self, visible: &BitSet) -> u64 {
        let mut p: u64 = 1;
        for o in 0..self.out_arity() {
            if !visible.contains(self.in_arity() + o) {
                p = p.saturating_mul(self.out_domains[o] as u64);
            }
        }
        p
    }

    /// For every input `x`, `|OUT_x|` under the visible attribute set;
    /// returns the minimum over all inputs (the module's privacy level).
    ///
    /// `|OUT_x|` = (number of distinct visible-output projections among
    /// inputs agreeing with `x` on visible inputs) × (product of hidden
    /// output domains).
    pub fn min_possible_outputs(&self, visible: &BitSet) -> u64 {
        assert_eq!(visible.capacity(), self.attr_count(), "visible set arity mismatch");
        let vis_in: Vec<usize> = (0..self.in_arity()).filter(|&a| visible.contains(a)).collect();
        let vis_out: Vec<usize> =
            (0..self.out_arity()).filter(|&o| visible.contains(self.in_arity() + o)).collect();
        let free = self.hidden_out_product(visible);

        // Group inputs by visible input projection; per group, count
        // distinct visible output projections.
        let mut groups: HashMap<Vec<u16>, std::collections::HashSet<Vec<u16>>> = HashMap::new();
        let mut x = vec![0u16; self.in_arity()];
        for idx in 0..self.rows.len() {
            decode_mixed(idx, &self.in_domains, &mut x);
            let key: Vec<u16> = vis_in.iter().map(|&a| x[a]).collect();
            let proj: Vec<u16> = vis_out.iter().map(|&o| self.rows[idx][o]).collect();
            groups.entry(key).or_default().insert(proj);
        }
        groups.values().map(|outs| (outs.len() as u64).saturating_mul(free)).min().unwrap_or(free)
    }

    /// Γ-privacy test under `visible`.
    pub fn is_gamma_private(&self, visible: &BitSet, gamma: u64) -> bool {
        self.min_possible_outputs(visible) >= gamma
    }

    /// The total output space size — an upper bound on any achievable Γ.
    pub fn output_space(&self) -> u64 {
        self.out_domains.iter().map(|&d| d as u64).product()
    }
}

fn decode_mixed(mut idx: usize, domains: &[u16], out: &mut [u16]) {
    for (i, &d) in domains.iter().enumerate() {
        out[i] = (idx % d as usize) as u16;
        idx /= d as usize;
    }
}

fn encode_mixed(x: &[u16], domains: &[u16]) -> usize {
    let mut idx = 0usize;
    for i in (0..domains.len()).rev() {
        debug_assert!(x[i] < domains[i]);
        idx = idx * domains[i] as usize + x[i] as usize;
    }
    idx
}

/// A hiding solution: which attributes to hide, at what cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HidingSolution {
    /// Hidden attribute set (complement of the visible set).
    pub hidden: BitSet,
    /// Total weight of hidden attributes.
    pub cost: u64,
    /// Number of candidate subsets / privacy evaluations performed.
    pub evaluations: usize,
}

fn visible_from_hidden(hidden: &BitSet) -> BitSet {
    let mut v = BitSet::full(hidden.capacity());
    v.difference_with(hidden);
    v
}

fn cost_of(hidden: &BitSet, weights: &[u64]) -> u64 {
    hidden.iter().map(|a| weights[a]).sum()
}

/// Exact minimum-cost Γ-private hiding by subset enumeration (2^attrs).
/// Returns `None` when even hiding everything cannot reach Γ (Γ exceeds the
/// output space). Intended for modules with ≤ ~20 attributes.
pub fn exhaustive_min_hiding(
    rel: &Relation,
    weights: &[u64],
    gamma: u64,
) -> Option<HidingSolution> {
    let k = rel.attr_count();
    assert_eq!(weights.len(), k, "one weight per attribute");
    assert!(k <= 24, "exhaustive search limited to 24 attributes");
    if rel.output_space() < gamma {
        return None; // Γ exceeds the output space: unattainable
    }
    let mut best: Option<(u64, BitSet)> = None;
    let mut evaluations = 0usize;
    for mask in 0u32..(1u32 << k) {
        let hidden = BitSet::from_iter(k, (0..k).filter(|&a| mask & (1 << a) != 0));
        let cost = cost_of(&hidden, weights);
        if let Some((bc, _)) = &best {
            if cost >= *bc {
                continue;
            }
        }
        evaluations += 1;
        if rel.is_gamma_private(&visible_from_hidden(&hidden), gamma) {
            best = Some((cost, hidden));
        }
    }
    best.map(|(cost, hidden)| HidingSolution { hidden, cost, evaluations })
}

/// Greedy minimum-cost Γ-private hiding: repeatedly hide the attribute with
/// the best marginal privacy gain per unit weight, then shrink the solution
/// by un-hiding attributes that turn out unnecessary. Polynomial, and in
/// practice close to optimal (experiment E2 quantifies the gap).
pub fn greedy_min_hiding(rel: &Relation, weights: &[u64], gamma: u64) -> Option<HidingSolution> {
    let k = rel.attr_count();
    assert_eq!(weights.len(), k, "one weight per attribute");
    if rel.output_space() < gamma {
        return None;
    }
    let mut hidden = BitSet::new(k);
    let mut evaluations = 0usize;
    let mut current = rel.min_possible_outputs(&visible_from_hidden(&hidden));
    evaluations += 1;
    while current < gamma {
        let mut pick: Option<(f64, u64, usize, u64)> = None; // (score, weight, attr, new)
        for (a, &weight) in weights.iter().enumerate().take(k) {
            if hidden.contains(a) {
                continue;
            }
            let mut trial = hidden.clone();
            trial.insert(a);
            let v = rel.min_possible_outputs(&visible_from_hidden(&trial));
            evaluations += 1;
            let gain = (v.max(1) as f64).ln() - (current.max(1) as f64).ln();
            let w = weight.max(1);
            let score = gain / w as f64;
            let better = match &pick {
                None => true,
                Some((s, bw, _, _)) => {
                    score > *s + 1e-12 || ((score - *s).abs() <= 1e-12 && w < *bw)
                }
            };
            if better {
                pick = Some((score, w, a, v));
            }
        }
        let (_, _, attr, v) = pick.expect("some attribute is always available to hide");
        hidden.insert(attr);
        current = v;
        if hidden.len() == k && current < gamma {
            return None; // defensive; output_space check should prevent this
        }
    }
    // Reverse pass: drop attributes whose hiding is no longer needed,
    // costliest first.
    let mut order: Vec<usize> = hidden.iter().collect();
    order.sort_by_key(|&a| std::cmp::Reverse(weights[a]));
    for a in order {
        let mut trial = hidden.clone();
        trial.remove(a);
        evaluations += 1;
        if rel.is_gamma_private(&visible_from_hidden(&trial), gamma) {
            hidden = trial;
        }
    }
    let cost = cost_of(&hidden, weights);
    Some(HidingSolution { hidden, cost, evaluations })
}

// ---------------------------------------------------------------------------
// Module networks (workflow-level privacy)
// ---------------------------------------------------------------------------

/// Where a module input comes from in a [`Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Source {
    /// External workflow input with the given index.
    External(usize),
    /// Output attribute `out_attr` of an upstream module.
    Wire {
        /// Producing module index.
        module: usize,
        /// Output attribute index within the producer.
        out_attr: usize,
    },
}

/// A DAG of relations wired output-to-input — the workflow of \[4\]'s
/// composition theorems, with every intermediate value a *data item*.
///
/// Item numbering: external inputs first (`0..n_ext`), then each module's
/// outputs in module order.
#[derive(Clone, Debug)]
pub struct Network {
    relations: Vec<Relation>,
    sources: Vec<Vec<Source>>,
    n_external: usize,
    external_domains: Vec<u16>,
}

impl Network {
    /// Assemble a network. `sources[i]` must list one [`Source`] per input
    /// attribute of `relations[i]`, referencing only earlier modules
    /// (topological construction order).
    pub fn new(
        relations: Vec<Relation>,
        sources: Vec<Vec<Source>>,
        external_domains: Vec<u16>,
    ) -> Self {
        assert_eq!(relations.len(), sources.len());
        for (i, (rel, src)) in relations.iter().zip(&sources).enumerate() {
            assert_eq!(rel.in_arity(), src.len(), "module {i} wiring arity mismatch");
            for s in src {
                match *s {
                    Source::External(e) => {
                        assert!(e < external_domains.len(), "module {i}: bad external index")
                    }
                    Source::Wire { module, out_attr } => {
                        assert!(module < i, "module {i}: wire from non-earlier module");
                        assert!(
                            out_attr < relations[module].out_arity(),
                            "module {i}: bad out_attr"
                        );
                    }
                }
            }
        }
        let n_external = external_domains.len();
        Network { relations, sources, n_external, external_domains }
    }

    /// Number of modules.
    pub fn module_count(&self) -> usize {
        self.relations.len()
    }

    /// The relation of module `i`.
    pub fn relation(&self, i: usize) -> &Relation {
        &self.relations[i]
    }

    /// Total number of data items (externals + every module output).
    pub fn item_count(&self) -> usize {
        self.n_external + self.relations.iter().map(|r| r.out_arity()).sum::<usize>()
    }

    /// Item index of output `out_attr` of module `i`.
    pub fn output_item(&self, i: usize, out_attr: usize) -> usize {
        let mut base = self.n_external;
        for r in &self.relations[..i] {
            base += r.out_arity();
        }
        base + out_attr
    }

    /// Item index feeding input `in_attr` of module `i`.
    pub fn input_item(&self, i: usize, in_attr: usize) -> usize {
        match self.sources[i][in_attr] {
            Source::External(e) => e,
            Source::Wire { module, out_attr } => self.output_item(module, out_attr),
        }
    }

    /// Number of distinct external input tuples.
    pub fn external_count(&self) -> usize {
        self.external_domains.iter().map(|&d| d as usize).product()
    }

    /// Run the network on external tuple index `idx`, returning all item
    /// values (externals then module outputs).
    pub fn run(&self, idx: usize) -> Vec<u16> {
        let mut items = vec![0u16; self.item_count()];
        decode_mixed(idx, &self.external_domains, &mut items[..self.n_external]);
        for i in 0..self.relations.len() {
            let x: Vec<u16> =
                (0..self.relations[i].in_arity()).map(|a| items[self.input_item(i, a)]).collect();
            let y = self.relations[i].eval(&x).to_vec();
            for (o, v) in y.into_iter().enumerate() {
                items[self.output_item(i, o)] = v;
            }
        }
        items
    }

    /// Lift per-module hidden **attribute** sets to a hidden **item** set:
    /// an item is hidden if any endpoint (producer output or consumer
    /// input) hides it — the propagation rule of \[4\].
    pub fn propagate_hiding(&self, per_module_hidden: &[BitSet]) -> BitSet {
        assert_eq!(per_module_hidden.len(), self.relations.len());
        let mut items = BitSet::new(self.item_count());
        for (i, rel) in self.relations.iter().enumerate() {
            let h = &per_module_hidden[i];
            assert_eq!(h.capacity(), rel.attr_count(), "module {i} hidden-set arity");
            for a in 0..rel.in_arity() {
                if h.contains(a) {
                    items.insert(self.input_item(i, a));
                }
            }
            for o in 0..rel.out_arity() {
                if h.contains(rel.in_arity() + o) {
                    items.insert(self.output_item(i, o));
                }
            }
        }
        items
    }

    /// The hidden-attribute view module `i` experiences under a hidden item
    /// set (its input/output attributes mapped through the wiring).
    pub fn module_hidden_attrs(&self, i: usize, hidden_items: &BitSet) -> BitSet {
        let rel = &self.relations[i];
        let mut h = BitSet::new(rel.attr_count());
        for a in 0..rel.in_arity() {
            if hidden_items.contains(self.input_item(i, a)) {
                h.insert(a);
            }
        }
        for o in 0..rel.out_arity() {
            if hidden_items.contains(self.output_item(i, o)) {
                h.insert(rel.in_arity() + o);
            }
        }
        h
    }

    /// Empirical workflow privacy of module `i` under a hidden item set,
    /// using the **operational definition of \[4\]** lifted to the workflow's
    /// visible execution table: executions are grouped by the visible
    /// projection of module `i`'s *input* items; within a group the
    /// candidate outputs are the distinct visible projections of module
    /// `i`'s *output* items, times free completions of its hidden outputs.
    /// The reported value is the minimum over all executions.
    ///
    /// This ignores side information carried by other columns — which is
    /// exactly the assumption \[4\]'s composition theorems justify for
    /// all-private workflows; [`Network::empirical_gamma_strict`] measures
    /// what a stronger adversary extracts when that assumption fails.
    pub fn empirical_gamma(&self, i: usize, hidden_items: &BitSet) -> u64 {
        assert_eq!(hidden_items.capacity(), self.item_count());
        let rel = &self.relations[i];
        let vis_in_items: Vec<usize> = (0..rel.in_arity())
            .map(|a| self.input_item(i, a))
            .filter(|&it| !hidden_items.contains(it))
            .collect();
        let vis_out_items: Vec<usize> = (0..rel.out_arity())
            .map(|o| self.output_item(i, o))
            .filter(|&it| !hidden_items.contains(it))
            .collect();
        let mut free: u64 = 1;
        for o in 0..rel.out_arity() {
            if hidden_items.contains(self.output_item(i, o)) {
                free = free.saturating_mul(rel.out_domains[o] as u64);
            }
        }
        let n = self.external_count();
        let mut groups: HashMap<Vec<u16>, std::collections::HashSet<Vec<u16>>> =
            HashMap::with_capacity(n);
        for idx in 0..n {
            let items = self.run(idx);
            let key: Vec<u16> = vis_in_items.iter().map(|&it| items[it]).collect();
            let proj: Vec<u16> = vis_out_items.iter().map(|&it| items[it]).collect();
            groups.entry(key).or_default().insert(proj);
        }
        groups.values().map(|outs| (outs.len() as u64).saturating_mul(free)).min().unwrap_or(free)
    }

    /// Strict empirical privacy of module `i`: the ambiguity a worst-case
    /// adversary retains, one who knows **every module function** and the
    /// network wiring, and observes the visible projection of every item of
    /// every execution. Executions are grouped by their full visible row;
    /// the candidate set for a run is the set of *actual* output tuples of
    /// module `i` across indistinguishable runs (no free completions — a
    /// known-function adversary derives hidden values when they are
    /// determined).
    ///
    /// Always ≤ [`Network::empirical_gamma`]; the gap quantifies how much
    /// the standalone assumption over-promises (the ablation in E2).
    pub fn empirical_gamma_strict(&self, i: usize, hidden_items: &BitSet) -> u64 {
        assert_eq!(hidden_items.capacity(), self.item_count());
        let rel = &self.relations[i];
        let out_items: Vec<usize> = (0..rel.out_arity()).map(|o| self.output_item(i, o)).collect();
        let n = self.external_count();
        let mut groups: HashMap<Vec<u16>, std::collections::HashSet<Vec<u16>>> =
            HashMap::with_capacity(n);
        for idx in 0..n {
            let items = self.run(idx);
            let visible_row: Vec<u16> = (0..self.item_count())
                .map(|it| if hidden_items.contains(it) { u16::MAX } else { items[it] })
                .collect();
            let outs: Vec<u16> = out_items.iter().map(|&it| items[it]).collect();
            groups.entry(visible_row).or_default().insert(outs);
        }
        groups.values().map(|outs| outs.len() as u64).min().unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Boolean XOR with a copy output: (a, b) → (a ⊕ b, a).
    fn xor_copy() -> Relation {
        Relation::from_fn("xor_copy", &[2, 2], &[2, 2], |x| vec![x[0] ^ x[1], x[0]])
    }

    /// Constant module: everything maps to 0.
    fn constant() -> Relation {
        Relation::from_fn("const", &[2, 2], &[2], |_| vec![0])
    }

    #[test]
    fn tabulation_and_eval() {
        let r = xor_copy();
        assert_eq!(r.input_count(), 4);
        assert_eq!(r.attr_count(), 4);
        assert_eq!(r.eval(&[1, 1]), &[0, 1]);
        assert_eq!(r.eval(&[0, 1]), &[1, 0]);
        assert_eq!(r.decode_input(3), vec![1, 1]);
        assert_eq!(r.output_space(), 4);
        assert_eq!(r.domain(0), 2);
    }

    #[test]
    fn fully_visible_has_no_privacy() {
        let r = xor_copy();
        let all = BitSet::full(4);
        assert_eq!(r.min_possible_outputs(&all), 1);
        assert!(r.is_gamma_private(&all, 1));
        assert!(!r.is_gamma_private(&all, 2));
    }

    #[test]
    fn hiding_outputs_multiplies_candidates() {
        let r = xor_copy();
        // Hide both outputs: every input has 4 possible outputs.
        let visible = BitSet::from_iter(4, [0usize, 1]);
        assert_eq!(r.min_possible_outputs(&visible), 4);
    }

    #[test]
    fn hiding_one_input_merges_groups() {
        let r = xor_copy();
        // Hide input b (attr 1): inputs (a,0) and (a,1) are indistinguishable;
        // visible outputs (a⊕b, a) differ in the first coordinate → 2
        // candidate outputs per input.
        let mut visible = BitSet::full(4);
        visible.remove(1);
        assert_eq!(r.min_possible_outputs(&visible), 2);
    }

    #[test]
    fn constant_module_cannot_reach_gamma_2() {
        // A constant function has output space 1: no hiding reaches Γ = 2
        // by visible-group counting, but hiding the output attribute frees
        // 2 completions.
        let r = constant();
        let mut visible = BitSet::full(3);
        assert_eq!(r.min_possible_outputs(&visible), 1);
        visible.remove(2); // hide the output
        assert_eq!(r.min_possible_outputs(&visible), 2);
        // Γ = 4 is beyond the output space: both solvers must refuse.
        assert!(exhaustive_min_hiding(&r, &[1, 1, 1], 4).is_none());
        assert!(greedy_min_hiding(&r, &[1, 1, 1], 4).is_none());
    }

    #[test]
    fn exhaustive_finds_minimum_cost() {
        let r = xor_copy();
        // Γ = 2. Candidates: hide output a-copy (attr 3, weight 1)? Check:
        // visible = {0,1,2}: groups are singletons, 1 visible-output value
        // each, free = 2 → OUT = 2 ✓. So optimal cost = weight of attr 3.
        let weights = [10, 10, 10, 1];
        let sol = exhaustive_min_hiding(&r, &weights, 2).unwrap();
        assert_eq!(sol.cost, 1);
        assert_eq!(sol.hidden.iter().collect::<Vec<_>>(), vec![3]);
        // Greedy matches the optimum here.
        let g = greedy_min_hiding(&r, &weights, 2).unwrap();
        assert_eq!(g.cost, 1);
    }

    #[test]
    fn greedy_is_gamma_private_and_bounded() {
        let r = xor_copy();
        for gamma in [1u64, 2, 4] {
            for weights in [[1u64, 1, 1, 1], [5, 4, 3, 2], [1, 9, 9, 1]] {
                let ex = exhaustive_min_hiding(&r, &weights, gamma).unwrap();
                let gr = greedy_min_hiding(&r, &weights, gamma).unwrap();
                let vis = visible_from_hidden(&gr.hidden);
                assert!(r.is_gamma_private(&vis, gamma), "greedy must satisfy Γ");
                assert!(gr.cost >= ex.cost, "exhaustive is optimal");
                assert!(gr.evaluations <= ex.evaluations * 4 + 64);
            }
        }
    }

    #[test]
    fn gamma_one_needs_no_hiding() {
        let r = xor_copy();
        let sol = exhaustive_min_hiding(&r, &[1; 4], 1).unwrap();
        assert_eq!(sol.cost, 0);
        assert!(sol.hidden.is_empty());
        let g = greedy_min_hiding(&r, &[1; 4], 1).unwrap();
        assert_eq!(g.cost, 0);
    }

    // -- networks ----------------------------------------------------------

    /// Two xor_copy modules chained: m0(e0, e1); m1(m0.out0, e2).
    fn chain_network() -> Network {
        Network::new(
            vec![xor_copy(), xor_copy()],
            vec![
                vec![Source::External(0), Source::External(1)],
                vec![Source::Wire { module: 0, out_attr: 0 }, Source::External(2)],
            ],
            vec![2, 2, 2],
        )
    }

    #[test]
    fn network_runs_and_items() {
        let n = chain_network();
        assert_eq!(n.module_count(), 2);
        assert_eq!(n.item_count(), 3 + 2 + 2);
        assert_eq!(n.external_count(), 8);
        // e=(1,0,1): m0 → (1,1); m1(xor(1,1)=0 wait: m1 inputs (1, 1) →
        // (0, 1).
        let items = n.run(0b101); // e0=1, e1=0, e2=1
        assert_eq!(&items[..3], &[1, 0, 1]);
        assert_eq!(&items[3..5], &[1, 1]); // m0: (1⊕0, 1)
        assert_eq!(&items[5..7], &[0, 1]); // m1: (1⊕1, 1)
        assert_eq!(n.input_item(1, 0), n.output_item(0, 0), "wire identity");
    }

    #[test]
    fn propagation_unions_endpoint_hiding() {
        let n = chain_network();
        // m0 hides its out0 (attr 2); m1 hides nothing.
        let h0 = BitSet::from_iter(4, [2usize]);
        let h1 = BitSet::new(4);
        let items = n.propagate_hiding(&[h0, h1]);
        assert!(items.contains(n.output_item(0, 0)));
        assert_eq!(items.len(), 1);
        // Mapping back: m1 sees its input 0 hidden (it is the same item).
        let h1_view = n.module_hidden_attrs(1, &items);
        assert!(h1_view.contains(0));
    }

    #[test]
    fn empirical_gamma_fully_visible_is_one() {
        let n = chain_network();
        let hidden = BitSet::new(n.item_count());
        assert_eq!(n.empirical_gamma(0, &hidden), 1);
        assert_eq!(n.empirical_gamma(1, &hidden), 1);
    }

    #[test]
    fn empirical_gamma_with_hidden_outputs() {
        let n = chain_network();
        // Hide both outputs of m1: free factor 4 regardless of grouping.
        let mut hidden = BitSet::new(n.item_count());
        hidden.insert(n.output_item(1, 0));
        hidden.insert(n.output_item(1, 1));
        assert_eq!(n.empirical_gamma(1, &hidden), 4);
    }

    #[test]
    fn surrogate_matches_standalone_on_module_columns() {
        // Hide m0's outputs: the [4]-style surrogate sees Γ = 4 for m0,
        // exactly like its standalone analysis.
        let n = chain_network();
        let mut hidden = BitSet::new(n.item_count());
        hidden.insert(n.output_item(0, 0));
        hidden.insert(n.output_item(0, 1));
        assert_eq!(n.empirical_gamma(0, &hidden), 4);
        let h0 = n.module_hidden_attrs(0, &hidden);
        let vis0 = visible_from_hidden(&h0);
        assert_eq!(n.relation(0).min_possible_outputs(&vis0), 4);
    }

    #[test]
    fn strict_adversary_exploits_downstream_copies() {
        // Hide e0, e1 and m0's outputs. m1 copies its first input into its
        // visible output y1, so a known-function adversary recovers
        // m0.out0 = y1 exactly; only m0.out1 stays ambiguous (2 choices).
        let n = chain_network();
        let mut hidden = BitSet::new(n.item_count());
        hidden.insert(0); // e0
        hidden.insert(1); // e1
        hidden.insert(n.output_item(0, 0));
        hidden.insert(n.output_item(0, 1));
        assert_eq!(n.empirical_gamma_strict(0, &hidden), 2);
        // The surrogate still reports the standalone promise of 4.
        assert_eq!(n.empirical_gamma(0, &hidden), 4);
    }

    #[test]
    fn strict_adversary_defeated_by_wider_hiding() {
        // Additionally hiding m1's outputs (which derive from m0's) removes
        // every derivation path: all four m0 outputs stay possible.
        let n = chain_network();
        let mut hidden = BitSet::new(n.item_count());
        hidden.insert(0); // e0
        hidden.insert(1); // e1
        hidden.insert(n.output_item(0, 0));
        hidden.insert(n.output_item(0, 1));
        hidden.insert(n.output_item(1, 0)); // y0 = x0 ⊕ e2 with e2 visible
        hidden.insert(n.output_item(1, 1)); // y1 = x0
        assert_eq!(n.empirical_gamma_strict(0, &hidden), 4);
    }

    #[test]
    fn strict_never_exceeds_surrogate() {
        let n = chain_network();
        // Sweep a few hiding patterns and check the dominance invariant.
        for mask in 0u32..(1 << 7) {
            let hidden =
                BitSet::from_iter(n.item_count(), (0..7).filter(|&b| mask & (1 << b) != 0));
            for i in 0..n.module_count() {
                assert!(
                    n.empirical_gamma_strict(i, &hidden) <= n.empirical_gamma(i, &hidden),
                    "dominance violated for mask {mask:#b}, module {i}"
                );
            }
        }
    }
}
