//! Offline shim for `serde_derive`.
//!
//! The workspace builds in environments without a crates.io mirror, so the
//! real serde cannot be fetched. Nothing in the workspace serializes through
//! serde — persistence uses the hand-written binary codec in
//! `ppwf-model::codec` — so the derives only need to exist, not to generate
//! code. The `serde` shim crate provides blanket trait impls; these derives
//! therefore expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: the `serde` shim blanket-implements the
/// trait for every type. Registers the `#[serde(...)]` helper attribute so
/// field annotations like `#[serde(skip)]` — meaningful under the real
/// crate — compile against the shim too.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: the `serde` shim blanket-implements the
/// trait for every type. Registers `#[serde(...)]` like the real derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
