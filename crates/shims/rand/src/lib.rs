//! Offline shim for `rand` 0.8: the API subset the workload generators and
//! the differential-privacy layer use — `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer/float ranges, and `Rng::gen_bool` — backed
//! by a deterministic xoshiro256** generator. Statistical quality is far
//! beyond what the seeded synthetic workloads need, and determinism per seed
//! is what the experiments actually rely on.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniform-sampling range, the bound of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly samplable from a half-open or inclusive interval.
/// The single generic [`SampleRange`] impl below keeps integer-literal
/// inference working the way the real crate's does (`gen_range(0..100)`
/// unifies with the use site's type).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample empty range");
                let offset = (rng.next_u64() as u128) % span as u128;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
        lo + (unit_f64(rng) as f32) * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer or float range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_in(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// splitmix64 (the reference seeding procedure for the xoshiro family).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100).filter(|_| {
            StdRng::seed_from_u64(42);
            a.gen_range(0u32..1000) == c.gen_range(0u32..1000)
        });
        assert!(same.count() < 50, "different seeds must diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "got {hits}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
