//! Offline shim for `serde`.
//!
//! The workspace's persistence layer is the hand-written binary codec in
//! `ppwf-model::codec`; serde derives throughout the codebase are markers
//! for future interchange formats, never exercised at runtime. This shim
//! keeps those annotations compiling without network access: the traits are
//! blanket-implemented and the derive macros (re-exported from the
//! `serde_derive` shim) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
