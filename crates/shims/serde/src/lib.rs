//! Offline shim for `serde`.
//!
//! The workspace's persistence layer is the hand-written binary codec in
//! `ppwf-model::codec`; serde derives throughout the codebase are markers
//! for future interchange formats, never exercised at runtime. This shim
//! keeps those annotations compiling without network access: the traits are
//! blanket-implemented and the derive macros (re-exported from the
//! `serde_derive` shim) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Minimal byte-level framing helpers for hand-written record formats —
/// the one place this shim carries real runtime code. The repo crate's
/// write-ahead log frames its records with these (LEB128 varints for
/// sequence numbers and ids, varint-length-prefixed byte strings for
/// nested codec payloads); keeping them here preserves the offline-deps
/// discipline: the format lives next to the serialization markers, not
/// copy-pasted per consumer.
pub mod wire {
    /// Append `v` as an unsigned LEB128 varint (7 value bits per byte,
    /// high bit = continuation). At most 10 bytes for a `u64`.
    pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                buf.push(byte);
                return;
            }
            buf.push(byte | 0x80);
        }
    }

    /// Decode an unsigned LEB128 varint from the front of `bytes`,
    /// advancing past it. Returns `None` on truncation or a value that
    /// would overflow 64 bits (more than 10 bytes, or set bits past 64).
    pub fn get_uvarint(bytes: &mut &[u8]) -> Option<u64> {
        let mut v: u64 = 0;
        for (i, &byte) in bytes.iter().enumerate() {
            if i == 10 {
                return None;
            }
            let low = (byte & 0x7f) as u64;
            if i == 9 && low > 1 {
                return None; // the 10th byte may carry only the top bit
            }
            v |= low << (7 * i);
            if byte & 0x80 == 0 {
                *bytes = &bytes[i + 1..];
                return Some(v);
            }
        }
        None
    }

    /// Append `payload` preceded by its varint length.
    pub fn put_len_prefixed(buf: &mut Vec<u8>, payload: &[u8]) {
        put_uvarint(buf, payload.len() as u64);
        buf.extend_from_slice(payload);
    }

    /// Decode a varint-length-prefixed byte string from the front of
    /// `bytes`, advancing past it. Returns `None` on truncation.
    pub fn get_len_prefixed<'a>(bytes: &mut &'a [u8]) -> Option<&'a [u8]> {
        let len = get_uvarint(bytes)? as usize;
        if bytes.len() < len {
            return None;
        }
        let (head, tail) = bytes.split_at(len);
        *bytes = tail;
        Some(head)
    }
}

#[cfg(test)]
mod tests {
    use super::wire::*;

    #[test]
    fn uvarint_round_trips() {
        let samples: [u64; 9] =
            [0, 1, 127, 128, 300, 16_383, 16_384, u64::from(u32::MAX), u64::MAX];
        for &v in &samples {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut r: &[u8] = &buf;
            assert_eq!(get_uvarint(&mut r), Some(v), "value {v}");
            assert!(r.is_empty(), "value {v} left residue");
        }
    }

    #[test]
    fn uvarint_is_minimal_length() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_uvarint(&mut buf, 128);
        assert_eq!(buf.len(), 2);
        buf.clear();
        put_uvarint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn uvarint_rejects_truncation_and_overflow() {
        let mut r: &[u8] = &[0x80]; // continuation bit, then nothing
        assert_eq!(get_uvarint(&mut r), None);
        let mut r: &[u8] = &[0x80; 11]; // never terminates within 10 bytes
        assert_eq!(get_uvarint(&mut r), None);
        let mut overflow = [0x80u8; 10];
        overflow[9] = 0x02; // bit 64 set
        let mut r: &[u8] = &overflow;
        assert_eq!(get_uvarint(&mut r), None);
    }

    #[test]
    fn len_prefixed_round_trips() {
        let mut buf = Vec::new();
        put_len_prefixed(&mut buf, b"hello");
        put_len_prefixed(&mut buf, b"");
        put_len_prefixed(&mut buf, &[7u8; 300]);
        let mut r: &[u8] = &buf;
        assert_eq!(get_len_prefixed(&mut r), Some(&b"hello"[..]));
        assert_eq!(get_len_prefixed(&mut r), Some(&b""[..]));
        assert_eq!(get_len_prefixed(&mut r), Some(&[7u8; 300][..]));
        assert!(r.is_empty());
    }

    #[test]
    fn len_prefixed_rejects_short_payload() {
        let mut buf = Vec::new();
        put_len_prefixed(&mut buf, b"hello");
        let mut r: &[u8] = &buf[..buf.len() - 1];
        assert_eq!(get_len_prefixed(&mut r), None);
    }
}
