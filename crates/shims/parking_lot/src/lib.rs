//! Offline shim for `parking_lot`: `Mutex` and `RwLock` with the
//! non-poisoning API, implemented over `std::sync`. A poisoned std lock
//! (a panic while held) panics on the next acquisition instead of
//! propagating a `PoisonError`, matching parking_lot's practical behavior
//! for this workspace's uses.

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    /// Acquire shared access without blocking; `None` if a writer holds
    /// or is waiting for the lock (matching parking_lot's `try_read`).
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::WouldBlock) => None,
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("rwlock poisoned"),
        }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("rwlock poisoned")
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("rwlock poisoned")
    }
}

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn try_read_shares_but_never_blocks() {
        let l = RwLock::new(3);
        let r = l.read();
        assert_eq!(l.try_read().map(|g| *g), Some(3), "readers share");
        drop(r);
        let w = l.write();
        assert!(l.try_read().is_none(), "writer excludes try_read");
        drop(w);
        assert!(l.try_read().is_some());
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(Vec::new());
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![3]);
    }
}
