//! Offline shim for `criterion`: the API surface the ppwf bench targets use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `black_box`), implemented as a small
//! wall-clock harness. It warms up briefly, runs a sample of timed
//! iterations, and prints median per-iteration time — no statistics engine,
//! no HTML reports, but honest comparable numbers for the experiment tables.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { _criterion: self, name: name.to_string(), sample_size: 20 }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark a closure that receives an input by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, |b| f(b));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time the routine: a short warm-up, then `sample_size` timed runs.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: at least one run, stopping after ~20ms.
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() > Duration::from_millis(20) {
                break;
            }
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label:<40} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let best = b.samples[0];
    println!(
        "  {label:<40} median {:>12} best {:>12} ({} samples)",
        fmt_duration(median),
        fmt_duration(best),
        b.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declare a benchmark group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::new("noop", 1), &1u32, |b, &x| {
            b.iter(|| {
                ran += 1;
                x + 1
            })
        });
        group.finish();
        assert!(ran >= 5, "routine must run at least the sampled iterations");
    }
}
