//! Collection strategies: `vec` and `hash_set`.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// An inclusive size window for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a size in
/// `size` (a `usize` for exact length, or a half-open range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Output of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// Strategy for `HashSet<T>`: draws elements until the sampled size is
/// reached, tolerating duplicates (bounded retries, like the real crate's
/// rejection sampling — the set may come out smaller if the element domain
/// is nearly exhausted).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size: size.into() }
}

/// Output of [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn gen_value(&self, rng: &mut StdRng) -> HashSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = HashSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 10 + 20 {
            out.insert(self.element.gen_value(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_respect_window() {
        let strat = vec(0u32..10, 2..5);
        let mut rng = crate::case_rng("vec_sizes_respect_window", 1);
        for _ in 0..200 {
            let v = strat.gen_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0u32..10, 8);
        assert_eq!(exact.gen_value(&mut rng).len(), 8);
    }

    #[test]
    fn hash_set_reaches_target_when_domain_allows() {
        let strat = hash_set(0usize..1000, 5..8);
        let mut rng = crate::case_rng("hash_set_reaches_target", 1);
        for _ in 0..100 {
            let s = strat.gen_value(&mut rng);
            assert!((5..8).contains(&s.len()));
        }
        // Tiny domain: set may be smaller than the sampled target.
        let tight = hash_set(0usize..3, 0..60);
        for _ in 0..50 {
            assert!(tight.gen_value(&mut rng).len() <= 3);
        }
    }
}
