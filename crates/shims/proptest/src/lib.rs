//! Offline shim for `proptest`: a deterministic random-testing harness
//! covering the API surface the ppwf property tests use — the `proptest!`
//! macro, range/tuple/string strategies, `any`, `Just`, `prop_map`,
//! `prop_recursive`, `prop_oneof!`, `proptest::collection::{vec, hash_set}`
//! and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports its
//! deterministic case seed instead), and no persistence of failure seeds.
//! Every case is a pure function of the test name and case index, so
//! failures reproduce exactly on re-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod collection;

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after environment override: a set `PROPTEST_CASES`
    /// replaces the configured count, mirroring the real crate's env
    /// handling — this is how CI's scheduled soak job runs the
    /// concurrency suites at higher iteration counts without code
    /// changes.
    pub fn resolved_cases(&self) -> u32 {
        self.cases_with_override(std::env::var("PROPTEST_CASES").ok().as_deref())
    }

    /// [`Self::resolved_cases`] with the override value injected — the
    /// testable core, so the parsing rules can be pinned without
    /// mutating the process-global environment (which would race other
    /// tests in the binary and break under an ambient `PROPTEST_CASES`).
    pub fn cases_with_override(&self, raw: Option<&str>) -> u32 {
        raw.and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; carries the rendered message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is not counted.
    Reject,
}

/// FNV-1a hash used to derive per-test seeds from the test name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Deterministic per-case generator: a pure function of test name and case
/// index, so failures reproduce without persisted state.
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    StdRng::seed_from_u64(fnv1a(test_name) ^ case.wrapping_mul(0x9E3779B97F4A7C15))
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build a recursive strategy: `self` is the leaf; `recurse` lifts a
    /// strategy for the inner type into one level of structure. The
    /// expansion is depth-bounded eagerly, so generation always terminates.
    /// `_desired_size` and `_expected_branch` are accepted for signature
    /// compatibility and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![base.clone(), deeper]).boxed();
        }
        current
    }
}

trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// The strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the alternative strategies. Panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].gen_value(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// `&str` strategies are regex-like string generators. Supported shape: a
/// sequence of atoms, each a literal character or a character class
/// `[a-z0-9_]`, optionally quantified with `{n}`, `{m,n}`, `?`, `*` (0..=8)
/// or `+` (1..=8). This covers the patterns the workspace tests use;
/// unparsable patterns panic so silent divergence cannot occur.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut StdRng) -> String {
        let atoms = parse_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string-strategy pattern: {self:?}"));
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n = if lo == hi { *lo } else { rng.gen_range(*lo..=*hi) };
            for _ in 0..n {
                out.push(chars[rng.gen_range(0..chars.len())]);
            }
        }
        out
    }
}

type Atom = (Vec<char>, usize, usize);

fn parse_pattern(pattern: &str) -> Option<Vec<Atom>> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        // Atom: a class or a literal character.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..].iter().position(|&c| c == ']')? + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    if lo > hi {
                        return None;
                    }
                    set.extend((lo..=hi).collect::<Vec<char>>());
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            if set.is_empty() {
                return None;
            }
            i = close + 1;
            set
        } else if chars[i] == '\\' {
            i += 2;
            vec![*chars.get(i - 1)?]
        } else {
            i += 1;
            vec![chars[i - 1]]
        };
        // Quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..].iter().position(|&c| c == '}')? + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
                    None => {
                        let n = body.trim().parse().ok()?;
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        if lo > hi {
            return None;
        }
        atoms.push((class, lo, hi));
    }
    Some(atoms)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite values only: keeps arithmetic in tests well-defined.
        rng.gen_range(-1e12..1e12)
    }
}

impl Arbitrary for () {
    fn arbitrary(_rng: &mut StdRng) {}
}

/// The strategy behind [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if !(*left_val == *right_val) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        left_val,
                        right_val
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if !(*left_val == *right_val) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+),
                        left_val,
                        right_val
                    )));
                }
            }
        }
    };
}

/// Fail the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if *left_val == *right_val {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        left_val
                    )));
                }
            }
        }
    };
}

/// Discard the current case (not counted toward the case budget) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..100, flag in any::<bool>()) {
///         prop_assert!(x < 100 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.resolved_cases();
                let mut accepted: u32 = 0;
                let mut attempts: u64 = 0;
                let max_attempts: u64 = (cases as u64).saturating_mul(20).max(200);
                while accepted < cases && attempts < max_attempts {
                    attempts += 1;
                    let mut case_rng = $crate::case_rng(stringify!($name), attempts);
                    $(let $pat = $crate::Strategy::gen_value(&($strat), &mut case_rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "property `{}` failed at case seed {} ({} accepted so far)\n{}",
                            stringify!($name),
                            attempts,
                            accepted,
                            msg
                        ),
                    }
                }
                assert!(
                    accepted > 0,
                    "property `{}`: every generated case was rejected by prop_assume!",
                    stringify!($name)
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn env_override_scales_cases() {
        // Exercise the injected core, not the process-global variable:
        // mutating the real env would race the proptest!-macro tests in
        // this binary and fail under an ambient PROPTEST_CASES.
        let config = crate::ProptestConfig::with_cases(8);
        assert_eq!(config.cases_with_override(None), 8);
        assert_eq!(config.cases_with_override(Some("123")), 123);
        assert_eq!(
            config.cases_with_override(Some("not-a-number")),
            8,
            "garbage falls back to the configured count"
        );
        assert_eq!(config.cases_with_override(Some("0")), 8, "zero cannot disable a suite");
    }

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::case_rng("string_pattern_shapes", 1);
        for _ in 0..200 {
            let s = "[a-z]{0,12}".gen_value(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "x[0-9]+".gen_value(&mut rng);
            assert!(t.starts_with('x') && t.len() >= 2);
        }
    }

    #[test]
    fn union_and_map_compose() {
        let mut rng = crate::case_rng("union_and_map_compose", 1);
        let strat = prop_oneof![Just(1u32), (10u32..20).prop_map(|x| x * 2)];
        for _ in 0..100 {
            let v = strat.gen_value(&mut rng);
            assert!(v == 1 || (20..40).contains(&v));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut rng = crate::case_rng("recursive_terminates", 1);
        for _ in 0..100 {
            assert!(depth(&strat.gen_value(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_runs_and_assumes(x in 0usize..50, flag in any::<bool>()) {
            prop_assume!(x > 0);
            prop_assert!(x < 50, "x out of range: {}", x);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
            let _ = flag;
        }
    }
}
