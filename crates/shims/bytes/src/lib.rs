//! Offline shim for `bytes`: exactly the API surface the ppwf codecs use —
//! `Bytes`, `BytesMut`, and the `Buf`/`BufMut` traits with little-endian
//! integer accessors. Backed by plain `Vec<u8>`; the zero-copy machinery of
//! the real crate is intentionally absent (the codecs copy anyway).

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.0 == other
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read-side cursor operations over a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `n` bytes. Panics if fewer remain.
    fn advance(&mut self, n: usize);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write-side append operations over a byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 16);
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.chunk(), b"xyz");
        r.advance(3);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn equality_and_to_vec() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.to_vec(), b"abc");
        assert_eq!(&a[..2], b"ab");
    }
}
