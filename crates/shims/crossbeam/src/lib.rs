//! Offline shim for `crossbeam`: the `thread::scope` API implemented over
//! `std::thread::scope` (stable since Rust 1.63, which makes crossbeam's
//! scoped threads redundant for this workspace). Only the surface the scan
//! layer uses is provided.

/// Scoped threads.
pub mod thread {
    /// A scope handle; `spawn` borrows from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// The argument passed to spawned closures. crossbeam hands spawned
    /// closures a nested scope for recursive spawning; no caller in this
    /// workspace uses it, so a zero-sized stand-in keeps the `|_|` closure
    /// shape compiling.
    #[derive(Clone, Copy, Debug)]
    pub struct NestedScope;

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to the enclosing `scope` call.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle { inner: self.inner.spawn(move || f(NestedScope)) }
        }
    }

    /// Run `f` with a scope whose spawned threads may borrow local state;
    /// all threads are joined before this returns. Mirrors crossbeam's
    /// `Result` return (always `Ok` here — panics propagate on join).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|part| s.spawn(move |_| part.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
